//! The source-clause query language.
//!
//! Parses the `source` part of a mapping (Listing 2):
//!
//! ```text
//! SELECT id, LAI, ts, loc
//! FROM (ordered opendap url:https://.../dodsC/<dataset>/readdods/LAI/, 10)
//! WHERE LAI > 0
//! ```
//!
//! Two FROM forms are accepted: a plain table name, or an `opendap`
//! virtual-table invocation (either the paper's `(ordered opendap url..., w)`
//! shape or the function form `opendap(dataset, variable, w_seconds)`).

use crate::ObdaError;

/// A comparison operator in a WHERE conjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn evaluate(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Neq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A constant in a WHERE conjunct.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    Number(f64),
    Text(String),
}

/// One `column OP constant` conjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub column: String,
    pub op: CmpOp,
    pub value: Const,
}

/// The FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FromClause {
    /// A named base table.
    Table(String),
    /// The `opendap` virtual table: dataset, variable, cache window seconds.
    Opendap {
        dataset: String,
        variable: String,
        window_secs: u64,
    },
}

/// A parsed source query.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceQuery {
    /// Selected columns; empty = `*`.
    pub columns: Vec<String>,
    pub from: FromClause,
    pub predicates: Vec<Predicate>,
}

impl SourceQuery {
    /// Parse a source clause.
    pub fn parse(text: &str) -> Result<SourceQuery, ObdaError> {
        let err = |m: String| ObdaError::Sql(m);
        let text = text.trim();
        let lower = text.to_ascii_lowercase();
        if !lower.starts_with("select") {
            return Err(err(format!("expected SELECT, found {text:?}")));
        }
        let from_pos =
            find_keyword(&lower, "from").ok_or_else(|| err("missing FROM clause".to_string()))?;
        let select_part = text[6..from_pos].trim();
        let rest = &text[from_pos + 4..];
        let lower_rest = rest.to_ascii_lowercase();
        let (from_part, where_part) = match find_keyword(&lower_rest, "where") {
            Some(i) => (rest[..i].trim(), Some(rest[i + 5..].trim())),
            None => (rest.trim(), None),
        };

        let columns = if select_part == "*" {
            Vec::new()
        } else {
            select_part
                .split(',')
                .map(|c| c.trim().to_string())
                .filter(|c| !c.is_empty())
                .collect()
        };
        if columns.is_empty() && select_part != "*" {
            return Err(err("empty SELECT list".to_string()));
        }

        let from = parse_from(from_part)?;
        let predicates = match where_part {
            Some(w) => parse_where(w)?,
            None => Vec::new(),
        };
        Ok(SourceQuery {
            columns,
            from,
            predicates,
        })
    }
}

/// Find a keyword at a word boundary.
fn find_keyword(lower: &str, kw: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(i) = lower[start..].find(kw) {
        let at = start + i;
        let before_ok = at == 0 || !lower.as_bytes()[at - 1].is_ascii_alphanumeric();
        let after = at + kw.len();
        let after_ok = after >= lower.len() || !lower.as_bytes()[after].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + kw.len();
    }
    None
}

fn parse_from(text: &str) -> Result<FromClause, ObdaError> {
    let err = |m: String| ObdaError::Sql(m);
    let trimmed = text.trim();
    let inner = trimmed
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .unwrap_or(trimmed)
        .trim();
    let lower = inner.to_ascii_lowercase();
    if !lower.contains("opendap") {
        // Plain table name.
        if inner.is_empty() || inner.contains(char::is_whitespace) {
            return Err(err(format!("bad table name {inner:?}")));
        }
        return Ok(FromClause::Table(inner.to_string()));
    }

    // Function form: opendap(dataset, variable, window_secs)
    if let Some(args_start) = inner.find('(') {
        if lower.trim_start().starts_with("opendap") {
            let args_end = inner
                .rfind(')')
                .ok_or_else(|| err("unclosed opendap(...)".to_string()))?;
            let args: Vec<&str> = inner[args_start + 1..args_end]
                .split(',')
                .map(str::trim)
                .collect();
            if args.len() < 2 {
                return Err(err("opendap(dataset, variable[, window_secs])".to_string()));
            }
            let unquote = |s: &str| s.trim_matches(['\'', '"']).to_string();
            let window_secs = match args.get(2) {
                Some(w) => w
                    .parse::<u64>()
                    .map_err(|_| err(format!("bad window {w:?}")))?,
                None => 0,
            };
            return Ok(FromClause::Opendap {
                dataset: unquote(args[0]),
                variable: unquote(args[1]),
                window_secs,
            });
        }
    }

    // The paper form: `ordered opendap url:https://.../dodsC/DS/readdods/VAR/, 10`
    let mut url = None;
    let mut window_minutes = 0u64;
    for token in inner.split([' ', ',']).filter(|t| !t.is_empty()) {
        let t = token.trim();
        if let Some(u) = t.strip_prefix("url:") {
            url = Some(u.to_string());
        } else if t.starts_with("http") {
            url = Some(t.to_string());
        } else if let Ok(n) = t.parse::<u64>() {
            window_minutes = n;
        }
    }
    let url = url.ok_or_else(|| err("opendap source without url".to_string()))?;
    // Extract <dataset> and <variable> from .../dodsC/<dataset>/readdods/<VAR>/
    let dataset = url
        .split("dodsC/")
        .nth(1)
        .and_then(|rest| rest.split('/').next())
        .ok_or_else(|| err(format!("cannot find dataset in url {url:?}")))?
        .to_string();
    let variable = url
        .split("readdods/")
        .nth(1)
        .map(|rest| rest.trim_end_matches('/').to_string())
        .filter(|v| !v.is_empty())
        .ok_or_else(|| err(format!("cannot find variable in url {url:?}")))?;
    Ok(FromClause::Opendap {
        dataset,
        variable,
        window_secs: window_minutes * 60,
    })
}

fn parse_where(text: &str) -> Result<Vec<Predicate>, ObdaError> {
    let err = |m: String| ObdaError::Sql(m);
    let mut out = Vec::new();
    // Split on AND at word boundaries (case-insensitive).
    for conjunct in split_and(text) {
        let conjunct = conjunct.trim();
        if conjunct.is_empty() {
            continue;
        }
        let (op, op_str) = ["!=", "<=", ">=", "=", "<", ">"]
            .iter()
            .find_map(|s| conjunct.find(s).map(|i| (i, *s)))
            .map(|(i, s)| ((i, s), s))
            .ok_or_else(|| err(format!("no comparison in {conjunct:?}")))?;
        let (i, _) = op;
        let column = conjunct[..i].trim().to_string();
        let value_str = conjunct[i + op_str.len()..].trim();
        if column.is_empty() || value_str.is_empty() {
            return Err(err(format!("bad conjunct {conjunct:?}")));
        }
        let op = match op_str {
            "=" => CmpOp::Eq,
            "!=" => CmpOp::Neq,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => unreachable!(),
        };
        let value = if let Ok(n) = value_str.parse::<f64>() {
            Const::Number(n)
        } else {
            Const::Text(value_str.trim_matches(['\'', '"']).to_string())
        };
        out.push(Predicate { column, op, value });
    }
    Ok(out)
}

fn split_and(text: &str) -> Vec<&str> {
    let lower = text.to_ascii_lowercase();
    let mut parts = Vec::new();
    let mut start = 0;
    let mut search = 0;
    while let Some(i) = lower[search..].find("and") {
        let at = search + i;
        let before_ok = at == 0 || !lower.as_bytes()[at - 1].is_ascii_alphanumeric();
        let after = at + 3;
        let after_ok = after >= lower.len() || !lower.as_bytes()[after].is_ascii_alphanumeric();
        if before_ok && after_ok {
            parts.push(&text[start..at]);
            start = after;
        }
        search = after;
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_listing2_source() {
        // Verbatim shape from the paper's Listing 2 (line breaks joined).
        let q = SourceQuery::parse(
            "SELECT id, LAI , ts, loc FROM (ordered opendap \
             url:https://analytics.ramani.ujuizi.com/thredds/dodsC/Copernicus-Land-timeseries-global-LAI/readdods/LAI/, 10) \
             WHERE LAI > 0",
        )
        .unwrap();
        assert_eq!(q.columns, vec!["id", "LAI", "ts", "loc"]);
        assert_eq!(
            q.from,
            FromClause::Opendap {
                dataset: "Copernicus-Land-timeseries-global-LAI".into(),
                variable: "LAI".into(),
                window_secs: 600,
            }
        );
        assert_eq!(
            q.predicates,
            vec![Predicate {
                column: "LAI".into(),
                op: CmpOp::Gt,
                value: Const::Number(0.0),
            }]
        );
    }

    #[test]
    fn parse_function_form() {
        let q = SourceQuery::parse("SELECT * FROM opendap('lai_300m', 'LAI', 600)").unwrap();
        assert!(q.columns.is_empty());
        assert_eq!(
            q.from,
            FromClause::Opendap {
                dataset: "lai_300m".into(),
                variable: "LAI".into(),
                window_secs: 600,
            }
        );
    }

    #[test]
    fn parse_table_with_where() {
        let q = SourceQuery::parse(
            "SELECT id, name, geom FROM parks WHERE kind = park AND area >= 10.5",
        )
        .unwrap();
        assert_eq!(q.from, FromClause::Table("parks".into()));
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0].value, Const::Text("park".into()));
        assert_eq!(q.predicates[1].op, CmpOp::Ge);
        assert_eq!(q.predicates[1].value, Const::Number(10.5));
    }

    #[test]
    fn keywords_inside_identifiers() {
        // 'fromage' must not be mistaken for FROM, 'android' not for AND.
        let q = SourceQuery::parse("SELECT fromage FROM t WHERE android = 1").unwrap();
        assert_eq!(q.columns, vec!["fromage"]);
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].column, "android");
    }

    #[test]
    fn parse_errors() {
        assert!(SourceQuery::parse("").is_err());
        assert!(SourceQuery::parse("UPDATE t SET x = 1").is_err());
        assert!(SourceQuery::parse("SELECT a, b").is_err()); // no FROM
        assert!(SourceQuery::parse("SELECT a FROM two words").is_err());
        assert!(SourceQuery::parse("SELECT a FROM t WHERE x").is_err());
        assert!(SourceQuery::parse("SELECT a FROM (ordered opendap , 10)").is_err());
        assert!(SourceQuery::parse("SELECT a FROM opendap('only-one-arg')").is_err());
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.evaluate(Equal));
        assert!(!CmpOp::Eq.evaluate(Less));
        assert!(CmpOp::Le.evaluate(Equal));
        assert!(CmpOp::Le.evaluate(Less));
        assert!(CmpOp::Neq.evaluate(Greater));
        assert!(CmpOp::Ge.evaluate(Greater));
    }
}
