//! Ontop-spatial: geospatial ontology-based data access.
//!
//! Reproduces Section 3.2 of the paper: an OBDA system that "creates
//! virtual semantic RDF graphs on top of geospatial relational data sources
//! using ontologies and mappings", extended so that it can "query data
//! sources that are available remotely, without accessing or storing the
//! data locally" through an `opendap` virtual-table UDF with a
//! time-windowed result cache.
//!
//! * [`sql`] — the source-clause query language (the `SELECT ... FROM ...
//!   WHERE ...` subset of Listing 2), standing in for MadIS/SQLite;
//! * [`engine`] — the relational backend: named in-memory tables, virtual
//!   tables (UDFs), selection/projection, and R-tree indexes over geometry
//!   columns;
//! * [`vtable`] — the `opendap` virtual table: "create and populate a
//!   virtual table on-the-fly with data retrieved from an OPeNDAP server",
//!   plus the windowed cache ("results of an OPeNDAP call get cached every
//!   w minutes");
//! * [`virtual_graph`] — the virtual RDF graphs: a
//!   [`applab_sparql::GraphSource`] whose triples are defined by
//!   GeoTriples-format mappings and materialized *per query*, never stored.
//!   It implements the whole-BGP rewriting hook, mirroring how Ontop
//!   rewrites a SPARQL BGP into a single SQL query.
//!
//! The engine and the virtual graphs emit `obda.*` spans and
//! `applab_obda_*` counters to the `applab-obs` global registry.
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod engine;
pub mod fault;
pub mod sql;
pub mod virtual_graph;
pub mod vtable;

pub use engine::DataSource;
pub use fault::{record_source_fault, take_source_fault};
pub use sql::SourceQuery;
pub use virtual_graph::VirtualGraph;
pub use vtable::OpendapTable;

/// OBDA errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ObdaError {
    Sql(String),
    NoSuchTable(String),
    VirtualTable(String),
    Mapping(String),
    /// The remote source stayed down through every retry (and, when
    /// configured, past the stale-grace window): the query cannot be
    /// answered, not even degraded.
    Unavailable {
        dataset: String,
        retries: u32,
    },
}

impl std::fmt::Display for ObdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObdaError::Sql(m) => write!(f, "source query error: {m}"),
            ObdaError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            ObdaError::VirtualTable(m) => write!(f, "virtual table error: {m}"),
            ObdaError::Mapping(m) => write!(f, "mapping error: {m}"),
            ObdaError::Unavailable { dataset, retries } => {
                write!(f, "dataset {dataset} unavailable after {retries} retries")
            }
        }
    }
}

impl std::error::Error for ObdaError {}
