//! The relational backend (the MadIS stand-in).
//!
//! A [`DataSource`] holds named in-memory tables and virtual tables, and
//! executes [`SourceQuery`]s over them: projection, conjunctive selection,
//! and — for base tables — an R-tree access path over geometry columns
//! ("when data is stored in a database connected with Ontop-spatial, DBMS
//! optimizations and database constraints are taken into account").

use crate::sql::{Const, FromClause, Predicate, SourceQuery};
use crate::vtable::{VTableRegistry, VirtualTable};
use crate::ObdaError;
use applab_geo::{Envelope, RTree};
use applab_geotriples::{Row, TabularSource, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A base table plus its spatial indexes (one R-tree per geometry column,
/// built eagerly at registration).
struct IndexedTable {
    source: TabularSource,
    /// geometry column → R-tree of row indexes.
    spatial: HashMap<String, RTree<usize>>,
}

impl IndexedTable {
    fn new(source: TabularSource) -> Self {
        let mut by_column: HashMap<String, Vec<(Envelope, usize)>> = HashMap::new();
        for (i, row) in source.rows.iter().enumerate() {
            for (col, value) in row {
                if let Value::Geometry(g) = value {
                    by_column
                        .entry(col.clone())
                        .or_default()
                        .push((g.envelope(), i));
                }
            }
        }
        let spatial = by_column
            .into_iter()
            .map(|(col, items)| (col, RTree::bulk_load(items)))
            .collect();
        IndexedTable { source, spatial }
    }
}

/// The OBDA data source: base tables + virtual tables.
#[derive(Default)]
pub struct DataSource {
    tables: HashMap<String, IndexedTable>,
    vtables: VTableRegistry,
}

impl DataSource {
    pub fn new() -> Self {
        DataSource::default()
    }

    /// Register a base table (replacing any previous one of the same name).
    pub fn add_table(&mut self, source: TabularSource) {
        self.tables
            .insert(source.name.clone(), IndexedTable::new(source));
    }

    /// Register a virtual table under `opendap:<dataset>:<variable>`.
    pub fn add_opendap(&mut self, dataset: &str, variable: &str, table: Arc<dyn VirtualTable>) {
        self.vtables
            .register(format!("opendap:{dataset}:{variable}"), table);
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Execute a source query, optionally with a spatial access-path hint:
    /// `(geometry column, envelope)` restricts base-table scans through the
    /// R-tree. Returns the qualifying rows (projected).
    pub fn execute(
        &self,
        query: &SourceQuery,
        spatial_hint: Option<(&str, &Envelope)>,
    ) -> Result<Vec<Row>, ObdaError> {
        applab_obs::counter!("applab_obda_source_queries_total").inc();
        applab_obs::querystats::source_query();
        let mut span = applab_obs::span("obda.execute");
        match &query.from {
            FromClause::Table(name) => {
                span.record("table", name.clone());
                let table = self
                    .tables
                    .get(name)
                    .ok_or_else(|| ObdaError::NoSuchTable(name.clone()))?;
                let candidate_rows: Vec<&Row> = match spatial_hint {
                    Some((col, env)) if table.spatial.contains_key(col) => {
                        applab_obs::counter!("applab_obda_rtree_scans_total").inc();
                        span.record("rtree", true);
                        let mut idx: Vec<usize> =
                            table.spatial[col].query(env).into_iter().copied().collect();
                        idx.sort_unstable();
                        idx.iter().map(|&i| &table.source.rows[i]).collect()
                    }
                    _ => table.source.rows.iter().collect(),
                };
                span.record("candidates", candidate_rows.len());
                let out: Vec<Row> = candidate_rows
                    .into_iter()
                    .filter(|row| query.predicates.iter().all(|p| matches(row, p)))
                    .map(|row| project(row, &query.columns))
                    .collect();
                span.record("rows", out.len());
                Ok(out)
            }
            FromClause::Opendap {
                dataset, variable, ..
            } => {
                let key = format!("opendap:{dataset}:{variable}");
                span.record("table", key.clone());
                let vtable = self
                    .vtables
                    .get(&key)
                    .ok_or_else(|| ObdaError::NoSuchTable(key.clone()))?;
                let rows = vtable.open()?;
                // Remote rows have no index; selection is applied after the
                // fetch — exactly the "no DBMS optimizations" situation the
                // paper describes for the on-the-fly path.
                let out: Vec<Row> = rows
                    .rows
                    .iter()
                    .filter(|row| {
                        query.predicates.iter().all(|p| matches(row, p))
                            && spatial_hint.is_none_or(|(col, env)| match row.get(col) {
                                Some(Value::Geometry(g)) => g.envelope().intersects(env),
                                _ => true,
                            })
                    })
                    .map(|row| project(row, &query.columns))
                    .collect();
                span.record("rows", out.len());
                Ok(out)
            }
        }
    }
}

fn matches(row: &Row, p: &Predicate) -> bool {
    let Some(value) = row.get(&p.column) else {
        return false;
    };
    let ord = match (&p.value, value) {
        (Const::Number(n), Value::Number(v)) => v.partial_cmp(n),
        (Const::Number(n), Value::Text(t)) => t.parse::<f64>().ok().and_then(|v| v.partial_cmp(n)),
        (Const::Text(s), Value::Text(t)) => Some(t.as_str().cmp(s.as_str())),
        (Const::Text(s), Value::Bool(b)) => Some(b.to_string().as_str().cmp(s.as_str())),
        _ => None,
    };
    ord.map(|o| p.op.evaluate(o)).unwrap_or(false)
}

fn project(row: &Row, columns: &[String]) -> Row {
    if columns.is_empty() {
        return row.clone();
    }
    columns
        .iter()
        .filter_map(|c| row.get(c).map(|v| (c.clone(), v.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_geo::Geometry;

    fn parks() -> TabularSource {
        let mut rows = Vec::new();
        for i in 0..20 {
            let mut r = Row::new();
            r.insert("id".into(), Value::Number(i as f64));
            r.insert(
                "kind".into(),
                Value::Text(if i % 2 == 0 { "park" } else { "industrial" }.into()),
            );
            r.insert("area".into(), Value::Number(i as f64 * 10.0));
            r.insert(
                "geom".into(),
                Value::Geometry(Geometry::rect(i as f64, 0.0, i as f64 + 0.5, 0.5)),
            );
            rows.push(r);
        }
        TabularSource {
            name: "parks".into(),
            rows,
        }
    }

    fn source() -> DataSource {
        let mut ds = DataSource::new();
        ds.add_table(parks());
        ds
    }

    #[test]
    fn select_where_project() {
        let ds = source();
        let q = SourceQuery::parse("SELECT id, area FROM parks WHERE kind = park AND area > 50")
            .unwrap();
        let rows = ds.execute(&q, None).unwrap();
        // Even ids with area > 50: ids 6, 8, 10, 12, 14, 16, 18.
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|r| r.len() == 2));
        assert!(rows.iter().all(|r| !r.contains_key("geom")));
    }

    #[test]
    fn select_star() {
        let ds = source();
        let q = SourceQuery::parse("SELECT * FROM parks").unwrap();
        let rows = ds.execute(&q, None).unwrap();
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].len(), 4);
    }

    #[test]
    fn spatial_hint_uses_rtree() {
        let ds = source();
        let q = SourceQuery::parse("SELECT id FROM parks").unwrap();
        let env = Envelope::new(4.9, 0.0, 7.1, 0.5);
        let rows = ds.execute(&q, Some(("geom", &env))).unwrap();
        // Rects starting at 5, 6, 7 intersect (and 4’s rect ends at 4.5 — no).
        let mut ids: Vec<f64> = rows
            .iter()
            .map(|r| match &r["id"] {
                Value::Number(n) => *n,
                _ => unreachable!(),
            })
            .collect();
        ids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(ids, vec![5.0, 6.0, 7.0]);
        // Hint on a non-geometry column falls back to a full scan.
        let rows = ds.execute(&q, Some(("id", &env))).unwrap();
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn missing_table_errors() {
        let ds = source();
        let q = SourceQuery::parse("SELECT a FROM nope").unwrap();
        assert!(matches!(
            ds.execute(&q, None),
            Err(ObdaError::NoSuchTable(_))
        ));
        let q = SourceQuery::parse("SELECT a FROM opendap('x', 'Y')").unwrap();
        assert!(matches!(
            ds.execute(&q, None),
            Err(ObdaError::NoSuchTable(_))
        ));
    }

    #[test]
    fn predicates_on_missing_columns_fail_row() {
        let ds = source();
        let q = SourceQuery::parse("SELECT id FROM parks WHERE nothere = 5").unwrap();
        assert!(ds.execute(&q, None).unwrap().is_empty());
    }
}
