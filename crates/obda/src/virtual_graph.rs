//! Virtual semantic geospatial graphs.
//!
//! A [`VirtualGraph`] binds GeoTriples-format mappings to a relational
//! [`DataSource`] and exposes the result as a SPARQL
//! [`GraphSource`] — "without materializing any triples or tables"
//! (Section 3.2). Triples are produced on demand, per query:
//!
//! * pattern-at-a-time access runs each mapping's source query and expands
//!   its templates, filtering against the requested pattern;
//! * the whole-BGP hook ([`GraphSource::evaluate_bgp`]) reproduces Ontop's
//!   SPARQL→SQL rewriting: when every triple pattern of a BGP unifies with
//!   a template of *one* mapping, the BGP is answered with a single scan of
//!   that mapping's source — no self-joins, with the R-tree access path
//!   when a spatial constraint applies to a geometry column.

use crate::engine::DataSource;
use crate::sql::SourceQuery;
use crate::ObdaError;
use applab_geo::Envelope;
use applab_geotriples::mapping::{Mapping, TermTemplate, TripleTemplate};
use applab_geotriples::Row;
use applab_rdf::{vocab, NamedNode, Resource, Term, Triple};
use applab_sparql::algebra::{TermPattern, TriplePattern};
use applab_sparql::expr::Binding;
use applab_sparql::GraphSource;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct CompiledMapping {
    mapping: Mapping,
    query: SourceQuery,
    /// Constant predicate IRI of each target template (`None` when the
    /// predicate itself is templated — unusual but legal).
    predicate_of: Vec<Option<String>>,
}

/// A virtual RDF graph over mappings + a relational source.
pub struct VirtualGraph {
    source: DataSource,
    mappings: Vec<CompiledMapping>,
    /// Per-mapping row cache for **base-table** sources (the "DBMS
    /// optimizations" of the local path). Remote `opendap` sources are
    /// never cached here — their own window cache governs freshness.
    row_cache: Mutex<HashMap<usize, Arc<Vec<Row>>>>,
    /// Structural planner statistics derived from the mappings alone —
    /// compiled at seal time without touching the data source, so remote
    /// (OPeNDAP) sources see no extra round trips.
    stats: applab_sparql::plan::Stats,
}

impl VirtualGraph {
    /// Compile mappings against a data source. Every mapping's `source`
    /// clause must parse as a [`SourceQuery`].
    pub fn new(source: DataSource, mappings: Vec<Mapping>) -> Result<Self, ObdaError> {
        let compiled = mappings
            .into_iter()
            .map(|m| {
                let query = SourceQuery::parse(&m.source)
                    .map_err(|e| ObdaError::Mapping(format!("mapping {}: {e}", m.id)))?;
                let predicate_of = m
                    .target
                    .iter()
                    .map(|t| constant_expansion(&t.predicate))
                    .collect();
                Ok(CompiledMapping {
                    mapping: m,
                    query,
                    predicate_of,
                })
            })
            .collect::<Result<Vec<_>, ObdaError>>()?;
        let stats = structural_stats(&compiled);
        Ok(VirtualGraph {
            source,
            mappings: compiled,
            row_cache: Mutex::new(HashMap::new()),
            stats,
        })
    }

    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Fetch a mapping's source rows, through the base-table cache when
    /// there is no access-path hint.
    fn rows_for(
        &self,
        idx: usize,
        cm: &CompiledMapping,
        hint: Option<(&str, &Envelope)>,
    ) -> Result<Arc<Vec<Row>>, ObdaError> {
        use crate::sql::FromClause;
        let cacheable = hint.is_none() && matches!(cm.query.from, FromClause::Table(_));
        if cacheable {
            if let Some(rows) = self.row_cache.lock().get(&idx) {
                return Ok(rows.clone());
            }
        }
        let rows = Arc::new(self.source.execute(&cm.query, hint)?);
        if cacheable {
            self.row_cache.lock().insert(idx, rows.clone());
        }
        Ok(rows)
    }

    /// Expand every mapping into a fully materialized graph (the
    /// "materialize the data" alternative of Section 5; used by tests to
    /// check virtual ≡ materialized, and by benches as the baseline).
    pub fn materialize(&self) -> Result<applab_rdf::Graph, ObdaError> {
        let mut span = applab_obs::span("obda.materialize");
        span.record("mappings", self.mappings.len());
        let mut g = applab_rdf::Graph::new();
        for (idx, cm) in self.mappings.iter().enumerate() {
            let rows = self.rows_for(idx, cm, None)?;
            for row in rows.iter() {
                for template in &cm.mapping.target {
                    if let Some(t) = template.expand(row) {
                        g.insert(t);
                    }
                }
            }
        }
        span.record("triples", g.len());
        Ok(g)
    }

    /// All triples of one mapping matching a (s?, p?, o?) pattern.
    #[allow(clippy::too_many_arguments)]
    fn mapping_triples(
        &self,
        idx: usize,
        cm: &CompiledMapping,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        object: Option<&Term>,
        spatial: Option<&Envelope>,
        out: &mut Vec<Triple>,
    ) {
        // Skip mappings that cannot produce the requested predicate.
        let relevant: Vec<usize> = cm
            .mapping
            .target
            .iter()
            .enumerate()
            .filter(|(i, _)| match (predicate, &cm.predicate_of[*i]) {
                (Some(p), Some(constant)) => p.as_str() == constant,
                _ => true,
            })
            .map(|(i, _)| i)
            .collect();
        if relevant.is_empty() {
            return;
        }
        // Spatial access path: only when the constrained templates' object
        // is a single geometry column.
        let hint_col = spatial.and_then(|_| {
            let mut col: Option<&str> = None;
            for &i in &relevant {
                match geometry_column(&cm.mapping.target[i].object) {
                    Some(c) if col.is_none() || col == Some(c) => col = Some(c),
                    _ => return None,
                }
            }
            col
        });
        // IRI-template inversion: a bound subject becomes a column filter
        // (or rules a template out entirely when its fixed parts mismatch),
        // skipping template expansion for non-matching rows.
        enum SubjectFilter {
            NoConstraint,
            Column(String, String),
            Impossible,
        }
        let subject_filters: Vec<SubjectFilter> = relevant
            .iter()
            .map(|&i| {
                let Some(s) = subject else {
                    return SubjectFilter::NoConstraint;
                };
                let st = match &cm.mapping.target[i].subject {
                    TermTemplate::Iri(st) => st,
                    // A named subject never matches a blank-node template;
                    // a blank subject is compared post-expansion.
                    TermTemplate::Blank(_) => {
                        return match s {
                            Resource::Blank(_) => SubjectFilter::NoConstraint,
                            Resource::Named(_) => SubjectFilter::Impossible,
                        }
                    }
                    TermTemplate::Literal { .. } => return SubjectFilter::Impossible,
                };
                let iri = match s {
                    Resource::Named(n) => n.as_str(),
                    Resource::Blank(_) => return SubjectFilter::Impossible,
                };
                match st.invert_single(iri) {
                    Some((c, v)) => SubjectFilter::Column(c.to_string(), v),
                    None if st.columns().is_empty() => {
                        // Constant template: direct comparison decides.
                        if st.expand(&Row::new()).as_deref() == Some(iri) {
                            SubjectFilter::NoConstraint
                        } else {
                            SubjectFilter::Impossible
                        }
                    }
                    None if st.is_invertible() => SubjectFilter::Impossible,
                    None => SubjectFilter::NoConstraint,
                }
            })
            .collect();
        if subject_filters
            .iter()
            .all(|f| matches!(f, SubjectFilter::Impossible))
        {
            return;
        }
        let rows = match self.rows_for(idx, cm, hint_col.zip(spatial)) {
            Ok(rows) => rows,
            Err(e) => {
                // The trait has no Result channel — record the fault so the
                // query driver can distinguish "empty" from "source down".
                crate::fault::record_source_fault(e);
                return;
            }
        };
        for row in rows.iter() {
            for (k, &i) in relevant.iter().enumerate() {
                match &subject_filters[k] {
                    SubjectFilter::Impossible => continue,
                    SubjectFilter::Column(col, value) => {
                        let matches = row
                            .get(col)
                            .and_then(applab_geotriples::Value::lexical)
                            .is_some_and(|lex| &lex == value);
                        if !matches {
                            continue;
                        }
                    }
                    SubjectFilter::NoConstraint => {}
                }
                if let Some(t) = cm.mapping.target[i].expand(row) {
                    if subject.is_none_or(|s| &t.subject == s)
                        && predicate.is_none_or(|p| &t.predicate == p)
                        && object.is_none_or(|o| &t.object == o)
                    {
                        out.push(t);
                    }
                }
            }
        }
    }
}

/// Rows a mapping's source is assumed to yield when nothing has been
/// fetched yet. The *relative* numbers are what steer the planner;
/// constant templates (distinct count 1) versus templated positions
/// (distinct count = row guess) carry the real signal.
const ROW_GUESS: u64 = 1000;

/// Planner statistics derived purely from the mapping structure: no
/// source rows are read, so sealing a virtual workflow costs no DAP
/// round trips (and fault-injection tests see identical traffic).
fn structural_stats(mappings: &[CompiledMapping]) -> applab_sparql::plan::Stats {
    use applab_sparql::plan::{SpatialSketch, Stats};
    let mut stats = Stats::default();
    let mut geometry_templates = 0u64;
    for cm in mappings {
        for (i, template) in cm.mapping.target.iter().enumerate() {
            let Some(p) = &cm.predicate_of[i] else {
                // Templated predicate: counted only toward the total.
                stats.total_triples += ROW_GUESS;
                continue;
            };
            let entry = stats.predicates.entry(p.clone()).or_default();
            entry.triples += ROW_GUESS;
            stats.total_triples += ROW_GUESS;
            let distinct = |t: &TermTemplate| -> u64 {
                let constant = match t {
                    TermTemplate::Iri(st) | TermTemplate::Blank(st) => st.columns().is_empty(),
                    TermTemplate::Literal { template, .. } => template.columns().is_empty(),
                };
                if constant {
                    1
                } else {
                    ROW_GUESS
                }
            };
            entry.distinct_subjects =
                (entry.distinct_subjects + distinct(&template.subject)).min(entry.triples);
            entry.distinct_objects =
                (entry.distinct_objects + distinct(&template.object)).min(entry.triples);
            if geometry_column(&template.object).is_some() {
                geometry_templates += 1;
            }
        }
    }
    stats.spatial = SpatialSketch {
        entries: geometry_templates * ROW_GUESS,
        bounds: None, // unknown extent: the R-tree hint stays worth trying
    };
    stats
}

/// A template's constant expansion, when it has no placeholders.
fn constant_expansion(t: &TermTemplate) -> Option<String> {
    match t {
        TermTemplate::Iri(st) if st.columns().is_empty() => {
            // Expand against an empty row: no placeholders → always Some.
            st.expand(&Row::new())
        }
        _ => None,
    }
}

/// The geometry column of a bare `{col}^^geo:wktLiteral` object template.
fn geometry_column(t: &TermTemplate) -> Option<&str> {
    match t {
        TermTemplate::Literal {
            template,
            datatype: Some(dt),
            ..
        } if dt.as_str() == vocab::geo::WKT_LITERAL => match template.columns().as_slice() {
            [one] => Some(one),
            _ => None,
        },
        _ => None,
    }
}

impl GraphSource for VirtualGraph {
    fn stats(&self) -> Option<&applab_sparql::plan::Stats> {
        Some(&self.stats)
    }

    fn triples_matching(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let mut out = Vec::new();
        for (idx, cm) in self.mappings.iter().enumerate() {
            self.mapping_triples(idx, cm, subject, predicate, object, None, &mut out);
        }
        out
    }

    fn triples_matching_spatial(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        envelope: &Envelope,
    ) -> Option<Vec<Triple>> {
        let mut out = Vec::new();
        for (idx, cm) in self.mappings.iter().enumerate() {
            self.mapping_triples(idx, cm, subject, predicate, None, Some(envelope), &mut out);
        }
        // Post-filter to the envelope (the access path may be a fallback
        // scan for virtual tables).
        out.retain(|t| match &t.object {
            Term::Literal(l) => match l.as_geometry() {
                Some(g) => g.envelope().intersects(envelope),
                None => true,
            },
            _ => true,
        });
        Some(out)
    }

    fn evaluate_bgp(
        &self,
        patterns: &[TriplePattern],
        spatial: &HashMap<String, Envelope>,
    ) -> Option<Vec<Binding>> {
        if patterns.is_empty() {
            return None;
        }
        // The rewrite expands all patterns against the SAME source row, so
        // it is only sound when every pattern is reachable from every other
        // through shared variables: solutions of a variable-disconnected
        // BGP are the cross product of the components' solutions, which a
        // single row scan cannot produce.
        if !variable_connected(patterns) {
            return None;
        }
        // The rewriting applies only when the whole BGP unifies with the
        // templates of exactly ONE mapping: otherwise different mappings
        // could each contribute solutions and the fast path would lose
        // answers — fall back to pattern-at-a-time evaluation instead.
        let mut viable: Option<(usize, &CompiledMapping)> = None;
        'mappings: for (idx, cm) in self.mappings.iter().enumerate() {
            for pattern in patterns {
                let mut candidates = cm
                    .mapping
                    .target
                    .iter()
                    .enumerate()
                    .filter(|(i, t)| statically_unifiable(pattern, t, &cm.predicate_of[*i]));
                let first = candidates.next();
                let second = candidates.next();
                if first.is_none() || second.is_some() {
                    continue 'mappings; // none or ambiguous within the mapping
                }
            }
            if viable.is_some() {
                return None; // more than one viable mapping → generic path
            }
            viable = Some((idx, cm));
        }
        {
            let (idx, cm) = viable?;
            applab_obs::counter!("applab_obda_bgp_rewrites_total").inc();
            let mut span = applab_obs::span("obda.bgp_rewrite");
            span.record("patterns", patterns.len());
            let mut assignment: Vec<&TripleTemplate> = Vec::with_capacity(patterns.len());
            for pattern in patterns {
                let template = cm
                    .mapping
                    .target
                    .iter()
                    .enumerate()
                    .find(|(i, t)| statically_unifiable(pattern, t, &cm.predicate_of[*i]))
                    .map(|(_, t)| t)
                    .expect("checked viable above");
                assignment.push(template);
            }
            // Spatial access path: a constrained object variable whose
            // assigned template is a geometry column.
            let mut hint: Option<(&str, &Envelope)> = None;
            for (pattern, template) in patterns.iter().zip(&assignment) {
                if let TermPattern::Var(v) = &pattern.object {
                    if let (Some(env), Some(col)) =
                        (spatial.get(v), geometry_column(&template.object))
                    {
                        hint = Some((col, env));
                        break;
                    }
                }
            }
            let rows = match self.rows_for(idx, cm, hint) {
                Ok(rows) => rows,
                Err(e) => {
                    crate::fault::record_source_fault(e);
                    return Some(Vec::new());
                }
            };
            // Per-position plans: expand only what the query observes.
            // Constant positions whose template is placeholder-free were
            // already verified statically; templated constants need a
            // per-row check; variables need the expansion bound.
            enum Step<'p> {
                Bind(&'p str, &'p TermTemplate),
                Verify(&'p Term, &'p TermTemplate),
            }
            let mut steps: Vec<Step> = Vec::new();
            for (pattern, template) in patterns.iter().zip(&assignment) {
                for (tp, tt) in [
                    (&pattern.subject, &template.subject),
                    (&pattern.predicate, &template.predicate),
                    (&pattern.object, &template.object),
                ] {
                    match tp {
                        TermPattern::Var(v) => steps.push(Step::Bind(v, tt)),
                        TermPattern::Term(expected) => {
                            let is_constant_template = match tt {
                                TermTemplate::Iri(st) | TermTemplate::Blank(st) => {
                                    st.columns().is_empty()
                                }
                                TermTemplate::Literal { template, .. } => {
                                    template.columns().is_empty()
                                }
                            };
                            if !is_constant_template {
                                steps.push(Step::Verify(expected, tt));
                            }
                        }
                    }
                }
            }
            let mut bindings = Vec::new();
            'rows: for row in rows.iter() {
                let mut binding = Binding::new();
                for step in &steps {
                    match step {
                        Step::Verify(expected, tt) => match tt.expand(row) {
                            Some(actual) if &&actual == expected => {}
                            _ => continue 'rows,
                        },
                        Step::Bind(v, tt) => {
                            let Some(actual) = tt.expand(row) else {
                                continue 'rows; // null column: no triple
                            };
                            match binding.get(*v) {
                                Some(existing) if existing != &actual => continue 'rows,
                                Some(_) => {}
                                None => {
                                    binding.insert(v.to_string(), actual);
                                }
                            }
                        }
                    }
                }
                bindings.push(binding);
            }
            span.record("source_rows", rows.len());
            span.record("rows", bindings.len());
            Some(bindings)
        }
    }
}

/// Whether the patterns form one connected component under shared
/// variables. Ground patterns (no variables) are their own component, so
/// any BGP containing one alongside other patterns fails the check.
fn variable_connected(patterns: &[TriplePattern]) -> bool {
    if patterns.len() <= 1 {
        return true;
    }
    let vars_of = |p: &TriplePattern| -> Vec<String> {
        [&p.subject, &p.predicate, &p.object]
            .into_iter()
            .filter_map(|t| match t {
                TermPattern::Var(v) => Some(v.clone()),
                TermPattern::Term(_) => None,
            })
            .collect()
    };
    // BFS over patterns, connecting through shared variable names.
    let all: Vec<Vec<String>> = patterns.iter().map(vars_of).collect();
    let mut reached = vec![false; patterns.len()];
    let mut queue = vec![0usize];
    reached[0] = true;
    while let Some(i) = queue.pop() {
        for j in 0..patterns.len() {
            if !reached[j] && all[i].iter().any(|v| all[j].contains(v)) {
                reached[j] = true;
                queue.push(j);
            }
        }
    }
    reached.into_iter().all(|r| r)
}

/// Cheap static compatibility check between a pattern and a template.
fn statically_unifiable(
    pattern: &TriplePattern,
    template: &TripleTemplate,
    constant_predicate: &Option<String>,
) -> bool {
    // Predicate: constant-vs-constant must match exactly.
    if let (TermPattern::Term(Term::Named(p)), Some(c)) = (&pattern.predicate, constant_predicate) {
        if p.as_str() != c {
            return false;
        }
    }
    position_unifiable(&pattern.subject, &template.subject)
        && position_unifiable(&pattern.object, &template.object)
        && !matches!(&pattern.subject, TermPattern::Term(Term::Literal(_)))
}

/// One position: kind compatibility plus constant-vs-constant equality for
/// placeholder-free templates.
fn position_unifiable(pattern: &TermPattern, template: &TermTemplate) -> bool {
    let constant = match pattern {
        TermPattern::Var(_) => return true,
        TermPattern::Term(t) => t,
    };
    match (constant, template) {
        (Term::Literal(_), TermTemplate::Iri(_))
        | (Term::Named(_), TermTemplate::Literal { .. }) => false,
        (Term::Named(n), TermTemplate::Iri(st)) if st.columns().is_empty() => {
            st.expand(&Row::new()).as_deref() == Some(n.as_str())
        }
        (Term::Named(_), TermTemplate::Iri(_)) => true, // row-level check decides
        (
            Term::Literal(l),
            TermTemplate::Literal {
                template, datatype, ..
            },
        ) => {
            if let Some(dt) = datatype {
                if l.datatype() != dt {
                    return false;
                }
            }
            if template.columns().is_empty() {
                template.expand(&Row::new()).as_deref() == Some(l.value())
            } else {
                true
            }
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_dap::clock::ManualClock;
    use applab_dap::server::grid_dataset;
    use applab_dap::transport::Local;
    use applab_dap::{DapClient, DapServer};
    use applab_geotriples::parse_mappings;
    use applab_geotriples::{TabularSource, Value};
    use std::sync::Arc;
    use std::time::Duration;

    const PARK_MAPPINGS: &str = r#"
mappingId parks
target osm:poi_{id} a osm:PointOfInterest ;
       osm:poiType osm:park ;
       osm:hasName {name}^^xsd:string ;
       geo:hasGeometry osm:geom_{id} .
       osm:geom_{id} geo:asWKT {geom}^^geo:wktLiteral .
source SELECT * FROM parks WHERE kind = park
"#;

    fn parks_table(n: usize) -> TabularSource {
        let mut rows = Vec::new();
        for i in 0..n {
            let mut r = Row::new();
            r.insert("id".into(), Value::Number(i as f64));
            r.insert("name".into(), Value::Text(format!("park {i}")));
            r.insert(
                "kind".into(),
                Value::Text(if i % 3 == 0 { "industrial" } else { "park" }.into()),
            );
            r.insert(
                "geom".into(),
                Value::Geometry(applab_geo::Geometry::rect(
                    i as f64,
                    0.0,
                    i as f64 + 0.5,
                    0.5,
                )),
            );
            rows.push(r);
        }
        TabularSource {
            name: "parks".into(),
            rows,
        }
    }

    fn virtual_graph(n: usize) -> VirtualGraph {
        let mut ds = DataSource::new();
        ds.add_table(parks_table(n));
        VirtualGraph::new(ds, parse_mappings(PARK_MAPPINGS).unwrap()).unwrap()
    }

    #[test]
    fn virtual_equals_materialized() {
        let vg = virtual_graph(15);
        let materialized = vg.materialize().unwrap();
        // Same queries against both must agree.
        for q in [
            "SELECT ?s ?name WHERE { ?s osm:hasName ?name }",
            "SELECT ?s WHERE { ?s a osm:PointOfInterest ; osm:poiType osm:park }",
            r#"SELECT ?s ?wkt WHERE {
                 ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt .
                 FILTER(geof:sfIntersects(?wkt, "POLYGON ((3 0, 8 0, 8 1, 3 1, 3 0))"^^geo:wktLiteral))
               }"#,
        ] {
            let virt = applab_sparql::query(&vg, q).unwrap();
            let mat = applab_sparql::query(&materialized, q).unwrap();
            let norm = |r: &applab_sparql::QueryResults| {
                let mut rows: Vec<String> = r
                    .rows()
                    .iter()
                    .map(|row| {
                        row.values
                            .iter()
                            .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                            .collect::<Vec<_>>()
                            .join("|")
                    })
                    .collect();
                rows.sort();
                rows
            };
            assert_eq!(norm(&virt), norm(&mat), "query: {q}");
        }
    }

    #[test]
    fn bgp_rewriting_answers_single_mapping_queries() {
        let vg = virtual_graph(10);
        // All three patterns unify with the parks mapping → fast path.
        let patterns = vec![
            TriplePattern::new(
                TermPattern::var("s"),
                Term::named(vocab::osm::HAS_NAME),
                TermPattern::var("name"),
            ),
            TriplePattern::new(
                TermPattern::var("s"),
                Term::named(vocab::geo::HAS_GEOMETRY),
                TermPattern::var("g"),
            ),
            TriplePattern::new(
                TermPattern::var("g"),
                Term::named(vocab::geo::AS_WKT),
                TermPattern::var("wkt"),
            ),
        ];
        let bindings = vg.evaluate_bgp(&patterns, &HashMap::new()).unwrap();
        // Parks only (kind=park): ids not divisible by 3 → 1,2,4,5,7,8 of 0..10.
        assert_eq!(bindings.len(), 6);
        for b in &bindings {
            assert!(b.contains_key("s") && b.contains_key("wkt"));
        }
    }

    #[test]
    fn bgp_rewriting_uses_spatial_hint() {
        let vg = virtual_graph(50);
        let patterns = vec![TriplePattern::new(
            TermPattern::var("g"),
            Term::named(vocab::geo::AS_WKT),
            TermPattern::var("wkt"),
        )];
        let mut spatial = HashMap::new();
        spatial.insert("wkt".to_string(), Envelope::new(10.0, 0.0, 12.0, 1.0));
        let constrained = vg.evaluate_bgp(&patterns, &spatial).unwrap();
        let unconstrained = vg.evaluate_bgp(&patterns, &HashMap::new()).unwrap();
        assert!(constrained.len() < unconstrained.len());
        assert!(!constrained.is_empty());
    }

    #[test]
    fn listing2_and_listing3_end_to_end() {
        // The on-the-fly workflow: OPeNDAP server → opendap vtable →
        // virtual graph → Listing 3 query.
        let server = DapServer::new();
        server.publish(grid_dataset(
            "Copernicus-Land-timeseries-global-LAI",
            &[0.0, 864_000.0],
            &[48.0, 48.5],
            &[2.0, 2.5],
            |t, la, lo| {
                if la == 0 && lo == 0 {
                    -1.0 // noisy negative value: filtered by WHERE LAI > 0
                } else {
                    (t + 1) as f64 + la as f64 / 10.0 + lo as f64 / 100.0
                }
            },
        ));
        let client = Arc::new(DapClient::new(Arc::new(server), Arc::new(Local::new())));
        let clock = ManualClock::new();
        let mut ds = DataSource::new();
        ds.add_opendap(
            "Copernicus-Land-timeseries-global-LAI",
            "LAI",
            Arc::new(crate::vtable::OpendapTable::new(
                client,
                "Copernicus-Land-timeseries-global-LAI",
                "LAI",
                Duration::from_secs(600),
                clock,
            )),
        );
        // Listing 2, near verbatim.
        let mappings = parse_mappings(
            r#"
mappingId opendap_mapping
target lai:{id} rdf:type lai:Observation .
       lai:{id} lai:hasLai {LAI}^^xsd:float ;
       time:hasTime {ts}^^xsd:dateTime .
       lai:{id} geo:hasGeometry _:g_{id} .
       _:g_{id} geo:asWKT {loc}^^geo:wktLiteral .
source SELECT id, LAI, ts, loc FROM (ordered opendap url:https://analytics.ramani.ujuizi.com/thredds/dodsC/Copernicus-Land-timeseries-global-LAI/readdods/LAI/, 10) WHERE LAI > 0
"#,
        )
        .unwrap();
        let vg = VirtualGraph::new(ds, mappings).unwrap();

        // Listing 3, verbatim.
        let r = applab_sparql::query(
            &vg,
            r#"SELECT DISTINCT ?s ?wkt ?lai
WHERE { ?s lai:hasLai ?lai .
        ?s geo:hasGeometry ?g .
        ?g geo:asWKT ?wkt }"#,
        )
        .unwrap();
        // 2 times × (4 cells − 1 negative cell) = 6 observations.
        assert_eq!(r.len(), 6);
        // All LAI values positive (the WHERE filter of the mapping).
        for i in 0..r.len() {
            let lai = r.value(i, "lai").unwrap().as_literal().unwrap();
            assert!(lai.as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn pattern_at_a_time_fallback_is_correct() {
        // Two mappings: the BGP spans both → evaluate_bgp returns None and
        // the generic path must still answer correctly.
        let two = format!(
            "{PARK_MAPPINGS}\nmappingId labels\ntarget osm:poi_{{id}} rdfs:label {{name}}^^xsd:string .\nsource SELECT id, name FROM parks\n"
        );
        let mut ds = DataSource::new();
        ds.add_table(parks_table(6));
        let vg = VirtualGraph::new(ds, parse_mappings(&two).unwrap()).unwrap();
        let r = applab_sparql::query(
            &vg,
            "SELECT ?s ?n ?l WHERE { ?s osm:hasName ?n . ?s rdfs:label ?l }",
        )
        .unwrap();
        // Parks (ids 1,2,4,5) have both hasName (mapping 1, kind=park only)
        // and label (mapping 2, all rows).
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn structural_stats_come_from_mappings_without_fetching() {
        // Stats are built in `new()` from the mapping shapes alone — no
        // source rows are consulted, so constructing the graph is enough.
        let vg = virtual_graph(10);
        let stats = applab_sparql::GraphSource::stats(&vg).expect("virtual graph has stats");
        assert!(stats.total_triples > 0);
        // Constant-object template (poiType → osm:park): one distinct object.
        let ty = stats.predicate(vocab::osm::POI_TYPE).unwrap();
        assert_eq!(ty.distinct_objects, 1);
        // Templated object (hasName {name}): as many distinct as rows guessed.
        let name = stats.predicate(vocab::osm::HAS_NAME).unwrap();
        assert!(name.distinct_objects > 1);
        assert!(name.distinct_objects <= name.triples);
        // The WKT template registers in the spatial sketch (bounds unknown).
        assert!(stats.spatial.entries > 0);
        assert!(stats.spatial.bounds.is_none());
    }

    #[test]
    fn planner_matches_written_order_on_virtual_graph() {
        // Two mappings force the pattern-at-a-time path, where the planner
        // actually reorders; results must be the same multiset.
        let two = format!(
            "{PARK_MAPPINGS}\nmappingId labels\ntarget osm:poi_{{id}} rdfs:label {{name}}^^xsd:string .\nsource SELECT id, name FROM parks\n"
        );
        let mut ds = DataSource::new();
        ds.add_table(parks_table(12));
        let vg = VirtualGraph::new(ds, parse_mappings(&two).unwrap()).unwrap();
        let q = applab_sparql::parse_query(
            "SELECT ?s ?n ?l ?w WHERE {
               ?s rdfs:label ?l .
               ?s osm:hasName ?n .
               ?s geo:hasGeometry ?g .
               ?g geo:asWKT ?w
             }",
        )
        .unwrap();
        let opts = applab_sparql::EvalOptions::default();
        let plain = applab_sparql::evaluate_with(&vg, &q, &opts).unwrap();
        let planned = applab_sparql::evaluate_with(&vg, &q, &opts.clone().planner(true)).unwrap();
        let (ca, cb) = (plain.to_csv(), planned.to_csv());
        let mut a: Vec<&str> = ca.lines().collect();
        let mut b: Vec<&str> = cb.lines().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert!(!plain.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn remote_failures_are_recorded_not_silently_empty() {
        let server = DapServer::new();
        server.publish(grid_dataset("lai", &[0.0], &[48.0], &[2.0], |_, _, _| 1.0));
        server.set_fault_hook(Box::new(|_, _| {
            Err(applab_dap::DapError::Transport("reset".into()))
        }));
        let client = Arc::new(DapClient::new(Arc::new(server), Arc::new(Local::new())));
        let clock = ManualClock::new();
        let mut ds = DataSource::new();
        ds.add_opendap(
            "lai",
            "LAI",
            Arc::new(crate::vtable::OpendapTable::new(
                client,
                "lai",
                "LAI",
                Duration::ZERO,
                clock,
            )),
        );
        let mappings = parse_mappings(
            "mappingId m\ntarget lai:{id} lai:hasLai {LAI}^^xsd:float .\nsource SELECT id, LAI FROM (ordered opendap url:https://x/thredds/dodsC/lai/readdods/LAI/, 10)\n",
        )
        .unwrap();
        let vg = VirtualGraph::new(ds, mappings).unwrap();

        // Pattern-at-a-time path.
        let _ = crate::fault::take_source_fault();
        assert!(vg.triples_matching(None, None, None).is_empty());
        assert!(matches!(
            crate::fault::take_source_fault(),
            Some(ObdaError::VirtualTable(_))
        ));

        // Whole-BGP rewrite path.
        let patterns = vec![TriplePattern::new(
            TermPattern::var("s"),
            Term::named(vocab::lai::HAS_LAI),
            TermPattern::var("lai"),
        )];
        let bindings = vg.evaluate_bgp(&patterns, &HashMap::new()).unwrap();
        assert!(bindings.is_empty());
        assert!(matches!(
            crate::fault::take_source_fault(),
            Some(ObdaError::VirtualTable(_))
        ));
    }

    #[test]
    fn bad_mapping_source_rejected() {
        let ds = DataSource::new();
        let mappings = parse_mappings(
            "mappingId m\ntarget osm:poi_{id} a osm:PointOfInterest .\nsource NOT A QUERY\n",
        )
        .unwrap();
        assert!(matches!(
            VirtualGraph::new(ds, mappings),
            Err(ObdaError::Mapping(_))
        ));
    }

    fn pat(s: &str, p: &str, o: &str) -> TriplePattern {
        let term = |t: &str| -> TermPattern {
            match t.strip_prefix('?') {
                Some(v) => TermPattern::var(v),
                None => Term::named(format!("http://ex.org/{t}")).into(),
            }
        };
        TriplePattern::new(term(s), term(p), term(o))
    }

    #[test]
    fn variable_connected_accepts_chains_and_singletons() {
        assert!(variable_connected(&[]));
        assert!(variable_connected(&[pat("?s", "p", "?o")]));
        // ?s–?g–?w chain: each adjacent pair shares a variable.
        assert!(variable_connected(&[
            pat("?s", "hasGeometry", "?g"),
            pat("?g", "asWKT", "?w"),
            pat("?s", "type", "Park"),
        ]));
        // A fully ground singleton is trivially connected.
        assert!(variable_connected(&[pat("s1", "p", "o1")]));
    }

    #[test]
    fn variable_connected_rejects_disjoint_components() {
        // The shrunk shape of the same-row join bug: two patterns with no
        // shared variable must take the generic cross-product path.
        assert!(!variable_connected(&[
            pat("?s1", "hasCode", "?code1"),
            pat("?g1", "asWKT", "?w1"),
        ]));
        // Sharing a predicate *variable* counts as connected…
        assert!(variable_connected(&[
            pat("?s1", "?p", "?o1"),
            pat("?s2", "?p", "?o2"),
        ]));
        // …but sharing only a constant does not.
        assert!(!variable_connected(&[
            pat("?s1", "p", "?o1"),
            pat("?s2", "p", "?o2"),
        ]));
        // A ground pattern alongside anything else is its own component.
        assert!(!variable_connected(&[
            pat("?s", "p", "?o"),
            pat("s1", "p", "o1"),
        ]));
    }
}
