//! The source-fault side channel.
//!
//! [`GraphSource`](applab_sparql::GraphSource) access methods return plain
//! triple/binding collections — there is no `Result` in the trait, so a
//! remote source failure inside a scan used to degenerate silently into
//! "no triples", indistinguishable from a genuinely empty graph. That is
//! exactly the *silent partial result* the fault model forbids.
//!
//! Instead, graph access paths that swallow an error now [record] it in a
//! thread-local slot, and the query driver [takes] the slot after
//! evaluation: an empty (or partial) answer with a recorded fault is
//! reported as the fault, never as a result.
//!
//! Keep-first semantics: the first fault of an evaluation is the root
//! cause; later ones (retries of the same dead upstream from sibling
//! patterns) would only obscure it. Sound because evaluation of one query
//! runs on one thread (the evaluator is cooperative, not work-stealing).
//!
//! [record]: record_source_fault
//! [takes]: take_source_fault

use crate::ObdaError;
use std::cell::RefCell;

thread_local! {
    static SOURCE_FAULT: RefCell<Option<ObdaError>> = const { RefCell::new(None) };
}

/// Record a source failure that an infallible access path is about to
/// swallow. Keeps the **first** fault per take; later faults are dropped.
pub fn record_source_fault(e: ObdaError) {
    SOURCE_FAULT.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    });
}

/// Take (and clear) the recorded fault, if any. Call once **before**
/// evaluation to discard leftovers, and once after to learn whether the
/// answer is trustworthy.
pub fn take_source_fault() -> Option<ObdaError> {
    SOURCE_FAULT.with(|slot| slot.borrow_mut().take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_keeps_first_and_clears_on_take() {
        assert!(take_source_fault().is_none());
        record_source_fault(ObdaError::VirtualTable("first".into()));
        record_source_fault(ObdaError::VirtualTable("second".into()));
        assert_eq!(
            take_source_fault(),
            Some(ObdaError::VirtualTable("first".into()))
        );
        assert!(take_source_fault().is_none(), "take clears the slot");
    }

    #[test]
    fn slot_is_thread_local() {
        record_source_fault(ObdaError::Sql("here".into()));
        std::thread::spawn(|| {
            assert!(take_source_fault().is_none());
        })
        .join()
        .expect("thread");
        assert_eq!(take_source_fault(), Some(ObdaError::Sql("here".into())));
    }
}
