//! Virtual tables (the MadIS UDF mechanism).
//!
//! "We used MadIS to create a new UDF, named Opendap, that is able to
//! create and populate a virtual table on-the-fly with data retrieved from
//! an OPeNDAP server." The rows produced follow Listing 2: a constructed
//! `id` ("the column id was not originally in the dataset but it is
//! constructed from the location and the time of observation"), the value
//! column named after the variable, a `ts` timestamp ("the Opendap virtual
//! table operator converts these values to a standard format"), and a
//! `loc` point geometry.
//!
//! Results are cached for the window `w` of the mapping ("if a query
//! arrives ... within this time window, the cached results can be used
//! directly, eliminating the cost of performing another call").

use crate::ObdaError;
use applab_dap::clock::Clock;
use applab_dap::{Constraint, DapClient, DapError};
use applab_geotriples::{Row, TabularSource, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A virtual table: materializes rows on demand.
pub trait VirtualTable: Send + Sync {
    /// Produce the current rows.
    fn open(&self) -> Result<TabularSource, ObdaError>;
}

/// The `opendap` virtual table over one dataset variable.
pub struct OpendapTable {
    client: Arc<DapClient>,
    dataset: String,
    variable: String,
    window: Duration,
    clock: Arc<dyn Clock>,
    cache: Mutex<Option<(Duration, Arc<TabularSource>)>>,
}

impl OpendapTable {
    pub fn new(
        client: Arc<DapClient>,
        dataset: impl Into<String>,
        variable: impl Into<String>,
        window: Duration,
        clock: Arc<dyn Clock>,
    ) -> Self {
        OpendapTable {
            client,
            dataset: dataset.into(),
            variable: variable.into(),
            window,
            clock,
            cache: Mutex::new(None),
        }
    }

    fn fetch(&self) -> Result<TabularSource, ObdaError> {
        let wrap = |e: DapError| ObdaError::VirtualTable(e.to_string());
        // One DODS call for the whole variable plus its coordinates, then
        // unroll the grid into (id, VAR, ts, loc) rows.
        let vars = self
            .client
            .get_data(&self.dataset, &Constraint::all())
            .map_err(wrap)?;
        let find = |name: &str| vars.iter().find(|v| v.name == name);
        let main = find(&self.variable).ok_or_else(|| {
            ObdaError::VirtualTable(format!(
                "dataset {} has no variable {}",
                self.dataset, self.variable
            ))
        })?;
        if main.dims.len() != 3 || main.dims[0] != "time" {
            return Err(ObdaError::VirtualTable(format!(
                "opendap vtable expects a (time, lat, lon) grid, got {:?}",
                main.dims
            )));
        }
        let times = find("time")
            .ok_or_else(|| ObdaError::VirtualTable("missing time coordinate".into()))?;
        let lats =
            find("lat").ok_or_else(|| ObdaError::VirtualTable("missing lat coordinate".into()))?;
        let lons =
            find("lon").ok_or_else(|| ObdaError::VirtualTable("missing lon coordinate".into()))?;

        // Decode the time axis to epoch seconds through the DAS metadata.
        let das = self.client.get_das(&self.dataset).map_err(wrap)?;
        let units = das
            .get("time")
            .and_then(|a| a.get("units"))
            .and_then(|v| match v {
                applab_array::AttrValue::Text(t) => Some(t.clone()),
                _ => None,
            })
            .unwrap_or_else(|| "seconds since 1970-01-01".to_string());
        let axis = applab_array::time::TimeAxis::parse(&units)
            .map_err(|e| ObdaError::VirtualTable(e.to_string()))?;

        let (nt, nla, nlo) = (
            main.data.shape()[0],
            main.data.shape()[1],
            main.data.shape()[2],
        );
        let mut rows = Vec::with_capacity(nt * nla * nlo);
        for t in 0..nt {
            let epoch = axis.decode(times.data.data()[t]);
            let ts = format_datetime(epoch);
            for la in 0..nla {
                for lo in 0..nlo {
                    let value = main.data.get(&[t, la, lo]).expect("in bounds");
                    if value.is_nan() {
                        continue; // fill values never become observations
                    }
                    let lat = lats.data.data()[la];
                    let lon = lons.data.data()[lo];
                    let mut row = Row::new();
                    row.insert(
                        "id".into(),
                        Value::Text(format!("obs_{lon}_{lat}_{epoch}").replace(['.', '-'], "m")),
                    );
                    row.insert(self.variable.clone(), Value::Number(value));
                    row.insert("ts".into(), Value::Text(ts.clone()));
                    row.insert(
                        "loc".into(),
                        Value::Geometry(applab_geo::Geometry::point(lon, lat)),
                    );
                    rows.push(row);
                }
            }
        }
        Ok(TabularSource {
            name: format!("opendap:{}:{}", self.dataset, self.variable),
            rows,
        })
    }

    /// Cache statistics are on the client (round trips) — expose the window
    /// for introspection.
    pub fn window(&self) -> Duration {
        self.window
    }
}

impl VirtualTable for OpendapTable {
    fn open(&self) -> Result<TabularSource, ObdaError> {
        let now = self.clock.now();
        if self.window > Duration::ZERO {
            let cache = self.cache.lock();
            if let Some((at, rows)) = cache.as_ref() {
                if now.saturating_sub(*at) < self.window {
                    return Ok(rows.as_ref().clone());
                }
            }
        }
        let rows = Arc::new(self.fetch()?);
        if self.window > Duration::ZERO {
            *self.cache.lock() = Some((now, rows.clone()));
        }
        Ok(rows.as_ref().clone())
    }
}

/// `xsd:dateTime` formatting (same algorithm as `applab-rdf::datetime`).
fn format_datetime(t: i64) -> String {
    let days = t.div_euclid(86_400);
    let secs = t.rem_euclid(86_400);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        y,
        m,
        d,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

/// A registry of named virtual tables.
#[derive(Default)]
pub struct VTableRegistry {
    tables: HashMap<String, Arc<dyn VirtualTable>>,
}

impl VTableRegistry {
    pub fn new() -> Self {
        VTableRegistry::default()
    }

    pub fn register(&mut self, key: impl Into<String>, table: Arc<dyn VirtualTable>) {
        self.tables.insert(key.into(), table);
    }

    pub fn get(&self, key: &str) -> Option<&Arc<dyn VirtualTable>> {
        self.tables.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_dap::clock::ManualClock;
    use applab_dap::server::grid_dataset;
    use applab_dap::transport::Local;
    use applab_dap::DapServer;

    fn client() -> Arc<DapClient> {
        let server = DapServer::new();
        server.publish(grid_dataset(
            "lai_300m",
            &[0.0, 864_000.0],
            &[48.0, 48.5],
            &[2.0, 2.5],
            |t, la, lo| {
                if t == 0 && la == 0 && lo == 0 {
                    f64::NAN // one fill value
                } else {
                    (t * 100 + la * 10 + lo) as f64
                }
            },
        ));
        Arc::new(DapClient::new(Arc::new(server), Arc::new(Local::new())))
    }

    #[test]
    fn rows_follow_listing2_schema() {
        let clock = ManualClock::new();
        let vt = OpendapTable::new(client(), "lai_300m", "LAI", Duration::ZERO, clock);
        let rows = vt.open().unwrap();
        // 2 times × 2 lats × 2 lons − 1 NaN = 7 observations.
        assert_eq!(rows.rows.len(), 7);
        let r = &rows.rows[0];
        assert!(matches!(r["loc"], Value::Geometry(_)));
        assert!(matches!(r["LAI"], Value::Number(_)));
        match &r["ts"] {
            Value::Text(ts) => assert!(ts.ends_with('Z') && ts.contains('T')),
            other => panic!("{other:?}"),
        }
        match &r["id"] {
            Value::Text(id) => assert!(id.starts_with("obs_")),
            other => panic!("{other:?}"),
        }
        // ids are unique.
        let ids: std::collections::HashSet<String> = rows
            .rows
            .iter()
            .map(|r| match &r["id"] {
                Value::Text(t) => t.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn window_cache_avoids_refetch() {
        let clock = ManualClock::new();
        let c = client();
        let vt = OpendapTable::new(
            c.clone(),
            "lai_300m",
            "LAI",
            Duration::from_secs(600),
            clock.clone(),
        );
        vt.open().unwrap();
        let trips_after_first = c.round_trips();
        vt.open().unwrap();
        vt.open().unwrap();
        assert_eq!(c.round_trips(), trips_after_first, "cache hits refetched");
        // Window expiry forces a refetch.
        clock.advance(Duration::from_secs(601));
        vt.open().unwrap();
        assert!(c.round_trips() > trips_after_first);
    }

    #[test]
    fn zero_window_always_fetches() {
        let clock = ManualClock::new();
        let c = client();
        let vt = OpendapTable::new(c.clone(), "lai_300m", "LAI", Duration::ZERO, clock);
        vt.open().unwrap();
        let first = c.round_trips();
        vt.open().unwrap();
        assert!(c.round_trips() > first);
    }

    #[test]
    fn missing_variable_errors() {
        let clock = ManualClock::new();
        let vt = OpendapTable::new(client(), "lai_300m", "NDVI", Duration::ZERO, clock);
        assert!(matches!(vt.open(), Err(ObdaError::VirtualTable(_))));
    }

    #[test]
    fn registry() {
        let clock = ManualClock::new();
        let mut reg = VTableRegistry::new();
        reg.register(
            "opendap:lai_300m:LAI",
            Arc::new(OpendapTable::new(
                client(),
                "lai_300m",
                "LAI",
                Duration::ZERO,
                clock,
            )),
        );
        assert!(reg.get("opendap:lai_300m:LAI").is_some());
        assert!(reg.get("nope").is_none());
    }
}
