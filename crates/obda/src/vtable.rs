//! Virtual tables (the MadIS UDF mechanism).
//!
//! "We used MadIS to create a new UDF, named Opendap, that is able to
//! create and populate a virtual table on-the-fly with data retrieved from
//! an OPeNDAP server." The rows produced follow Listing 2: a constructed
//! `id` ("the column id was not originally in the dataset but it is
//! constructed from the location and the time of observation"), the value
//! column named after the variable, a `ts` timestamp ("the Opendap virtual
//! table operator converts these values to a standard format"), and a
//! `loc` point geometry.
//!
//! Results are cached for the window `w` of the mapping ("if a query
//! arrives ... within this time window, the cached results can be used
//! directly, eliminating the cost of performing another call").

use crate::ObdaError;
use applab_dap::clock::Clock;
use applab_dap::{Constraint, DapClient, DapError};
use applab_geotriples::{Row, TabularSource, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A virtual table: materializes rows on demand.
pub trait VirtualTable: Send + Sync {
    /// Produce the current rows.
    fn open(&self) -> Result<TabularSource, ObdaError>;
}

/// A classified fetch failure: `transient` failures (connection-level, or
/// retries exhausted) may be bridged by a stale cached copy; permanent ones
/// (bad variable, bad grid, bad metadata) always propagate.
struct FetchFailure {
    error: ObdaError,
    transient: bool,
}

impl FetchFailure {
    fn from_dap(e: DapError) -> Self {
        let transient = e.is_retryable() || matches!(e, DapError::Unavailable { .. });
        let error = match e {
            DapError::Unavailable { dataset, retries } => {
                ObdaError::Unavailable { dataset, retries }
            }
            other => ObdaError::VirtualTable(other.to_string()),
        };
        FetchFailure { error, transient }
    }

    fn permanent(error: ObdaError) -> Self {
        FetchFailure {
            error,
            transient: false,
        }
    }
}

/// The `opendap` virtual table over one dataset variable.
pub struct OpendapTable {
    client: Arc<DapClient>,
    dataset: String,
    variable: String,
    window: Duration,
    /// How long past `window` an expired cache entry may still bridge a
    /// *transient* upstream failure. Zero (the default) disables
    /// serve-stale.
    grace: Duration,
    clock: Arc<dyn Clock>,
    cache: Mutex<Option<(Duration, Arc<TabularSource>)>>,
    stale: Arc<applab_obs::Counter>,
}

impl OpendapTable {
    pub fn new(
        client: Arc<DapClient>,
        dataset: impl Into<String>,
        variable: impl Into<String>,
        window: Duration,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let dataset = dataset.into();
        let labels = [("dataset", dataset.as_str())];
        let stale =
            applab_obs::global().counter_with("applab_obda_vtable_stale_served_total", &labels);
        OpendapTable {
            client,
            dataset,
            variable: variable.into(),
            window,
            grace: Duration::ZERO,
            clock,
            cache: Mutex::new(None),
            stale,
        }
    }

    /// Enable serve-stale: an expired window entry stays usable for `grace`
    /// beyond its window when the refresh fails transiently. Served stale
    /// copies count in `applab_obda_vtable_stale_served_total` and mark the
    /// thread's degrade scope.
    pub fn with_stale_grace(mut self, grace: Duration) -> Self {
        self.grace = grace;
        self
    }

    /// Stale copies served so far.
    pub fn stale_serves(&self) -> u64 {
        self.stale.get()
    }

    fn fetch(&self) -> Result<TabularSource, FetchFailure> {
        let wrap = FetchFailure::from_dap;
        // One DODS call for the whole variable plus its coordinates, then
        // unroll the grid into (id, VAR, ts, loc) rows.
        let vars = self
            .client
            .get_data(&self.dataset, &Constraint::all())
            .map_err(wrap)?;
        let find = |name: &str| vars.iter().find(|v| v.name == name);
        let main = find(&self.variable).ok_or_else(|| {
            FetchFailure::permanent(ObdaError::VirtualTable(format!(
                "dataset {} has no variable {}",
                self.dataset, self.variable
            )))
        })?;
        if main.dims.len() != 3 || main.dims[0] != "time" {
            return Err(FetchFailure::permanent(ObdaError::VirtualTable(format!(
                "opendap vtable expects a (time, lat, lon) grid, got {:?}",
                main.dims
            ))));
        }
        let missing = |what: &str| {
            FetchFailure::permanent(ObdaError::VirtualTable(format!(
                "missing {what} coordinate"
            )))
        };
        let times = find("time").ok_or_else(|| missing("time"))?;
        let lats = find("lat").ok_or_else(|| missing("lat"))?;
        let lons = find("lon").ok_or_else(|| missing("lon"))?;

        // Decode the time axis to epoch seconds through the DAS metadata.
        let das = self.client.get_das(&self.dataset).map_err(wrap)?;
        let units = das
            .get("time")
            .and_then(|a| a.get("units"))
            .and_then(|v| match v {
                applab_array::AttrValue::Text(t) => Some(t.clone()),
                _ => None,
            })
            .unwrap_or_else(|| "seconds since 1970-01-01".to_string());
        let axis = applab_array::time::TimeAxis::parse(&units)
            .map_err(|e| FetchFailure::permanent(ObdaError::VirtualTable(e.to_string())))?;

        let (nt, nla, nlo) = (
            main.data.shape()[0],
            main.data.shape()[1],
            main.data.shape()[2],
        );
        let mut rows = Vec::with_capacity(nt * nla * nlo);
        for t in 0..nt {
            let epoch = axis.decode(times.data.data()[t]);
            let ts = format_datetime(epoch);
            for la in 0..nla {
                for lo in 0..nlo {
                    let value = main.data.get(&[t, la, lo]).expect("in bounds");
                    if value.is_nan() {
                        continue; // fill values never become observations
                    }
                    let lat = lats.data.data()[la];
                    let lon = lons.data.data()[lo];
                    let mut row = Row::new();
                    row.insert(
                        "id".into(),
                        Value::Text(format!("obs_{lon}_{lat}_{epoch}").replace(['.', '-'], "m")),
                    );
                    row.insert(self.variable.clone(), Value::Number(value));
                    row.insert("ts".into(), Value::Text(ts.clone()));
                    row.insert(
                        "loc".into(),
                        Value::Geometry(applab_geo::Geometry::point(lon, lat)),
                    );
                    rows.push(row);
                }
            }
        }
        Ok(TabularSource {
            name: format!("opendap:{}:{}", self.dataset, self.variable),
            rows,
        })
    }

    /// Cache statistics are on the client (round trips) — expose the window
    /// for introspection.
    pub fn window(&self) -> Duration {
        self.window
    }
}

impl VirtualTable for OpendapTable {
    fn open(&self) -> Result<TabularSource, ObdaError> {
        let now = self.clock.now();
        if self.window > Duration::ZERO {
            let cache = self.cache.lock();
            if let Some((at, rows)) = cache.as_ref() {
                if now.saturating_sub(*at) < self.window {
                    return Ok(rows.as_ref().clone());
                }
            }
        }
        match self.fetch() {
            Ok(rows) => {
                let rows = Arc::new(rows);
                if self.window > Duration::ZERO {
                    *self.cache.lock() = Some((now, rows.clone()));
                }
                Ok(rows.as_ref().clone())
            }
            Err(failure) => {
                // Serve-stale: a transient refresh failure inside the grace
                // period is bridged by the expired copy, flagged degraded.
                // Permanent failures always propagate — stale rows would
                // mask a real catalog or mapping problem.
                if failure.transient && self.window > Duration::ZERO && self.grace > Duration::ZERO
                {
                    let cache = self.cache.lock();
                    if let Some((at, rows)) = cache.as_ref() {
                        if now.saturating_sub(*at) < self.window + self.grace {
                            self.stale.inc();
                            applab_obs::degrade::mark("obda_vtable");
                            return Ok(rows.as_ref().clone());
                        }
                    }
                }
                Err(failure.error)
            }
        }
    }
}

/// `xsd:dateTime` formatting (same algorithm as `applab-rdf::datetime`).
fn format_datetime(t: i64) -> String {
    let days = t.div_euclid(86_400);
    let secs = t.rem_euclid(86_400);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        y,
        m,
        d,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

/// A registry of named virtual tables.
#[derive(Default)]
pub struct VTableRegistry {
    tables: HashMap<String, Arc<dyn VirtualTable>>,
}

impl VTableRegistry {
    pub fn new() -> Self {
        VTableRegistry::default()
    }

    pub fn register(&mut self, key: impl Into<String>, table: Arc<dyn VirtualTable>) {
        self.tables.insert(key.into(), table);
    }

    pub fn get(&self, key: &str) -> Option<&Arc<dyn VirtualTable>> {
        self.tables.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_dap::clock::ManualClock;
    use applab_dap::server::grid_dataset;
    use applab_dap::transport::Local;
    use applab_dap::DapServer;

    fn client() -> Arc<DapClient> {
        let server = DapServer::new();
        server.publish(grid_dataset(
            "lai_300m",
            &[0.0, 864_000.0],
            &[48.0, 48.5],
            &[2.0, 2.5],
            |t, la, lo| {
                if t == 0 && la == 0 && lo == 0 {
                    f64::NAN // one fill value
                } else {
                    (t * 100 + la * 10 + lo) as f64
                }
            },
        ));
        Arc::new(DapClient::new(Arc::new(server), Arc::new(Local::new())))
    }

    #[test]
    fn rows_follow_listing2_schema() {
        let clock = ManualClock::new();
        let vt = OpendapTable::new(client(), "lai_300m", "LAI", Duration::ZERO, clock);
        let rows = vt.open().unwrap();
        // 2 times × 2 lats × 2 lons − 1 NaN = 7 observations.
        assert_eq!(rows.rows.len(), 7);
        let r = &rows.rows[0];
        assert!(matches!(r["loc"], Value::Geometry(_)));
        assert!(matches!(r["LAI"], Value::Number(_)));
        match &r["ts"] {
            Value::Text(ts) => assert!(ts.ends_with('Z') && ts.contains('T')),
            other => panic!("{other:?}"),
        }
        match &r["id"] {
            Value::Text(id) => assert!(id.starts_with("obs_")),
            other => panic!("{other:?}"),
        }
        // ids are unique.
        let ids: std::collections::HashSet<String> = rows
            .rows
            .iter()
            .map(|r| match &r["id"] {
                Value::Text(t) => t.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn window_cache_avoids_refetch() {
        let clock = ManualClock::new();
        let c = client();
        let vt = OpendapTable::new(
            c.clone(),
            "lai_300m",
            "LAI",
            Duration::from_secs(600),
            clock.clone(),
        );
        vt.open().unwrap();
        let trips_after_first = c.round_trips();
        vt.open().unwrap();
        vt.open().unwrap();
        assert_eq!(c.round_trips(), trips_after_first, "cache hits refetched");
        // Window expiry forces a refetch.
        clock.advance(Duration::from_secs(601));
        vt.open().unwrap();
        assert!(c.round_trips() > trips_after_first);
    }

    #[test]
    fn zero_window_always_fetches() {
        let clock = ManualClock::new();
        let c = client();
        let vt = OpendapTable::new(c.clone(), "lai_300m", "LAI", Duration::ZERO, clock);
        vt.open().unwrap();
        let first = c.round_trips();
        vt.open().unwrap();
        assert!(c.round_trips() > first);
    }

    #[test]
    fn missing_variable_errors() {
        let clock = ManualClock::new();
        let vt = OpendapTable::new(client(), "lai_300m", "NDVI", Duration::ZERO, clock);
        assert!(matches!(vt.open(), Err(ObdaError::VirtualTable(_))));
    }

    fn server() -> Arc<DapServer> {
        let server = DapServer::new();
        server.publish(grid_dataset(
            "lai_300m",
            &[0.0, 864_000.0],
            &[48.0, 48.5],
            &[2.0, 2.5],
            |t, la, lo| (t * 100 + la * 10 + lo) as f64,
        ));
        Arc::new(server)
    }

    #[test]
    fn stale_grace_bridges_transient_outage() {
        let srv = server();
        let c = Arc::new(DapClient::new(srv.clone(), Arc::new(Local::new())));
        let clock = ManualClock::new();
        let vt = OpendapTable::new(
            c,
            "lai_300m",
            "LAI",
            Duration::from_secs(600),
            clock.clone(),
        )
        .with_stale_grace(Duration::from_secs(3600));
        let fresh = vt.open().unwrap();

        // Upstream goes down; the window expires inside the grace period.
        srv.set_fault_hook(Box::new(|_, _| Err(DapError::Transport("down".into()))));
        clock.advance(Duration::from_secs(601));
        let scope = applab_obs::degrade::Scope::begin();
        let stale = vt.open().expect("grace bridges the outage");
        assert_eq!(stale.rows.len(), fresh.rows.len());
        assert!(scope.degraded(), "stale serve must mark the degrade scope");
        assert_eq!(vt.stale_serves(), 1);

        // Past window + grace the failure propagates, typed.
        clock.advance(Duration::from_secs(3601));
        assert!(matches!(vt.open(), Err(ObdaError::VirtualTable(_))));

        // Upstream recovers: fresh rows, not flagged.
        srv.clear_fault_hook();
        let scope = applab_obs::degrade::Scope::begin();
        assert_eq!(vt.open().unwrap().rows.len(), fresh.rows.len());
        assert!(!scope.degraded());
    }

    #[test]
    fn permanent_failures_never_serve_stale() {
        let srv = server();
        let c = Arc::new(DapClient::new(srv.clone(), Arc::new(Local::new())));
        let clock = ManualClock::new();
        let vt = OpendapTable::new(
            c,
            "lai_300m",
            "LAI",
            Duration::from_secs(600),
            clock.clone(),
        )
        .with_stale_grace(Duration::from_secs(3600));
        vt.open().unwrap();
        // The dataset disappears from the catalog — a permanent answer, not
        // a transport fault: stale rows would mask it.
        srv.set_fault_hook(Box::new(|_, name| {
            Err(DapError::NoSuchDataset(name.to_string()))
        }));
        clock.advance(Duration::from_secs(601));
        assert!(matches!(vt.open(), Err(ObdaError::VirtualTable(_))));
        assert_eq!(vt.stale_serves(), 0);
    }

    #[test]
    fn exhausted_retries_surface_as_unavailable() {
        let srv = server();
        let c = Arc::new(DapClient::new(srv.clone(), Arc::new(Local::new())));
        srv.set_fault_hook(Box::new(|_, _| Err(DapError::Transport("down".into()))));
        c.enable_resilience(
            applab_dap::ResilienceConfig::no_sleep(),
            ManualClock::new(),
            7,
        );
        let clock = ManualClock::new();
        let vt = OpendapTable::new(c, "lai_300m", "LAI", Duration::ZERO, clock);
        match vt.open() {
            Err(ObdaError::Unavailable { dataset, retries }) => {
                assert_eq!(dataset, "lai_300m");
                assert!(retries > 0);
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn registry() {
        let clock = ManualClock::new();
        let mut reg = VTableRegistry::new();
        reg.register(
            "opendap:lai_300m:LAI",
            Arc::new(OpendapTable::new(
                client(),
                "lai_300m",
                "LAI",
                Duration::ZERO,
                clock,
            )),
        );
        assert!(reg.get("opendap:lai_300m:LAI").is_some());
        assert!(reg.get("nope").is_none());
    }
}
