//! The unified error type of the facade.

use std::fmt;
use std::time::Duration;

/// Any error surfaced by the App Lab facade.
///
/// Variants are grouped by *what the caller can do about them*, and each
/// maps to a stable [`CoreError::code`] string that the service layer uses
/// as a metrics label. `Timeout`, `Cancelled`, and `Overloaded` are the
/// structured rejections of `applab-service`: a query that trips its
/// cooperative budget or is refused admission reports one of these, never
/// a truncated result set.
#[derive(Debug)]
pub enum CoreError {
    /// The SPARQL text failed to parse.
    Parse(String),
    /// A GeoTriples/Ontop mapping document is invalid.
    Mapping(applab_geotriples::MappingError),
    /// A backing data source failed (OBDA engine, OPeNDAP transfer, SDL,
    /// Turtle input, unknown endpoint, ...).
    Source(String),
    /// Query evaluation failed.
    Eval(String),
    /// The query exceeded its cooperative time budget. The payload is the
    /// configured budget, not the elapsed time.
    Timeout(Duration),
    /// The query's cancellation token was triggered mid-evaluation.
    Cancelled,
    /// Admission control refused the query: the service was at its
    /// in-flight capacity and the wait queue was full, the queue wait
    /// timed out, or the measured queue delay exceeded the shedding
    /// target. The counts are a snapshot taken at rejection time.
    Overloaded {
        /// Queries being evaluated when the rejection was issued.
        in_flight: usize,
        /// Queries waiting for a permit when the rejection was issued.
        queued: usize,
        /// How long the caller should wait before retrying, computed
        /// from the measured queue delay at rejection time. Transports
        /// surface this verbatim (the HTTP layer's `Retry-After`).
        retry_after: Duration,
    },
    /// A remote dataset stayed down through every retry and no stale copy
    /// could bridge the outage: the query is answerable later, not now.
    Unavailable {
        /// The dataset whose upstream is unreachable.
        dataset: String,
        /// Retries spent before giving up.
        retries: u32,
    },
}

impl CoreError {
    /// A stable, low-cardinality identifier for the error class, suitable
    /// as a metrics label value.
    pub fn code(&self) -> &'static str {
        match self {
            CoreError::Parse(_) => "parse",
            CoreError::Mapping(_) => "mapping",
            CoreError::Source(_) => "source",
            CoreError::Eval(_) => "eval",
            CoreError::Timeout(_) => "timeout",
            CoreError::Cancelled => "cancelled",
            CoreError::Overloaded { .. } => "overloaded",
            CoreError::Unavailable { .. } => "unavailable",
        }
    }

    /// The HTTP status an error of this class maps to on the wire. This
    /// is the single source of truth for the `applab-http` data plane —
    /// the match is exhaustive (no wildcard arm), so adding a variant
    /// without deciding its status is a compile error, and the
    /// [`HTTP_STATUS_TABLE`] completeness test keeps the code-keyed view
    /// in lockstep.
    ///
    /// * `Parse` is the client's fault: **400 Bad Request**.
    /// * `Mapping` / `Eval` are server-side defects: **500**.
    /// * `Source` is a failed upstream exchange: **502 Bad Gateway**.
    /// * `Timeout` is a deadline expiring while we proxied the work
    ///   downstream: **504 Gateway Timeout**.
    /// * `Cancelled` / `Overloaded` / `Unavailable` are retryable
    ///   capacity conditions: **503 Service Unavailable** (the HTTP
    ///   layer adds `Retry-After` for `Overloaded`).
    pub fn http_status(&self) -> u16 {
        match self {
            CoreError::Parse(_) => 400,
            CoreError::Mapping(_) => 500,
            CoreError::Source(_) => 502,
            CoreError::Eval(_) => 500,
            CoreError::Timeout(_) => 504,
            CoreError::Cancelled => 503,
            CoreError::Overloaded { .. } => 503,
            CoreError::Unavailable { .. } => 503,
        }
    }
}

/// The `code → HTTP status` mapping table, one row per [`CoreError`]
/// variant, in the same order as the enum. Wire-facing tooling (the
/// `/sparql` error bodies, dashboards keyed on the outcome code) reads
/// this table; [`CoreError::http_status`] is the authoritative per-value
/// mapping and the two are locked together by a completeness test.
pub const HTTP_STATUS_TABLE: &[(&str, u16)] = &[
    ("parse", 400),
    ("mapping", 500),
    ("source", 502),
    ("eval", 500),
    ("timeout", 504),
    ("cancelled", 503),
    ("overloaded", 503),
    ("unavailable", 503),
];

/// Look up the HTTP status for a stable outcome code (the
/// [`CoreError::code`] values plus `"ok"` → 200). Returns `None` for
/// codes not in [`HTTP_STATUS_TABLE`], so callers holding a code string
/// from a log or metric label can't silently invent a status.
pub fn http_status_for_code(code: &str) -> Option<u16> {
    if code == "ok" {
        return Some(200);
    }
    HTTP_STATUS_TABLE
        .iter()
        .find(|(c, _)| *c == code)
        .map(|(_, s)| *s)
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(m) => write!(f, "parse error: {m}"),
            CoreError::Mapping(e) => write!(f, "{e}"),
            CoreError::Source(m) => write!(f, "source error: {m}"),
            CoreError::Eval(m) => write!(f, "evaluation error: {m}"),
            CoreError::Timeout(budget) => {
                write!(f, "query exceeded its {budget:?} time budget")
            }
            CoreError::Cancelled => write!(f, "query cancelled"),
            CoreError::Overloaded {
                in_flight,
                queued,
                retry_after,
            } => write!(
                f,
                "service overloaded: {in_flight} in flight, {queued} queued, \
                 retry after {retry_after:?}"
            ),
            CoreError::Unavailable { dataset, retries } => {
                write!(f, "dataset {dataset} unavailable after {retries} retries")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<applab_geotriples::MappingError> for CoreError {
    fn from(e: applab_geotriples::MappingError) -> Self {
        CoreError::Mapping(e)
    }
}

impl From<applab_obda::ObdaError> for CoreError {
    fn from(e: applab_obda::ObdaError) -> Self {
        match e {
            applab_obda::ObdaError::Unavailable { dataset, retries } => {
                CoreError::Unavailable { dataset, retries }
            }
            other => CoreError::Source(other.to_string()),
        }
    }
}

impl From<applab_dap::DapError> for CoreError {
    fn from(e: applab_dap::DapError) -> Self {
        match e {
            applab_dap::DapError::Unavailable { dataset, retries } => {
                CoreError::Unavailable { dataset, retries }
            }
            other => CoreError::Source(other.to_string()),
        }
    }
}

impl From<applab_sdl::SdlError> for CoreError {
    fn from(e: applab_sdl::SdlError) -> Self {
        match e {
            applab_sdl::SdlError::Dap(d) => d.into(),
            other => CoreError::Source(other.to_string()),
        }
    }
}

impl From<applab_sparql::ParseError> for CoreError {
    fn from(e: applab_sparql::ParseError) -> Self {
        CoreError::Parse(e.to_string())
    }
}

impl From<applab_sparql::EvalError> for CoreError {
    fn from(e: applab_sparql::EvalError) -> Self {
        match e {
            applab_sparql::EvalError::Timeout(budget) => CoreError::Timeout(budget),
            applab_sparql::EvalError::Cancelled => CoreError::Cancelled,
            applab_sparql::EvalError::Other(m) => CoreError::Eval(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            CoreError::Parse("x".into()),
            CoreError::Source("x".into()),
            CoreError::Eval("x".into()),
            CoreError::Timeout(Duration::from_millis(5)),
            CoreError::Cancelled,
            CoreError::Overloaded {
                in_flight: 4,
                queued: 16,
                retry_after: Duration::from_secs(1),
            },
            CoreError::Unavailable {
                dataset: "lai".into(),
                retries: 3,
            },
        ];
        let codes: Vec<&str> = errors.iter().map(CoreError::code).collect();
        assert_eq!(
            codes,
            [
                "parse",
                "source",
                "eval",
                "timeout",
                "cancelled",
                "overloaded",
                "unavailable"
            ]
        );
    }

    /// Every constructible variant appears in [`HTTP_STATUS_TABLE`], with
    /// the status `http_status` reports, and the table has no extra rows.
    /// Together with the wildcard-free match in `http_status` this means
    /// a new `CoreError` variant cannot reach the wire without an
    /// explicit, tested status decision — it fails compilation first and
    /// this test second.
    #[test]
    fn http_status_table_is_complete_and_consistent() {
        let errors = [
            CoreError::Parse("x".into()),
            CoreError::Source("x".into()),
            CoreError::Eval("x".into()),
            CoreError::Timeout(Duration::from_millis(5)),
            CoreError::Cancelled,
            CoreError::Overloaded {
                in_flight: 4,
                queued: 16,
                retry_after: Duration::from_secs(1),
            },
            CoreError::Unavailable {
                dataset: "lai".into(),
                retries: 3,
            },
        ];
        for e in &errors {
            assert_eq!(
                http_status_for_code(e.code()),
                Some(e.http_status()),
                "table row for code {:?} disagrees with http_status()",
                e.code()
            );
        }
        // The table rows are exactly the variant codes (Mapping is hard
        // to construct here; its row is pinned by value instead).
        assert_eq!(http_status_for_code("mapping"), Some(500));
        let mut table_codes: Vec<&str> = HTTP_STATUS_TABLE.iter().map(|(c, _)| *c).collect();
        let mut variant_codes: Vec<&str> = errors.iter().map(CoreError::code).collect();
        variant_codes.push("mapping");
        table_codes.sort_unstable();
        variant_codes.sort_unstable();
        assert_eq!(table_codes, variant_codes, "table rows == variant codes");
        // Every status is a real HTTP error class for an error outcome.
        for (code, status) in HTTP_STATUS_TABLE {
            assert!(
                (400..=599).contains(status),
                "{code}: {status} is not an HTTP error status"
            );
        }
        assert_eq!(http_status_for_code("ok"), Some(200));
        assert_eq!(http_status_for_code("no-such-code"), None);
    }

    #[test]
    fn unavailable_is_preserved_through_conversions() {
        let obda = applab_obda::ObdaError::Unavailable {
            dataset: "lai".into(),
            retries: 3,
        };
        assert!(matches!(
            CoreError::from(obda),
            CoreError::Unavailable { retries: 3, .. }
        ));
        let dap = applab_dap::DapError::Unavailable {
            dataset: "lai".into(),
            retries: 2,
        };
        assert!(matches!(
            CoreError::from(dap),
            CoreError::Unavailable { retries: 2, .. }
        ));
        let sdl = applab_sdl::SdlError::Dap(applab_dap::DapError::Unavailable {
            dataset: "lai".into(),
            retries: 1,
        });
        assert!(matches!(
            CoreError::from(sdl),
            CoreError::Unavailable { retries: 1, .. }
        ));
    }

    #[test]
    fn eval_errors_map_to_typed_variants() {
        let budget = Duration::from_millis(3);
        assert!(matches!(
            CoreError::from(applab_sparql::EvalError::Timeout(budget)),
            CoreError::Timeout(b) if b == budget
        ));
        assert!(matches!(
            CoreError::from(applab_sparql::EvalError::Cancelled),
            CoreError::Cancelled
        ));
        assert!(matches!(
            CoreError::from(applab_sparql::EvalError::Other("boom".into())),
            CoreError::Eval(m) if m == "boom"
        ));
    }
}
