//! The unified error type of the facade.

use std::fmt;

/// Any error surfaced by the App Lab facade.
#[derive(Debug)]
pub enum CoreError {
    Mapping(applab_geotriples::MappingError),
    Source(String),
    Sparql(String),
    Obda(applab_obda::ObdaError),
    Dap(applab_dap::DapError),
    Sdl(applab_sdl::SdlError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Mapping(e) => write!(f, "{e}"),
            CoreError::Source(m) => write!(f, "source error: {m}"),
            CoreError::Sparql(m) => write!(f, "SPARQL error: {m}"),
            CoreError::Obda(e) => write!(f, "{e}"),
            CoreError::Dap(e) => write!(f, "{e}"),
            CoreError::Sdl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<applab_geotriples::MappingError> for CoreError {
    fn from(e: applab_geotriples::MappingError) -> Self {
        CoreError::Mapping(e)
    }
}

impl From<applab_obda::ObdaError> for CoreError {
    fn from(e: applab_obda::ObdaError) -> Self {
        CoreError::Obda(e)
    }
}

impl From<applab_dap::DapError> for CoreError {
    fn from(e: applab_dap::DapError) -> Self {
        CoreError::Dap(e)
    }
}

impl From<applab_sdl::SdlError> for CoreError {
    fn from(e: applab_sdl::SdlError) -> Self {
        CoreError::Sdl(e)
    }
}

impl From<applab_sparql::ParseError> for CoreError {
    fn from(e: applab_sparql::ParseError) -> Self {
        CoreError::Sparql(e.to_string())
    }
}

impl From<applab_sparql::EvalError> for CoreError {
    fn from(e: applab_sparql::EvalError) -> Self {
        CoreError::Sparql(e.to_string())
    }
}
