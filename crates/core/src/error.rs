//! The unified error type of the facade.

use std::fmt;
use std::time::Duration;

/// Any error surfaced by the App Lab facade.
///
/// Variants are grouped by *what the caller can do about them*, and each
/// maps to a stable [`CoreError::code`] string that the service layer uses
/// as a metrics label. `Timeout`, `Cancelled`, and `Overloaded` are the
/// structured rejections of `applab-service`: a query that trips its
/// cooperative budget or is refused admission reports one of these, never
/// a truncated result set.
#[derive(Debug)]
pub enum CoreError {
    /// The SPARQL text failed to parse.
    Parse(String),
    /// A GeoTriples/Ontop mapping document is invalid.
    Mapping(applab_geotriples::MappingError),
    /// A backing data source failed (OBDA engine, OPeNDAP transfer, SDL,
    /// Turtle input, unknown endpoint, ...).
    Source(String),
    /// Query evaluation failed.
    Eval(String),
    /// The query exceeded its cooperative time budget. The payload is the
    /// configured budget, not the elapsed time.
    Timeout(Duration),
    /// The query's cancellation token was triggered mid-evaluation.
    Cancelled,
    /// Admission control refused the query: the service was at its
    /// in-flight capacity and the wait queue was full (or the queue wait
    /// timed out). The counts are a snapshot taken at rejection time.
    Overloaded {
        /// Queries being evaluated when the rejection was issued.
        in_flight: usize,
        /// Queries waiting for a permit when the rejection was issued.
        queued: usize,
    },
    /// A remote dataset stayed down through every retry and no stale copy
    /// could bridge the outage: the query is answerable later, not now.
    Unavailable {
        /// The dataset whose upstream is unreachable.
        dataset: String,
        /// Retries spent before giving up.
        retries: u32,
    },
}

impl CoreError {
    /// A stable, low-cardinality identifier for the error class, suitable
    /// as a metrics label value.
    pub fn code(&self) -> &'static str {
        match self {
            CoreError::Parse(_) => "parse",
            CoreError::Mapping(_) => "mapping",
            CoreError::Source(_) => "source",
            CoreError::Eval(_) => "eval",
            CoreError::Timeout(_) => "timeout",
            CoreError::Cancelled => "cancelled",
            CoreError::Overloaded { .. } => "overloaded",
            CoreError::Unavailable { .. } => "unavailable",
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(m) => write!(f, "parse error: {m}"),
            CoreError::Mapping(e) => write!(f, "{e}"),
            CoreError::Source(m) => write!(f, "source error: {m}"),
            CoreError::Eval(m) => write!(f, "evaluation error: {m}"),
            CoreError::Timeout(budget) => {
                write!(f, "query exceeded its {budget:?} time budget")
            }
            CoreError::Cancelled => write!(f, "query cancelled"),
            CoreError::Overloaded { in_flight, queued } => write!(
                f,
                "service overloaded: {in_flight} in flight, {queued} queued"
            ),
            CoreError::Unavailable { dataset, retries } => {
                write!(f, "dataset {dataset} unavailable after {retries} retries")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<applab_geotriples::MappingError> for CoreError {
    fn from(e: applab_geotriples::MappingError) -> Self {
        CoreError::Mapping(e)
    }
}

impl From<applab_obda::ObdaError> for CoreError {
    fn from(e: applab_obda::ObdaError) -> Self {
        match e {
            applab_obda::ObdaError::Unavailable { dataset, retries } => {
                CoreError::Unavailable { dataset, retries }
            }
            other => CoreError::Source(other.to_string()),
        }
    }
}

impl From<applab_dap::DapError> for CoreError {
    fn from(e: applab_dap::DapError) -> Self {
        match e {
            applab_dap::DapError::Unavailable { dataset, retries } => {
                CoreError::Unavailable { dataset, retries }
            }
            other => CoreError::Source(other.to_string()),
        }
    }
}

impl From<applab_sdl::SdlError> for CoreError {
    fn from(e: applab_sdl::SdlError) -> Self {
        match e {
            applab_sdl::SdlError::Dap(d) => d.into(),
            other => CoreError::Source(other.to_string()),
        }
    }
}

impl From<applab_sparql::ParseError> for CoreError {
    fn from(e: applab_sparql::ParseError) -> Self {
        CoreError::Parse(e.to_string())
    }
}

impl From<applab_sparql::EvalError> for CoreError {
    fn from(e: applab_sparql::EvalError) -> Self {
        match e {
            applab_sparql::EvalError::Timeout(budget) => CoreError::Timeout(budget),
            applab_sparql::EvalError::Cancelled => CoreError::Cancelled,
            applab_sparql::EvalError::Other(m) => CoreError::Eval(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            CoreError::Parse("x".into()),
            CoreError::Source("x".into()),
            CoreError::Eval("x".into()),
            CoreError::Timeout(Duration::from_millis(5)),
            CoreError::Cancelled,
            CoreError::Overloaded {
                in_flight: 4,
                queued: 16,
            },
            CoreError::Unavailable {
                dataset: "lai".into(),
                retries: 3,
            },
        ];
        let codes: Vec<&str> = errors.iter().map(CoreError::code).collect();
        assert_eq!(
            codes,
            [
                "parse",
                "source",
                "eval",
                "timeout",
                "cancelled",
                "overloaded",
                "unavailable"
            ]
        );
    }

    #[test]
    fn unavailable_is_preserved_through_conversions() {
        let obda = applab_obda::ObdaError::Unavailable {
            dataset: "lai".into(),
            retries: 3,
        };
        assert!(matches!(
            CoreError::from(obda),
            CoreError::Unavailable { retries: 3, .. }
        ));
        let dap = applab_dap::DapError::Unavailable {
            dataset: "lai".into(),
            retries: 2,
        };
        assert!(matches!(
            CoreError::from(dap),
            CoreError::Unavailable { retries: 2, .. }
        ));
        let sdl = applab_sdl::SdlError::Dap(applab_dap::DapError::Unavailable {
            dataset: "lai".into(),
            retries: 1,
        });
        assert!(matches!(
            CoreError::from(sdl),
            CoreError::Unavailable { retries: 1, .. }
        ));
    }

    #[test]
    fn eval_errors_map_to_typed_variants() {
        let budget = Duration::from_millis(3);
        assert!(matches!(
            CoreError::from(applab_sparql::EvalError::Timeout(budget)),
            CoreError::Timeout(b) if b == budget
        ));
        assert!(matches!(
            CoreError::from(applab_sparql::EvalError::Cancelled),
            CoreError::Cancelled
        ));
        assert!(matches!(
            CoreError::from(applab_sparql::EvalError::Other("boom".into())),
            CoreError::Eval(m) if m == "boom"
        ));
    }
}
