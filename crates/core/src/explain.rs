//! Query EXPLAIN/profiling output.
//!
//! Both workflow facades offer a `query_explained` variant that runs the
//! query under an [`applab_obs::profile`] trace and returns the results
//! together with the reconstructed span tree: per-stage wall-clock timings
//! (parse / scan / join / filter / project, plus the backend-specific
//! `obda.*` stages) and the cardinality fields each stage recorded.

use applab_obs::SpanNode;
use applab_sparql::QueryResults;

/// The result of an EXPLAIN-ed query: the ordinary results plus the
/// profile tree collected while producing them.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query results, identical to what `query` returns.
    pub results: QueryResults,
    /// Root of the span tree (named `query`, with a `backend` field).
    pub profile: SpanNode,
}

impl Explain {
    /// Wall-clock duration of the whole query.
    pub fn total_duration_ns(&self) -> u64 {
        self.profile.duration_ns()
    }

    /// The rendered per-stage report (indented tree with timings and
    /// `key=value` cardinalities).
    pub fn report(&self) -> String {
        self.profile.render()
    }

    /// The profile tree as JSON.
    pub fn to_json(&self) -> String {
        self.profile.to_json()
    }
}
