//! Query EXPLAIN/profiling output.
//!
//! Both workflow facades offer a `query_explained` variant that runs the
//! query under an [`applab_obs::profile`] trace and returns the results
//! together with the reconstructed span tree: per-stage wall-clock timings
//! (parse / scan / join / filter / project, plus the backend-specific
//! `obda.*` stages) and the cardinality fields each stage recorded.

use applab_obs::{QueryStats, SpanNode};
use applab_sparql::QueryResults;

/// The result of an EXPLAIN-ed query: the ordinary results plus the
/// profile tree collected while producing them.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query results, identical to what `query` returns.
    pub results: QueryResults,
    /// Root of the span tree (named `query`, with a `backend` field).
    pub profile: SpanNode,
    /// Resource accounting for the profiled run (rows scanned, joins,
    /// DAP round-trips, cache hits, ...).
    pub stats: QueryStats,
}

impl Explain {
    /// Wall-clock duration of the whole query.
    pub fn total_duration_ns(&self) -> u64 {
        self.profile.duration_ns()
    }

    /// The rendered per-stage report (indented tree with timings and
    /// `key=value` cardinalities), followed by the resource accounting
    /// summary line.
    pub fn report(&self) -> String {
        let mut out = self.profile.render();
        out.push_str(&format!(
            "stats: rows_scanned={} scans={} batches={} joins={} \
             probe_chunks={} filter_in={} filter_out={} dap_round_trips={} \
             dap_bytes={} dap_retries={} cache_hits={} cache_misses={} \
             source_queries={} pushdowns={} pruned_rows={} \
             peak_batch_bytes={}\n",
            self.stats.rows_scanned,
            self.stats.scans,
            self.stats.batches,
            self.stats.joins,
            self.stats.probe_chunks,
            self.stats.filter_rows_in,
            self.stats.filter_rows_out,
            self.stats.dap_round_trips,
            self.stats.dap_bytes,
            self.stats.dap_retries,
            self.stats.cache_hits,
            self.stats.cache_misses,
            self.stats.source_queries,
            self.stats.pushdowns,
            self.stats.pruned_rows,
            self.stats.peak_batch_bytes,
        ));
        out
    }

    /// The profile tree plus the stats, as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"profile\": {}, \"stats\": {}}}",
            self.profile.to_json(),
            self.stats.to_json()
        )
    }
}
