//! The uniform query surface over both workflows.
//!
//! The paper's two pipelines — materialize-then-store and on-the-fly OBDA
//! — end in the same place: a GeoSPARQL endpoint. [`QueryEndpoint`]
//! captures that contract as an object-safe trait, so the service layer,
//! the greenness case study, and the examples can hold a
//! `&dyn QueryEndpoint` (or `Arc<dyn QueryEndpoint>`) without caring which
//! backend answers. Implementations must be `Send + Sync`: a sealed
//! workflow is shared across the service's worker threads.

use crate::error::CoreError;
use crate::explain::Explain;
use applab_sparql::{EvalOptions, QueryResults};

/// A sealed, shareable GeoSPARQL endpoint.
pub trait QueryEndpoint: Send + Sync {
    /// Evaluate a query with explicit [`EvalOptions`] — this is how the
    /// service threads a per-query deadline/cancellation budget through.
    fn query_with(&self, sparql: &str, options: &EvalOptions) -> Result<QueryResults, CoreError>;

    /// Evaluate a query with default options.
    fn query(&self, sparql: &str) -> Result<QueryResults, CoreError> {
        self.query_with(sparql, &EvalOptions::default())
    }

    /// Evaluate a query under a profiling trace: the results plus the
    /// EXPLAIN span tree with per-stage timings and cardinalities.
    fn query_explained(&self, sparql: &str) -> Result<Explain, CoreError>;

    /// A short static name for the backing engine (`"store"` / `"obda"`),
    /// used in outcomes, EXPLAIN traces, and metrics labels.
    fn backend(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        // Compile-time proof: the service stores these as trait objects.
        fn _takes(_: &dyn QueryEndpoint) {}
        fn _boxed(_: Box<dyn QueryEndpoint>) {}
    }
}
