//! The Copernicus App Lab facade.
//!
//! Ties the reproduction together along the two workflows of Figure 1:
//!
//! * [`MaterializedWorkflow`] (left path) — transform sources to RDF with
//!   GeoTriples, store them in the Strabon-like spatiotemporal store,
//!   interlink with Silk/JedAI, query with GeoSPARQL, visualize with
//!   Sextant;
//! * [`VirtualWorkflow`] (right path) — publish gridded products on the
//!   OPeNDAP server, access them through the SDL and the Ontop-spatial
//!   `opendap` virtual table, query the virtual RDF graphs with GeoSPARQL
//!   *without materializing anything*;
//! * [`greenness`] — the Section 4 case-study analysis (Figure 4).
//!
//! Both workflows expose `query_explained`, which runs the query under an
//! `applab-obs` trace and returns an [`explain::Explain`]: the results plus
//! the per-stage timing/cardinality span tree (see `DESIGN.md`
//! "Observability").
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod endpoint;
pub mod error;
pub mod explain;
pub mod greenness;
pub mod materialized;
pub mod r#virtual;

pub use endpoint::QueryEndpoint;
pub use error::{http_status_for_code, CoreError, HTTP_STATUS_TABLE};
pub use explain::Explain;
pub use materialized::MaterializedWorkflow;
pub use r#virtual::{VirtualWorkflow, VirtualWorkflowBuilder};

/// Convenience prelude re-exporting the API surface downstream users need.
pub mod prelude {
    pub use crate::endpoint::QueryEndpoint;
    pub use crate::error::CoreError;
    pub use crate::explain::Explain;
    pub use crate::materialized::MaterializedWorkflow;
    pub use crate::r#virtual::{VirtualWorkflow, VirtualWorkflowBuilder};
    pub use applab_geo::prelude::*;
    pub use applab_rdf::prelude::*;
    pub use applab_sparql::{Budget, EvalOptions, QueryResults};
}
