//! The "greenness of Paris" analysis (Section 4 / Figure 4).
//!
//! Loads the Paris fixture into the materialized workflow, correlates LAI
//! observations with the land cover of the area they fall in, and produces
//! both the numeric series behind Figure 4 and the Sextant thematic map.

use crate::endpoint::QueryEndpoint;
use crate::error::CoreError;
use crate::materialized::MaterializedWorkflow;
use applab_data::mappings as m;
use applab_data::ParisFixture;
use applab_rdf::{ontology, Graph};
use applab_sextant::map::{figure4_styles, Layer, Map};
use applab_sextant::style::{Color, Style};
use applab_sparql::QueryResults;

/// One row of the per-class LAI series: (CLC class local name, month
/// timestamps, mean LAI per month).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSeries {
    pub class: String,
    pub series: Vec<(i64, f64)>,
}

/// The full case-study result.
pub struct Greenness {
    pub workflow: MaterializedWorkflow,
    pub per_class: Vec<ClassSeries>,
    pub map: Map,
}

/// Load the fixture and run the analysis. `sample_cells` limits how many
/// LAI pixels are materialized as observations (keeps tests fast).
pub fn run(fixture: &ParisFixture, sample_stride: usize) -> Result<Greenness, CoreError> {
    let mut wf = MaterializedWorkflow::new();
    // Ontologies first (the "first task of any case study", Section 4).
    for g in [
        ontology::lai_ontology(),
        ontology::gadm_ontology(),
        ontology::corine_ontology(),
        ontology::urban_atlas_ontology(),
        ontology::osm_ontology(),
    ] {
        wf.load_graph(&g);
    }
    // Vector datasets through GeoTriples.
    wf.load_table(&fixture.world.osm_table(), m::OSM_MAPPING)?;
    wf.load_table(&fixture.world.gadm_table(), m::GADM_MAPPING)?;
    wf.load_table(&fixture.world.corine_table(), m::CORINE_MAPPING)?;
    wf.load_table(&fixture.world.urban_atlas_table(), m::URBAN_ATLAS_MAPPING)?;

    // LAI observations from the gridded product (custom-script path).
    let mut g = Graph::new();
    let lai = fixture.lai.variable("LAI").expect("LAI variable");
    let lats = fixture
        .lai
        .coordinate("lat")
        .expect("lat")
        .data
        .data()
        .to_vec();
    let lons = fixture
        .lai
        .coordinate("lon")
        .expect("lon")
        .data
        .data()
        .to_vec();
    let times = fixture
        .lai
        .coordinate("time")
        .expect("time")
        .data
        .data()
        .to_vec();
    let stride = sample_stride.max(1);
    for (ti, &t) in times.iter().enumerate() {
        for (la, &lat) in lats.iter().enumerate().step_by(stride) {
            for (lo, &lon) in lons.iter().enumerate().step_by(stride) {
                let v = lai.data.get(&[ti, la, lo]).expect("in bounds");
                if v.is_nan() {
                    continue;
                }
                applab_store::store::lai_observation(
                    &mut g,
                    &format!("obs_{ti}_{la}_{lo}"),
                    v,
                    t as i64,
                    &format!("POINT ({lon} {lat})"),
                );
            }
        }
    }
    wf.load_graph(&g);

    // Per-class mean LAI per month. One aggregation query per month keeps
    // the spatial join small.
    let class_of_query = |t: i64| {
        format!(
            r#"SELECT ?class (AVG(?lai) AS ?mean) (COUNT(?lai) AS ?n) WHERE {{
  ?obs a lai:Observation ;
       lai:hasLai ?lai ;
       time:hasTime ?t ;
       geo:hasGeometry ?og .
  ?og geo:asWKT ?owkt .
  ?area a clc:CorineArea ;
        clc:hasCorineValue ?class ;
        geo:hasGeometry ?ag .
  ?ag geo:asWKT ?awkt .
  FILTER(?t = "{}"^^xsd:dateTime)
  FILTER(geof:sfIntersects(?awkt, ?owkt))
}} GROUP BY ?class"#,
            applab_rdf::datetime::format_datetime(t)
        )
    };
    // The analysis below only needs the uniform query surface: it runs
    // unchanged over any backend that implements [`QueryEndpoint`].
    let endpoint: &dyn QueryEndpoint = &wf;
    let mut per_class: Vec<ClassSeries> = Vec::new();
    for &t in &times {
        let t = t as i64;
        let r = endpoint.query(&class_of_query(t))?;
        for i in 0..r.len() {
            let class = r
                .value(i, "class")
                .and_then(|v| v.as_named())
                .map(|n| n.local_name().to_string())
                .unwrap_or_default();
            let mean = r
                .value(i, "mean")
                .and_then(|v| v.as_literal())
                .and_then(applab_rdf::Literal::as_f64)
                .unwrap_or(f64::NAN);
            match per_class.iter_mut().find(|c| c.class == class) {
                Some(c) => c.series.push((t, mean)),
                None => per_class.push(ClassSeries {
                    class,
                    series: vec![(t, mean)],
                }),
            }
        }
    }
    per_class.sort_by(|a, b| a.class.cmp(&b.class));

    let map = build_map(endpoint)?;
    Ok(Greenness {
        workflow: wf,
        per_class,
        map,
    })
}

/// Does the headline observation of Figure 4 hold: green urban areas show
/// higher LAI than industrial areas in every sampled month?
pub fn green_beats_industrial(per_class: &[ClassSeries]) -> Option<bool> {
    let green = per_class.iter().find(|c| c.class == "GreenUrbanAreas")?;
    let industrial = per_class
        .iter()
        .find(|c| c.class == "IndustrialOrCommercialUnits")?;
    let mut checked = 0;
    for (t, g) in &green.series {
        if let Some((_, i)) = industrial.series.iter().find(|(ti, _)| ti == t) {
            if g <= i {
                return Some(false);
            }
            checked += 1;
        }
    }
    Some(checked > 0)
}

/// Build the Figure 4 thematic map from any GeoSPARQL endpoint.
fn build_map(wf: &dyn QueryEndpoint) -> Result<Map, CoreError> {
    let mut map = Map::new("The greenness of Paris");
    let styles = figure4_styles();

    let layer_query =
        |wf: &dyn QueryEndpoint, q: &str| -> Result<QueryResults, CoreError> { wf.query(q) };

    // CORINE green areas (fill).
    let r = layer_query(
        wf,
        "SELECT ?wkt WHERE { ?a a clc:CorineArea ; clc:hasCorineValue clc:GreenUrbanAreas ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
    )?;
    map.add_layer(
        Layer::from_results(
            "CORINE green urban areas",
            styles[0].1.clone(),
            &r,
            "wkt",
            None,
            None,
            None,
        )
        .with_source("store:clc"),
    );
    // OSM parks.
    let r = layer_query(
        wf,
        "SELECT ?wkt ?name WHERE { ?p osm:poiType osm:park ; osm:hasName ?name ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
    )?;
    map.add_layer(
        Layer::from_results(
            "OpenStreetMap parks",
            styles[2].1.clone(),
            &r,
            "wkt",
            None,
            Some("name"),
            None,
        )
        .with_source("store:osm"),
    );
    // GADM boundaries (magenta outlines, as the paper describes).
    let r = layer_query(
        wf,
        "SELECT ?wkt WHERE { ?u a gadm:AdministrativeUnit ; gadm:hasLevel 2 ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
    )?;
    map.add_layer(
        Layer::from_results(
            "GADM administrative areas",
            styles[3].1.clone(),
            &r,
            "wkt",
            None,
            None,
            None,
        )
        .with_source("store:gadm"),
    );
    // LAI observations (value ramp circles over time).
    let r = layer_query(
        wf,
        "SELECT ?wkt ?lai ?t WHERE { ?o a lai:Observation ; lai:hasLai ?lai ; time:hasTime ?t ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
    )?;
    map.add_layer(
        Layer::from_results(
            "LAI observations",
            Style::ValueRamp {
                min: 0.0,
                max: 6.0,
                low: Color::YELLOW,
                high: Color::GREEN,
            },
            &r,
            "wkt",
            Some("lai"),
            None,
            Some("t"),
        )
        .with_source("store:lai"),
    );
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_reproduction_small() {
        let fixture = ParisFixture::generate(2019, 16, 24);
        let result = run(&fixture, 3).unwrap();
        assert!(!result.per_class.is_empty());
        // The headline claim of Figure 4.
        assert_eq!(green_beats_industrial(&result.per_class), Some(true));
        // The map has the layers and a timeline.
        assert_eq!(result.map.layers.len(), 4);
        assert_eq!(result.map.timeline().len(), 12);
        // It renders.
        let svg =
            applab_sextant::render_svg(&result.map, &applab_sextant::svg::RenderOptions::default());
        assert!(svg.contains("</svg>"));
    }
}
