//! The materialized (left) workflow of Figure 1.

use crate::endpoint::QueryEndpoint;
use crate::error::CoreError;
use applab_geotriples::{parse_mappings, process_parallel, TabularSource};
use applab_link::{discover_links, Entity, LinkRule};
use applab_rdf::Graph;
use applab_sparql::{EvalOptions, QueryResults};
use applab_store::SpatioTemporalStore;

/// Download → GeoTriples → Strabon → interlink → GeoSPARQL.
pub struct MaterializedWorkflow {
    store: SpatioTemporalStore,
    /// Everything loaded so far, kept for interlinking extraction.
    loaded: Graph,
    workers: usize,
}

impl Default for MaterializedWorkflow {
    fn default() -> Self {
        Self::new()
    }
}

impl MaterializedWorkflow {
    pub fn new() -> Self {
        MaterializedWorkflow {
            store: SpatioTemporalStore::new(),
            loaded: Graph::new(),
            workers: 4,
        }
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Transform a tabular source with a GeoTriples mapping document and
    /// load the triples. Returns the number of new triples.
    pub fn load_table(
        &mut self,
        source: &TabularSource,
        mapping_doc: &str,
    ) -> Result<usize, CoreError> {
        let mappings = parse_mappings(mapping_doc)?;
        let mut added = 0;
        for mapping in &mappings {
            let graph = process_parallel(mapping, source, self.workers);
            added += self.load_graph(&graph);
        }
        self.store.finish_load();
        Ok(added)
    }

    /// Load pre-built RDF (e.g. an ontology). Returns new-triple count.
    pub fn load_graph(&mut self, graph: &Graph) -> usize {
        let mut added = 0;
        for t in graph.iter() {
            if self.store.insert(t.clone()) {
                self.loaded.insert(t.clone());
                added += 1;
            }
        }
        self.store.finish_load();
        added
    }

    /// Load Turtle text.
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, CoreError> {
        let g =
            applab_rdf::turtle::parse_turtle(text).map_err(|e| CoreError::Source(e.to_string()))?;
        Ok(self.load_graph(&g))
    }

    /// Interlink entities of the loaded data against an external graph,
    /// storing the produced links. Returns the number of links.
    pub fn interlink(&mut self, external: &Graph, rule: &LinkRule) -> usize {
        let left: Vec<Entity> = Entity::all_from_graph(&self.loaded)
            .into_iter()
            .filter(|e| e.name.is_some())
            .collect();
        let right: Vec<Entity> = Entity::all_from_graph(external)
            .into_iter()
            .filter(|e| e.name.is_some())
            .collect();
        let result = discover_links(&left, &right, rule);
        let links = result.to_graph(rule);
        let n = links.len();
        self.load_graph(&links);
        n
    }

    /// Run a GeoSPARQL query against the store.
    pub fn query(&self, sparql: &str) -> Result<QueryResults, CoreError> {
        self.query_with(sparql, &EvalOptions::default())
    }

    /// Run a query with explicit evaluation options (parallelism, budget).
    pub fn query_with(
        &self,
        sparql: &str,
        options: &EvalOptions,
    ) -> Result<QueryResults, CoreError> {
        let q = applab_sparql::parse_query(sparql)?;
        Ok(applab_sparql::evaluate_with(&self.store, &q, options)?)
    }

    /// Run a query under a profiling trace: the results plus an EXPLAIN
    /// span tree with per-stage timings and cardinalities.
    pub fn query_explained(&self, sparql: &str) -> Result<crate::Explain, CoreError> {
        self.query_explained_with(sparql, &EvalOptions::default())
    }

    /// [`Self::query_explained`] with explicit evaluation options. With
    /// the cost-based planner on, the scan spans carry the plan: the
    /// chosen access path, the estimated row count next to the actual
    /// one, and how many scanned rows the build-side filters pruned.
    pub fn query_explained_with(
        &self,
        sparql: &str,
        options: &EvalOptions,
    ) -> Result<crate::Explain, CoreError> {
        let accounting = applab_obs::querystats::Scope::begin();
        let (results, profile) = applab_obs::profile("query", |root| {
            root.record("backend", "store");
            if options.planner {
                root.record("planner", true);
            }
            let q = applab_sparql::parse_query(sparql)?;
            Ok::<_, CoreError>(applab_sparql::evaluate_with(&self.store, &q, options)?)
        });
        Ok(crate::Explain {
            results: results?,
            profile,
            stats: accounting.finish(),
        })
    }

    /// The underlying store (for benches and advanced callers).
    pub fn store(&self) -> &SpatioTemporalStore {
        &self.store
    }

    /// Triple count.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

impl QueryEndpoint for MaterializedWorkflow {
    fn query_with(&self, sparql: &str, options: &EvalOptions) -> Result<QueryResults, CoreError> {
        MaterializedWorkflow::query_with(self, sparql, options)
    }

    fn query_explained(&self, sparql: &str) -> Result<crate::Explain, CoreError> {
        MaterializedWorkflow::query_explained(self, sparql)
    }

    fn backend(&self) -> &'static str {
        "store"
    }
}

/// Compile-time proof the loaded workflow can back a shared service
/// endpoint.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MaterializedWorkflow>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use applab_data::mappings as m;
    use applab_data::ParisFixture;
    use applab_link::Comparison;

    #[test]
    fn load_paris_vector_data_and_query_listing1() {
        let fixture = ParisFixture::generate(1, 12, 8);
        let mut wf = MaterializedWorkflow::new();
        wf.load_table(&fixture.world.osm_table(), m::OSM_MAPPING)
            .unwrap();
        wf.load_table(&fixture.world.gadm_table(), m::GADM_MAPPING)
            .unwrap();
        wf.load_table(&fixture.world.corine_table(), m::CORINE_MAPPING)
            .unwrap();
        assert!(wf.len() > 100);

        // LAI observations from the gridded product, materialized via the
        // lai_observation helper shape (the custom-Python-script path of
        // Section 4: "Since GeoTriples does not support NetCDF files ...").
        let mut g = Graph::new();
        applab_store::store::lai_observation(&mut g, "obs1", 4.0, 0, "POINT (2.24 48.86)");
        applab_store::store::lai_observation(&mut g, "obs2", 0.5, 0, "POINT (2.5 48.95)");
        wf.load_graph(&g);

        // Listing 1.
        let r = wf
            .query(
                r#"SELECT DISTINCT ?geoA ?geoB ?lai WHERE
{ ?areaA osm:poiType osm:park .
  ?areaA geo:hasGeometry ?geomA .
  ?geomA geo:asWKT ?geoA .
  ?areaA osm:hasName "Bois de Boulogne" .
  ?areaB lai:hasLai ?lai .
  ?areaB geo:hasGeometry ?geomB .
  ?geomB geo:asWKT ?geoB .
  FILTER(geof:sfIntersects(?geoA, ?geoB))
}"#,
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.value(0, "lai").unwrap().as_literal().unwrap().as_f64(),
            Some(4.0)
        );
    }

    #[test]
    fn interlinking_adds_sameas() {
        let fixture = ParisFixture::generate(2, 10, 8);
        let mut wf = MaterializedWorkflow::new();
        wf.load_table(&fixture.world.osm_table(), m::OSM_MAPPING)
            .unwrap();
        // External: the same POIs under different IRIs.
        let external = {
            let mut renamed = fixture.world.osm_table();
            renamed.name = "external".into();
            let mapping = m::OSM_MAPPING
                .replace("osm:poi_{id}", "<http://external.org/poi_{id}>")
                .replace("osm:geom_{id}", "<http://external.org/geom_{id}>");
            let ms = parse_mappings(&mapping).unwrap();
            applab_geotriples::process(&ms[0], &renamed)
        };
        let rule = LinkRule::same_as(
            vec![
                (Comparison::NameLevenshtein, 0.6),
                (Comparison::SpatialProximity { max_distance: 0.01 }, 0.4),
            ],
            0.95,
        );
        let n = wf.interlink(&external, &rule);
        assert!(n > 0);
        let r = wf.query("SELECT ?a ?b WHERE { ?a owl:sameAs ?b }").unwrap();
        assert_eq!(r.len(), n);
    }

    #[test]
    fn turtle_loading() {
        let mut wf = MaterializedWorkflow::new();
        let n = wf
            .load_turtle(
                "@prefix osm: <http://www.app-lab.eu/osm/> .\n<http://x/a> osm:hasName \"A\" .",
            )
            .unwrap();
        assert_eq!(n, 1);
        assert!(wf.load_turtle("garbage {{{").is_err());
    }
}
