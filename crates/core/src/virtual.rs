//! The virtual / on-the-fly (right) workflow of Figure 1.

use crate::error::CoreError;
use applab_array::Dataset;
use applab_dap::clock::{Clock, SystemClock};
use applab_dap::transport::{Local, Transport};
use applab_dap::{DapClient, DapServer};
use applab_geotriples::{parse_mappings, TabularSource};
use applab_obda::{DataSource, OpendapTable, VirtualGraph};
use applab_sdl::Sdl;
use applab_sparql::QueryResults;
use std::sync::Arc;
use std::time::Duration;

/// OPeNDAP server → SDL → Ontop-spatial virtual graphs.
pub struct VirtualWorkflow {
    server: Arc<DapServer>,
    client: Arc<DapClient>,
    sdl: Sdl,
    clock: Arc<dyn Clock>,
    datasource: Option<DataSource>,
    mapping_docs: Vec<String>,
    graph: Option<VirtualGraph>,
}

impl VirtualWorkflow {
    /// A workflow with an in-process server and free transport.
    pub fn local() -> Self {
        Self::with_transport(Arc::new(Local::new()))
    }

    /// A workflow whose client speaks through the given transport (e.g. a
    /// [`applab_dap::SimulatedWan`] for benches).
    pub fn with_transport(transport: Arc<dyn Transport>) -> Self {
        let server = Arc::new(DapServer::new());
        let client = Arc::new(DapClient::new(server.clone(), transport));
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let sdl = Sdl::new(client.clone(), Duration::from_secs(600), clock.clone());
        VirtualWorkflow {
            server,
            client,
            sdl,
            clock,
            datasource: Some(DataSource::new()),
            mapping_docs: Vec::new(),
            graph: None,
        }
    }

    /// Publish a gridded product on the embedded OPeNDAP server.
    pub fn publish(&self, dataset: Dataset) {
        self.server.publish(dataset);
    }

    /// The embedded server (to publish from outside or inspect logs).
    pub fn server(&self) -> &Arc<DapServer> {
        &self.server
    }

    /// The SDL view over the published datasets.
    pub fn sdl(&self) -> &Sdl {
        &self.sdl
    }

    /// The DAP client (exposes transfer statistics).
    pub fn client(&self) -> &Arc<DapClient> {
        &self.client
    }

    /// Register a relational table for the OBDA engine.
    pub fn add_table(&mut self, table: TabularSource) -> Result<(), CoreError> {
        self.ensure_unsealed()?.add_table(table);
        Ok(())
    }

    /// Register the `opendap` virtual table for a published dataset.
    pub fn add_opendap(
        &mut self,
        dataset: &str,
        variable: &str,
        window: Duration,
    ) -> Result<(), CoreError> {
        let vt = Arc::new(OpendapTable::new(
            self.client.clone(),
            dataset,
            variable,
            window,
            self.clock.clone(),
        ));
        self.ensure_unsealed()?.add_opendap(dataset, variable, vt);
        Ok(())
    }

    /// Add a mapping document (GeoTriples/Ontop format).
    pub fn add_mappings(&mut self, doc: &str) -> Result<(), CoreError> {
        self.ensure_unsealed()?;
        // Validate early.
        parse_mappings(doc)?;
        self.mapping_docs.push(doc.to_string());
        Ok(())
    }

    fn ensure_unsealed(&mut self) -> Result<&mut DataSource, CoreError> {
        self.datasource
            .as_mut()
            .ok_or_else(|| CoreError::Source("workflow already sealed by a query".into()))
    }

    /// Build (or reuse) the virtual graph.
    fn graph(&mut self) -> Result<&VirtualGraph, CoreError> {
        if self.graph.is_none() {
            let mut span = applab_obs::span("obda.build_graph");
            let ds = self
                .datasource
                .take()
                .ok_or_else(|| CoreError::Source("virtual graph already built".into()))?;
            let mut mappings = Vec::new();
            for doc in &self.mapping_docs {
                mappings.extend(parse_mappings(doc)?);
            }
            span.record("mappings", mappings.len());
            self.graph = Some(VirtualGraph::new(ds, mappings)?);
        }
        Ok(self.graph.as_ref().expect("just built"))
    }

    /// Run a GeoSPARQL query over the virtual graphs. The first query
    /// seals the configuration.
    pub fn query(&mut self, sparql: &str) -> Result<QueryResults, CoreError> {
        let q = applab_sparql::parse_query(sparql)?;
        let g = self.graph()?;
        Ok(applab_sparql::evaluate(g, &q)?)
    }

    /// Run a query under a profiling trace: the results plus an EXPLAIN
    /// span tree with per-stage timings and cardinalities. The first query
    /// seals the configuration.
    pub fn query_explained(&mut self, sparql: &str) -> Result<crate::Explain, CoreError> {
        let (results, profile) = applab_obs::profile("query", |root| {
            root.record("backend", "obda");
            let q = applab_sparql::parse_query(sparql)?;
            let g = self.graph()?;
            Ok::<_, CoreError>(applab_sparql::evaluate(g, &q)?)
        });
        Ok(crate::Explain {
            results: results?,
            profile,
        })
    }

    /// Materialize every mapping (the "for more costly operations it is
    /// better to materialize the data" path of Section 5).
    pub fn materialize(&mut self) -> Result<applab_rdf::Graph, CoreError> {
        Ok(self.graph()?.materialize()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_data::{grids, mappings, ParisFixture};
    use applab_geo::Coord;

    fn workflow() -> VirtualWorkflow {
        let fixture = ParisFixture::generate(3, 12, 12);
        let mut lai = grids::lai_dataset(
            &fixture.world,
            &grids::GridSpec {
                resolution: 8,
                times: vec![0, 86_400 * 30],
                noise: 0.0,
                seed: 3,
            },
        );
        lai.name = "lai_300m".into();
        let mut wf = VirtualWorkflow::local();
        wf.publish(lai);
        wf.add_opendap("lai_300m", "LAI", Duration::from_secs(600))
            .unwrap();
        wf.add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
            .unwrap();
        wf
    }

    #[test]
    fn listing3_over_virtual_graph() {
        let mut wf = workflow();
        let r = wf
            .query(
                "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
            )
            .unwrap();
        assert!(!r.is_empty());
        // Virtual ≡ materialized.
        let mat = wf.materialize().unwrap();
        let r2 = applab_sparql::query(
            &mat,
            "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
        )
        .unwrap();
        assert_eq!(r.len(), r2.len());
    }

    #[test]
    fn sdl_methods_work_over_published_data() {
        let wf = workflow();
        let meta = wf.sdl().get_metadata("lai_300m").unwrap();
        assert!(meta.extent.is_some());
        let v = wf
            .sdl()
            .get_point("lai_300m", "LAI", Coord::new(2.3, 48.85), 0)
            .unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn configuration_seals_after_query() {
        let mut wf = workflow();
        wf.query("ASK { ?s lai:hasLai ?v }").unwrap();
        assert!(wf.add_opendap("lai_300m", "LAI", Duration::ZERO).is_err());
        assert!(wf
            .add_mappings(
                "mappingId x\ntarget osm:a{i} a osm:PointOfInterest .\nsource SELECT * FROM t"
            )
            .is_err());
    }

    #[test]
    fn bad_mappings_rejected_early() {
        let mut wf = VirtualWorkflow::local();
        assert!(wf.add_mappings("not a mapping").is_err());
    }
}
