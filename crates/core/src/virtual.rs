//! The virtual / on-the-fly (right) workflow of Figure 1.
//!
//! The facade is split into a *build phase* and a *query phase*:
//! [`VirtualWorkflowBuilder`] accumulates tables, `opendap` virtual tables,
//! and mapping documents, and [`VirtualWorkflowBuilder::seal`] compiles
//! them into a [`VirtualWorkflow`] whose query methods take `&self`. A
//! sealed workflow is `Send + Sync` — one instance can serve concurrent
//! queries from many threads (see `applab-service`) — and configuration
//! after sealing is unrepresentable rather than a runtime error.

use crate::endpoint::QueryEndpoint;
use crate::error::CoreError;
use applab_array::Dataset;
use applab_dap::clock::{Clock, SystemClock};
use applab_dap::transport::{Local, Transport};
use applab_dap::{DapClient, DapServer};
use applab_geotriples::{parse_mappings, TabularSource};
use applab_obda::{DataSource, OpendapTable, VirtualGraph};
use applab_sdl::Sdl;
use applab_sparql::{EvalOptions, QueryResults};
use std::sync::Arc;
use std::time::Duration;

/// Build phase of the on-the-fly workflow: OPeNDAP server → SDL →
/// Ontop-spatial virtual graphs.
pub struct VirtualWorkflowBuilder {
    server: Arc<DapServer>,
    client: Arc<DapClient>,
    sdl: Sdl,
    clock: Arc<dyn Clock>,
    datasource: DataSource,
    mapping_docs: Vec<String>,
}

impl VirtualWorkflowBuilder {
    /// A workflow with an in-process server and free transport.
    pub fn local() -> Self {
        Self::with_transport(Arc::new(Local::new()))
    }

    /// A workflow whose client speaks through the given transport (e.g. a
    /// [`applab_dap::SimulatedWan`] for benches).
    pub fn with_transport(transport: Arc<dyn Transport>) -> Self {
        let server = Arc::new(DapServer::new());
        let client = Arc::new(DapClient::new(server.clone(), transport));
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let sdl = Sdl::new(client.clone(), Duration::from_secs(600), clock.clone());
        VirtualWorkflowBuilder {
            server,
            client,
            sdl,
            clock,
            datasource: DataSource::new(),
            mapping_docs: Vec::new(),
        }
    }

    /// Publish a gridded product on the embedded OPeNDAP server.
    pub fn publish(&self, dataset: Dataset) {
        self.server.publish(dataset);
    }

    /// The embedded server (to publish from outside or inspect logs).
    pub fn server(&self) -> &Arc<DapServer> {
        &self.server
    }

    /// Register a relational table for the OBDA engine.
    pub fn add_table(&mut self, table: TabularSource) {
        self.datasource.add_table(table);
    }

    /// Register the `opendap` virtual table for a published dataset.
    pub fn add_opendap(&mut self, dataset: &str, variable: &str, window: Duration) {
        let vt = Arc::new(OpendapTable::new(
            self.client.clone(),
            dataset,
            variable,
            window,
            self.clock.clone(),
        ));
        self.datasource.add_opendap(dataset, variable, vt);
    }

    /// Add a mapping document (GeoTriples/Ontop format). The document is
    /// validated eagerly so malformed mappings fail at the add site.
    pub fn add_mappings(&mut self, doc: &str) -> Result<(), CoreError> {
        parse_mappings(doc)?;
        self.mapping_docs.push(doc.to_string());
        Ok(())
    }

    /// Compile the configuration into a sealed, shareable
    /// [`VirtualWorkflow`]. Mapping problems surface here, before the
    /// first query runs.
    pub fn seal(self) -> Result<VirtualWorkflow, CoreError> {
        let mut span = applab_obs::span("obda.build_graph");
        let mut mappings = Vec::new();
        for doc in &self.mapping_docs {
            mappings.extend(parse_mappings(doc)?);
        }
        span.record("mappings", mappings.len());
        let graph = VirtualGraph::new(self.datasource, mappings)?;
        Ok(VirtualWorkflow {
            server: self.server,
            client: self.client,
            sdl: self.sdl,
            graph,
        })
    }
}

/// Query phase of the on-the-fly workflow: a sealed virtual graph whose
/// query methods take `&self` and may be called from many threads at once.
pub struct VirtualWorkflow {
    server: Arc<DapServer>,
    client: Arc<DapClient>,
    sdl: Sdl,
    graph: VirtualGraph,
}

impl VirtualWorkflow {
    /// The embedded server (to inspect request logs).
    pub fn server(&self) -> &Arc<DapServer> {
        &self.server
    }

    /// The SDL view over the published datasets.
    pub fn sdl(&self) -> &Sdl {
        &self.sdl
    }

    /// The DAP client (exposes transfer statistics).
    pub fn client(&self) -> &Arc<DapClient> {
        &self.client
    }

    /// Run a GeoSPARQL query over the virtual graphs.
    pub fn query(&self, sparql: &str) -> Result<QueryResults, CoreError> {
        self.query_with(sparql, &EvalOptions::default())
    }

    /// Run a query with explicit evaluation options (parallelism, budget).
    pub fn query_with(
        &self,
        sparql: &str,
        options: &EvalOptions,
    ) -> Result<QueryResults, CoreError> {
        let q = applab_sparql::parse_query(sparql)?;
        Ok(applab_sparql::evaluate_with(&self.graph, &q, options)?)
    }

    /// Run a query under a profiling trace: the results plus an EXPLAIN
    /// span tree with per-stage timings and cardinalities.
    pub fn query_explained(&self, sparql: &str) -> Result<crate::Explain, CoreError> {
        let (results, profile) = applab_obs::profile("query", |root| {
            root.record("backend", "obda");
            let q = applab_sparql::parse_query(sparql)?;
            Ok::<_, CoreError>(applab_sparql::evaluate(&self.graph, &q)?)
        });
        Ok(crate::Explain {
            results: results?,
            profile,
        })
    }

    /// Materialize every mapping (the "for more costly operations it is
    /// better to materialize the data" path of Section 5).
    pub fn materialize(&self) -> Result<applab_rdf::Graph, CoreError> {
        Ok(self.graph.materialize()?)
    }
}

impl QueryEndpoint for VirtualWorkflow {
    fn query_with(&self, sparql: &str, options: &EvalOptions) -> Result<QueryResults, CoreError> {
        VirtualWorkflow::query_with(self, sparql, options)
    }

    fn query_explained(&self, sparql: &str) -> Result<crate::Explain, CoreError> {
        VirtualWorkflow::query_explained(self, sparql)
    }

    fn backend(&self) -> &'static str {
        "obda"
    }
}

/// Compile-time proof that a sealed workflow can be shared across the
/// service's worker threads (the obda/sdl interior-mutability audit).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VirtualWorkflow>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use applab_data::{grids, mappings, ParisFixture};
    use applab_geo::Coord;

    fn workflow() -> VirtualWorkflow {
        let fixture = ParisFixture::generate(3, 12, 12);
        let mut lai = grids::lai_dataset(
            &fixture.world,
            &grids::GridSpec {
                resolution: 8,
                times: vec![0, 86_400 * 30],
                noise: 0.0,
                seed: 3,
            },
        );
        lai.name = "lai_300m".into();
        let mut b = VirtualWorkflowBuilder::local();
        b.publish(lai);
        b.add_opendap("lai_300m", "LAI", Duration::from_secs(600));
        b.add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
            .unwrap();
        b.seal().unwrap()
    }

    #[test]
    fn listing3_over_virtual_graph() {
        let wf = workflow();
        let r = wf
            .query(
                "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
            )
            .unwrap();
        assert!(!r.is_empty());
        // Virtual ≡ materialized.
        let mat = wf.materialize().unwrap();
        let r2 = applab_sparql::query(
            &mat,
            "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
        )
        .unwrap();
        assert_eq!(r.len(), r2.len());
    }

    #[test]
    fn sdl_methods_work_over_published_data() {
        let wf = workflow();
        let meta = wf.sdl().get_metadata("lai_300m").unwrap();
        assert!(meta.extent.is_some());
        let v = wf
            .sdl()
            .get_point("lai_300m", "LAI", Coord::new(2.3, 48.85), 0)
            .unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn sealed_workflow_queries_from_many_threads() {
        let wf = workflow();
        let baseline = wf.query("ASK { ?s lai:hasLai ?v }").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let r = wf.query("ASK { ?s lai:hasLai ?v }").unwrap();
                    assert_eq!(r, baseline);
                });
            }
        });
    }

    #[test]
    fn bad_mappings_rejected_early() {
        let mut b = VirtualWorkflowBuilder::local();
        assert!(b.add_mappings("not a mapping").is_err());
        // A rejected document is not retained: sealing still works.
        assert!(b.seal().is_ok());
    }
}
