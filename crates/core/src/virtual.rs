//! The virtual / on-the-fly (right) workflow of Figure 1.
//!
//! The facade is split into a *build phase* and a *query phase*:
//! [`VirtualWorkflowBuilder`] accumulates tables, `opendap` virtual tables,
//! and mapping documents, and [`VirtualWorkflowBuilder::seal`] compiles
//! them into a [`VirtualWorkflow`] whose query methods take `&self`. A
//! sealed workflow is `Send + Sync` — one instance can serve concurrent
//! queries from many threads (see `applab-service`) — and configuration
//! after sealing is unrepresentable rather than a runtime error.

use crate::endpoint::QueryEndpoint;
use crate::error::CoreError;
use applab_array::Dataset;
use applab_dap::clock::{Clock, SystemClock};
use applab_dap::transport::{Local, Transport};
use applab_dap::{DapClient, DapServer, ResilienceConfig};
use applab_geotriples::{parse_mappings, TabularSource};
use applab_obda::{DataSource, OpendapTable, VirtualGraph};
use applab_sdl::Sdl;
use applab_sparql::{EvalOptions, QueryResults};
use std::sync::Arc;
use std::time::Duration;

/// Build phase of the on-the-fly workflow: OPeNDAP server → SDL →
/// Ontop-spatial virtual graphs.
pub struct VirtualWorkflowBuilder {
    server: Arc<DapServer>,
    client: Arc<DapClient>,
    clock: Arc<dyn Clock>,
    stale_grace: Duration,
    datasource: DataSource,
    /// `(dataset, variable, window)` — tables are constructed at seal time
    /// so configuration order (grace, resilience) never matters.
    opendap_specs: Vec<(String, String, Duration)>,
    mapping_docs: Vec<String>,
}

impl VirtualWorkflowBuilder {
    /// A workflow with an in-process server and free transport.
    pub fn local() -> Self {
        Self::with_transport(Arc::new(Local::new()))
    }

    /// A workflow whose client speaks through the given transport (e.g. a
    /// [`applab_dap::SimulatedWan`] for benches).
    pub fn with_transport(transport: Arc<dyn Transport>) -> Self {
        Self::with_transport_and_clock(transport, Arc::new(SystemClock::new()))
    }

    /// A workflow with an explicit clock — cache windows, stale-grace, and
    /// circuit-breaker cooldowns all tick on it, so tests can drive time
    /// with a [`applab_dap::clock::ManualClock`].
    pub fn with_transport_and_clock(transport: Arc<dyn Transport>, clock: Arc<dyn Clock>) -> Self {
        let server = Arc::new(DapServer::new());
        let client = Arc::new(DapClient::new(server.clone(), transport));
        VirtualWorkflowBuilder {
            server,
            client,
            clock,
            stale_grace: Duration::ZERO,
            datasource: DataSource::new(),
            opendap_specs: Vec::new(),
            mapping_docs: Vec::new(),
        }
    }

    /// Enable retry + circuit breaking on the embedded DAP client. The
    /// breaker cooldown ticks on the builder's clock.
    pub fn enable_resilience(&self, config: ResilienceConfig, seed: u64) {
        self.client
            .enable_resilience(config, self.clock.clone(), seed);
    }

    /// Serve-stale grace for the SDL subset cache and every `opendap`
    /// virtual table: expired entries may bridge *transient* upstream
    /// failures for this long past their window, flagged degraded. Zero
    /// (the default) disables serve-stale.
    pub fn set_stale_grace(&mut self, grace: Duration) {
        self.stale_grace = grace;
    }

    /// Publish a gridded product on the embedded OPeNDAP server.
    pub fn publish(&self, dataset: Dataset) {
        self.server.publish(dataset);
    }

    /// The embedded server (to publish from outside or inspect logs).
    pub fn server(&self) -> &Arc<DapServer> {
        &self.server
    }

    /// Register a relational table for the OBDA engine.
    pub fn add_table(&mut self, table: TabularSource) {
        self.datasource.add_table(table);
    }

    /// Register the `opendap` virtual table for a published dataset.
    pub fn add_opendap(&mut self, dataset: &str, variable: &str, window: Duration) {
        self.opendap_specs
            .push((dataset.to_string(), variable.to_string(), window));
    }

    /// Add a mapping document (GeoTriples/Ontop format). The document is
    /// validated eagerly so malformed mappings fail at the add site.
    pub fn add_mappings(&mut self, doc: &str) -> Result<(), CoreError> {
        parse_mappings(doc)?;
        self.mapping_docs.push(doc.to_string());
        Ok(())
    }

    /// Compile the configuration into a sealed, shareable
    /// [`VirtualWorkflow`]. Mapping problems surface here, before the
    /// first query runs.
    pub fn seal(mut self) -> Result<VirtualWorkflow, CoreError> {
        let mut span = applab_obs::span("obda.build_graph");
        for (dataset, variable, window) in std::mem::take(&mut self.opendap_specs) {
            let vt = Arc::new(
                OpendapTable::new(
                    self.client.clone(),
                    dataset.as_str(),
                    variable.as_str(),
                    window,
                    self.clock.clone(),
                )
                .with_stale_grace(self.stale_grace),
            );
            self.datasource.add_opendap(&dataset, &variable, vt);
        }
        let mut sdl = Sdl::new(
            self.client.clone(),
            Duration::from_secs(600),
            self.clock.clone(),
        );
        if self.stale_grace > Duration::ZERO {
            sdl = sdl.with_stale_grace(self.stale_grace);
        }
        let mut mappings = Vec::new();
        for doc in &self.mapping_docs {
            mappings.extend(parse_mappings(doc)?);
        }
        span.record("mappings", mappings.len());
        let graph = VirtualGraph::new(self.datasource, mappings)?;
        Ok(VirtualWorkflow {
            server: self.server,
            client: self.client,
            sdl,
            graph,
        })
    }
}

/// Query phase of the on-the-fly workflow: a sealed virtual graph whose
/// query methods take `&self` and may be called from many threads at once.
pub struct VirtualWorkflow {
    server: Arc<DapServer>,
    client: Arc<DapClient>,
    sdl: Sdl,
    graph: VirtualGraph,
}

impl VirtualWorkflow {
    /// The embedded server (to inspect request logs).
    pub fn server(&self) -> &Arc<DapServer> {
        &self.server
    }

    /// The SDL view over the published datasets.
    pub fn sdl(&self) -> &Sdl {
        &self.sdl
    }

    /// The DAP client (exposes transfer statistics).
    pub fn client(&self) -> &Arc<DapClient> {
        &self.client
    }

    /// Run a GeoSPARQL query over the virtual graphs.
    pub fn query(&self, sparql: &str) -> Result<QueryResults, CoreError> {
        self.query_with(sparql, &EvalOptions::default())
    }

    /// Run a query with explicit evaluation options (parallelism, budget).
    ///
    /// Graph scans have no error channel, so a remote source failure that a
    /// scan swallowed is picked up from the [source-fault
    /// slot](applab_obda::take_source_fault) afterwards: a query never
    /// reports a silently partial result when its upstream was down.
    pub fn query_with(
        &self,
        sparql: &str,
        options: &EvalOptions,
    ) -> Result<QueryResults, CoreError> {
        let q = applab_sparql::parse_query(sparql)?;
        let _ = applab_obda::take_source_fault(); // drop leftovers
        let results = applab_sparql::evaluate_with(&self.graph, &q, options);
        if let Some(fault) = applab_obda::take_source_fault() {
            return Err(fault.into());
        }
        Ok(results?)
    }

    /// Run a query under a profiling trace: the results plus an EXPLAIN
    /// span tree with per-stage timings and cardinalities.
    pub fn query_explained(&self, sparql: &str) -> Result<crate::Explain, CoreError> {
        self.query_explained_with(sparql, &EvalOptions::default())
    }

    /// [`Self::query_explained`] with explicit evaluation options. With
    /// the cost-based planner on, the scan spans carry the plan: the
    /// chosen access path, the estimated row count next to the actual
    /// one, and how many scanned rows the build-side filters pruned.
    pub fn query_explained_with(
        &self,
        sparql: &str,
        options: &EvalOptions,
    ) -> Result<crate::Explain, CoreError> {
        let accounting = applab_obs::querystats::Scope::begin();
        let (results, profile) = applab_obs::profile("query", |root| {
            root.record("backend", "obda");
            if options.planner {
                root.record("planner", true);
            }
            let q = applab_sparql::parse_query(sparql)?;
            let _ = applab_obda::take_source_fault();
            let results = applab_sparql::evaluate_with(&self.graph, &q, options);
            if let Some(fault) = applab_obda::take_source_fault() {
                return Err(fault.into());
            }
            Ok::<_, CoreError>(results?)
        });
        Ok(crate::Explain {
            results: results?,
            profile,
            stats: accounting.finish(),
        })
    }

    /// Materialize every mapping (the "for more costly operations it is
    /// better to materialize the data" path of Section 5).
    pub fn materialize(&self) -> Result<applab_rdf::Graph, CoreError> {
        Ok(self.graph.materialize()?)
    }
}

impl QueryEndpoint for VirtualWorkflow {
    fn query_with(&self, sparql: &str, options: &EvalOptions) -> Result<QueryResults, CoreError> {
        VirtualWorkflow::query_with(self, sparql, options)
    }

    fn query_explained(&self, sparql: &str) -> Result<crate::Explain, CoreError> {
        VirtualWorkflow::query_explained(self, sparql)
    }

    fn backend(&self) -> &'static str {
        "obda"
    }
}

/// Compile-time proof that a sealed workflow can be shared across the
/// service's worker threads (the obda/sdl interior-mutability audit).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VirtualWorkflow>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use applab_data::{grids, mappings, ParisFixture};
    use applab_geo::Coord;

    fn workflow() -> VirtualWorkflow {
        let fixture = ParisFixture::generate(3, 12, 12);
        let mut lai = grids::lai_dataset(
            &fixture.world,
            &grids::GridSpec {
                resolution: 8,
                times: vec![0, 86_400 * 30],
                noise: 0.0,
                seed: 3,
            },
        );
        lai.name = "lai_300m".into();
        let mut b = VirtualWorkflowBuilder::local();
        b.publish(lai);
        b.add_opendap("lai_300m", "LAI", Duration::from_secs(600));
        b.add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
            .unwrap();
        b.seal().unwrap()
    }

    #[test]
    fn listing3_over_virtual_graph() {
        let wf = workflow();
        let r = wf
            .query(
                "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
            )
            .unwrap();
        assert!(!r.is_empty());
        // Virtual ≡ materialized.
        let mat = wf.materialize().unwrap();
        let r2 = applab_sparql::query(
            &mat,
            "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
        )
        .unwrap();
        assert_eq!(r.len(), r2.len());
    }

    #[test]
    fn sdl_methods_work_over_published_data() {
        let wf = workflow();
        let meta = wf.sdl().get_metadata("lai_300m").unwrap();
        assert!(meta.extent.is_some());
        let v = wf
            .sdl()
            .get_point("lai_300m", "LAI", Coord::new(2.3, 48.85), 0)
            .unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn sealed_workflow_queries_from_many_threads() {
        let wf = workflow();
        let baseline = wf.query("ASK { ?s lai:hasLai ?v }").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let r = wf.query("ASK { ?s lai:hasLai ?v }").unwrap();
                    assert_eq!(r, baseline);
                });
            }
        });
    }

    #[test]
    fn outage_degrades_then_fails_typed() {
        use applab_dap::clock::ManualClock;
        let fixture = ParisFixture::generate(3, 12, 12);
        let mut lai = grids::lai_dataset(
            &fixture.world,
            &grids::GridSpec {
                resolution: 8,
                times: vec![0, 86_400 * 30],
                noise: 0.0,
                seed: 3,
            },
        );
        lai.name = "lai_300m".into();
        let clock = ManualClock::new();
        let mut b =
            VirtualWorkflowBuilder::with_transport_and_clock(Arc::new(Local::new()), clock.clone());
        b.publish(lai);
        b.add_opendap("lai_300m", "LAI", Duration::from_secs(600));
        b.set_stale_grace(Duration::from_secs(3600));
        b.enable_resilience(ResilienceConfig::no_sleep(), 11);
        b.add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
            .unwrap();
        let wf = b.seal().unwrap();
        let q = "SELECT ?s ?lai WHERE { ?s lai:hasLai ?lai }";
        let healthy = wf.query(q).unwrap();
        assert!(!healthy.is_empty());

        // The upstream dies and the cache window expires inside the grace
        // period: the query is answered from the stale copy, degraded.
        wf.server().set_fault_hook(Box::new(|_, _| {
            Err(applab_dap::DapError::Transport("link down".into()))
        }));
        clock.advance(Duration::from_secs(601));
        let scope = applab_obs::degrade::Scope::begin();
        let stale = wf.query(q).unwrap();
        assert_eq!(stale.len(), healthy.len());
        assert!(scope.degraded(), "stale answers must be flagged");

        // Past window + grace nothing can bridge the outage: the query
        // fails typed — never a silent empty result.
        clock.advance(Duration::from_secs(3601));
        match wf.query(q) {
            Err(CoreError::Unavailable { dataset, retries }) => {
                assert_eq!(dataset, "lai_300m");
                assert!(retries > 0);
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }

        // Recovery: fresh answers, no degraded flag.
        wf.server().clear_fault_hook();
        clock.advance(Duration::from_secs(120)); // past the breaker cooldown
        let scope = applab_obs::degrade::Scope::begin();
        let fresh = wf.query(q).unwrap();
        assert_eq!(fresh.len(), healthy.len());
        assert!(!scope.degraded());
    }

    #[test]
    fn bad_mappings_rejected_early() {
        let mut b = VirtualWorkflowBuilder::local();
        assert!(b.add_mappings("not a mapping").is_err());
        // A rejected document is not retained: sealing still works.
        assert!(b.seal().is_ok());
    }
}
