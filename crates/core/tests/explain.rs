//! `query_explained` on both workflow facades: the EXPLAIN tree carries
//! the expected stages, cardinalities, and backend tag, and the results
//! match the plain `query` path.

use applab_core::{MaterializedWorkflow, VirtualWorkflow};
use applab_data::{mappings, ParisFixture};

const QUERY: &str =
    "SELECT ?a ?p WHERE { ?a a ua:UrbanAtlasArea ; ua:hasPopulation ?p . FILTER(?p > 1000) }";

#[test]
fn materialized_explain_reports_stages() {
    let fixture = ParisFixture::generate(7, 12, 8);
    let mut wf = MaterializedWorkflow::new();
    wf.load_table(
        &fixture.world.urban_atlas_table(),
        mappings::URBAN_ATLAS_MAPPING,
    )
    .unwrap();

    let plain = wf.query(QUERY).unwrap();
    let explained = wf.query_explained(QUERY).unwrap();
    assert_eq!(plain, explained.results);
    assert!(!explained.results.is_empty());

    let tree = &explained.profile;
    assert_eq!(tree.name(), "query");
    assert_eq!(
        tree.field("backend").map(ToString::to_string),
        Some("store".into())
    );
    for stage in [
        "parse",
        "sparql.evaluate",
        "bgp",
        "scan",
        "filter",
        "project",
    ] {
        assert!(tree.find(stage).is_some(), "missing stage {stage}");
    }
    // Cardinalities: the project output matches the result row count.
    let project = tree.find("project").unwrap();
    assert_eq!(
        project.field("rows").map(ToString::to_string),
        Some(explained.results.len().to_string())
    );
    assert!(explained.total_duration_ns() > 0);
    let report = explained.report();
    assert!(report.contains("backend=store"), "{report}");
    assert!(explained.to_json().contains("\"name\": \"query\""));
}

#[test]
fn virtual_explain_reports_obda_stages() {
    let fixture = ParisFixture::generate(7, 12, 8);
    let mut wf = VirtualWorkflow::local();
    wf.add_table(fixture.world.urban_atlas_table()).unwrap();
    wf.add_mappings(mappings::URBAN_ATLAS_MAPPING).unwrap();

    let explained = wf.query_explained(QUERY).unwrap();
    assert!(!explained.results.is_empty());

    let tree = &explained.profile;
    assert_eq!(
        tree.field("backend").map(ToString::to_string),
        Some("obda".into())
    );
    // First query both builds the virtual graph and rewrites the BGP.
    for stage in [
        "obda.build_graph",
        "sparql.evaluate",
        "bgp",
        "obda.bgp_rewrite",
    ] {
        assert!(tree.find(stage).is_some(), "missing stage {stage}");
    }

    // Second query: graph already built, BGP still rewritten.
    let again = wf.query_explained(QUERY).unwrap();
    assert_eq!(again.results, explained.results);
    assert!(again.profile.find("obda.bgp_rewrite").is_some());
}
