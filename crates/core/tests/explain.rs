//! `query_explained` on both workflow facades: the EXPLAIN tree carries
//! the expected stages, cardinalities, and backend tag, and the results
//! match the plain `query` path.

use applab_core::{MaterializedWorkflow, QueryEndpoint, VirtualWorkflowBuilder};
use applab_data::{mappings, ParisFixture};

const QUERY: &str =
    "SELECT ?a ?p WHERE { ?a a ua:UrbanAtlasArea ; ua:hasPopulation ?p . FILTER(?p > 1000) }";

#[test]
fn materialized_explain_reports_stages() {
    let fixture = ParisFixture::generate(7, 12, 8);
    let mut wf = MaterializedWorkflow::new();
    wf.load_table(
        &fixture.world.urban_atlas_table(),
        mappings::URBAN_ATLAS_MAPPING,
    )
    .unwrap();

    let plain = wf.query(QUERY).unwrap();
    let explained = wf.query_explained(QUERY).unwrap();
    assert_eq!(plain, explained.results);
    assert!(!explained.results.is_empty());

    let tree = &explained.profile;
    assert_eq!(tree.name(), "query");
    assert_eq!(
        tree.field("backend").map(ToString::to_string),
        Some("store".into())
    );
    for stage in [
        "parse",
        "sparql.evaluate",
        "bgp",
        "scan",
        "filter",
        "project",
    ] {
        assert!(tree.find(stage).is_some(), "missing stage {stage}");
    }
    // Cardinalities: the project output matches the result row count.
    let project = tree.find("project").unwrap();
    assert_eq!(
        project.field("rows").map(ToString::to_string),
        Some(explained.results.len().to_string())
    );
    assert!(explained.total_duration_ns() > 0);
    let report = explained.report();
    assert!(report.contains("backend=store"), "{report}");
    assert!(explained.to_json().contains("\"name\": \"query\""));
}

#[test]
fn virtual_explain_reports_obda_stages() {
    let fixture = ParisFixture::generate(7, 12, 8);
    let mut b = VirtualWorkflowBuilder::local();
    b.add_table(fixture.world.urban_atlas_table());
    b.add_mappings(mappings::URBAN_ATLAS_MAPPING).unwrap();
    // The graph is compiled at seal time, so EXPLAIN trees below only
    // contain per-query stages.
    let wf = b.seal().unwrap();

    // Query through the uniform endpoint trait, as the service does.
    let endpoint: &dyn QueryEndpoint = &wf;
    assert_eq!(endpoint.backend(), "obda");
    let explained = endpoint.query_explained(QUERY).unwrap();
    assert!(!explained.results.is_empty());

    let tree = &explained.profile;
    assert_eq!(
        tree.field("backend").map(ToString::to_string),
        Some("obda".into())
    );
    for stage in ["sparql.evaluate", "bgp", "obda.bgp_rewrite"] {
        assert!(tree.find(stage).is_some(), "missing stage {stage}");
    }
    assert!(
        tree.find("obda.build_graph").is_none(),
        "graph build belongs to seal(), not the query"
    );

    // Second query: BGP still rewritten per query.
    let again = endpoint.query_explained(QUERY).unwrap();
    assert_eq!(again.results, explained.results);
    assert!(again.profile.find("obda.bgp_rewrite").is_some());
}
