//! Interlinking: the Silk / JedAI of the reproduction.
//!
//! Section 3: "Copernicus data stored in Strabon may also be interlinked
//! with other relevant data (e.g., a dataset that gives the land cover of
//! certain areas might be interlinked with OpenStreetMap data for the same
//! areas). To do this in Copernicus App Lab, we use the interlinking tools
//! JedAI and Silk. JedAI is a toolkit for entity resolution and its
//! multi-core version has been shown to be scalable to very large datasets.
//! Silk is a well-known framework for interlinking RDF datasets which we
//! have extended to deal with geospatial and temporal relations."
//!
//! * [`entity`] — the comparison view over RDF resources;
//! * [`similarity`] — string, spatial and temporal similarity measures;
//! * [`blocking`] — token blocking and meta-blocking (JedAI-style
//!   candidate generation with edge-weight pruning);
//! * [`rules`] — Silk-style link specifications (weighted comparisons,
//!   threshold, output predicate), including the geospatial/temporal
//!   extensions of \[28\];
//! * [`runner`] — single- and multi-core link discovery.
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod blocking;
pub mod entity;
pub mod rules;
pub mod runner;
pub mod similarity;

pub use entity::Entity;
pub use rules::{Comparison, LinkRule};
pub use runner::{discover_links, discover_links_parallel, Link};
