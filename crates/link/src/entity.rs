//! The entity view used for matching.

use applab_geo::Geometry;
use applab_rdf::{vocab, Graph, Literal, NamedNode, Resource, Term};

/// A flattened view of one resource, extracted from an RDF graph.
#[derive(Debug, Clone)]
pub struct Entity {
    pub id: Resource,
    /// The best available name (rdfs:label, osm:hasName, gadm:hasName,
    /// schema:name — first hit wins).
    pub name: Option<String>,
    pub geometry: Option<Geometry>,
    /// Valid time instant or interval (epoch seconds).
    pub time: Option<(i64, i64)>,
    /// All literal attribute values, tokenized for blocking.
    pub tokens: Vec<String>,
}

/// Predicates tried, in order, for the entity name.
const NAME_PREDICATES: &[&str] = &[
    vocab::rdfs::LABEL,
    vocab::osm::HAS_NAME,
    vocab::gadm::HAS_NAME,
    vocab::schema::NAME,
];

impl Entity {
    /// Extract an entity from a graph. Geometry is resolved through
    /// `geo:hasGeometry`/`geo:asWKT` (or a direct `geo:asWKT`).
    pub fn from_graph(graph: &Graph, id: &Resource) -> Entity {
        let mut name = None;
        for p in NAME_PREDICATES {
            if let Some(Term::Literal(l)) = graph.object_of(id, &NamedNode::new(*p)) {
                name = Some(l.value().to_string());
                break;
            }
        }
        // Geometry: direct or via hasGeometry.
        let as_wkt = NamedNode::new(vocab::geo::AS_WKT);
        let mut geometry = graph
            .object_of(id, &as_wkt)
            .and_then(|t| t.as_literal())
            .and_then(Literal::as_geometry);
        if geometry.is_none() {
            if let Some(geom_node) = graph
                .object_of(id, &NamedNode::new(vocab::geo::HAS_GEOMETRY))
                .and_then(Term::as_resource)
            {
                geometry = graph
                    .object_of(&geom_node, &as_wkt)
                    .and_then(|t| t.as_literal())
                    .and_then(Literal::as_geometry);
            }
        }
        // Time: time:hasTime instant (or interval via hasBeginning/hasEnd).
        let time = graph
            .object_of(id, &NamedNode::new(vocab::time::HAS_TIME))
            .and_then(|t| t.as_literal())
            .and_then(Literal::as_datetime)
            .map(|t| (t, t));

        let mut tokens = Vec::new();
        for t in graph.about(id) {
            if let Term::Literal(l) = &t.object {
                if !l.is_wkt() {
                    tokens.extend(tokenize(l.value()));
                }
            }
        }
        tokens.sort();
        tokens.dedup();
        Entity {
            id: id.clone(),
            name,
            geometry,
            time,
            tokens,
        }
    }

    /// All entities of a graph (one per distinct subject).
    pub fn all_from_graph(graph: &Graph) -> Vec<Entity> {
        graph
            .subjects()
            .into_iter()
            .map(|s| Entity::from_graph(graph, s))
            .collect()
    }
}

/// Lowercased alphanumeric tokens of length ≥ 2.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(str::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction() {
        let mut g = Graph::new();
        let park = Resource::named("http://ex.org/park1");
        g.add(
            park.clone(),
            NamedNode::new(vocab::osm::HAS_NAME),
            Literal::string("Bois de Boulogne"),
        );
        g.add(
            park.clone(),
            NamedNode::new(vocab::geo::HAS_GEOMETRY),
            Term::named("http://ex.org/park1/geom"),
        );
        g.add(
            Resource::named("http://ex.org/park1/geom"),
            NamedNode::new(vocab::geo::AS_WKT),
            Literal::wkt("POINT (2.25 48.86)"),
        );
        g.add(
            park.clone(),
            NamedNode::new(vocab::time::HAS_TIME),
            Literal::datetime(1000),
        );
        let e = Entity::from_graph(&g, &park);
        assert_eq!(e.name.as_deref(), Some("Bois de Boulogne"));
        assert!(e.geometry.is_some());
        assert_eq!(e.time, Some((1000, 1000)));
        assert!(e.tokens.contains(&"bois".to_string()));
        assert!(e.tokens.contains(&"boulogne".to_string()));
        // Two-character tokens are kept ("de"); single characters are not.
        assert!(e.tokens.contains(&"de".to_string()));
    }

    #[test]
    fn direct_wkt() {
        let mut g = Graph::new();
        let a = Resource::named("http://ex.org/a");
        g.add(
            a.clone(),
            NamedNode::new(vocab::geo::AS_WKT),
            Literal::wkt("POINT (1 1)"),
        );
        let e = Entity::from_graph(&g, &a);
        assert!(e.geometry.is_some());
        assert!(e.name.is_none());
    }

    #[test]
    fn all_entities() {
        let mut g = Graph::new();
        for i in 0..5 {
            g.add(
                Resource::named(format!("http://ex.org/e{i}")),
                NamedNode::new(vocab::rdfs::LABEL),
                Literal::string(format!("entity {i}")),
            );
        }
        assert_eq!(Entity::all_from_graph(&g).len(), 5);
    }

    #[test]
    fn tokenizer() {
        assert_eq!(
            tokenize("Bois-de-Boulogne, Paris 16e"),
            vec!["bois", "de", "boulogne", "paris", "16e"]
                .into_iter()
                .filter(|t| t.len() >= 2)
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }
}
