//! Silk-style link specifications.
//!
//! A [`LinkRule`] aggregates weighted comparisons into a score and emits a
//! link when the score clears the threshold. The spatial and temporal
//! comparisons are the extension of \[28\] ("Silk ... which we have extended
//! to deal with geospatial and temporal relations").

use crate::entity::Entity;
use crate::similarity;
use applab_geo::SpatialRelation;
use applab_rdf::{vocab, NamedNode};

/// One comparison inside a link rule.
#[derive(Debug, Clone)]
pub enum Comparison {
    /// Normalized Levenshtein similarity of the names.
    NameLevenshtein,
    /// Trigram similarity of the names.
    NameTrigram,
    /// Jaccard similarity of the token sets.
    TokenJaccard,
    /// Spatial proximity: 1 at intersection, 0 at `max_distance`.
    SpatialProximity { max_distance: f64 },
    /// Hard spatial predicate: 1 when the relation holds, else 0.
    Spatial(SpatialRelation),
    /// Temporal interval overlap.
    TemporalOverlap,
}

impl Comparison {
    /// Score in [0, 1]; `None` when the inputs lack the compared feature
    /// (missing name/geometry/time).
    pub fn score(&self, a: &Entity, b: &Entity) -> Option<f64> {
        match self {
            Comparison::NameLevenshtein => Some(similarity::levenshtein_similarity(
                a.name.as_deref()?,
                b.name.as_deref()?,
            )),
            Comparison::NameTrigram => Some(similarity::trigram_similarity(
                a.name.as_deref()?,
                b.name.as_deref()?,
            )),
            Comparison::TokenJaccard => Some(similarity::jaccard(&a.tokens, &b.tokens)),
            Comparison::SpatialProximity { max_distance } => Some(similarity::spatial_proximity(
                a.geometry.as_ref()?,
                b.geometry.as_ref()?,
                *max_distance,
            )),
            Comparison::Spatial(rel) => Some(f64::from(
                rel.evaluate(a.geometry.as_ref()?, b.geometry.as_ref()?),
            )),
            Comparison::TemporalOverlap => Some(similarity::temporal_overlap(a.time?, b.time?)),
        }
    }
}

/// A complete link specification.
#[derive(Debug, Clone)]
pub struct LinkRule {
    /// (comparison, weight) pairs; weights need not sum to 1.
    pub comparisons: Vec<(Comparison, f64)>,
    /// Minimum weighted-average score for a link.
    pub threshold: f64,
    /// The predicate of emitted links (default `owl:sameAs`).
    pub predicate: NamedNode,
    /// When true, a comparison whose feature is missing fails the pair
    /// outright; when false it is skipped and the weights renormalize.
    pub strict: bool,
}

impl LinkRule {
    /// An `owl:sameAs` rule.
    pub fn same_as(comparisons: Vec<(Comparison, f64)>, threshold: f64) -> Self {
        LinkRule {
            comparisons,
            threshold,
            predicate: NamedNode::new(vocab::owl::SAME_AS),
            strict: false,
        }
    }

    pub fn with_predicate(mut self, predicate: NamedNode) -> Self {
        self.predicate = predicate;
        self
    }

    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Weighted-average score, or `None` when the pair cannot be compared.
    pub fn score(&self, a: &Entity, b: &Entity) -> Option<f64> {
        let mut total = 0.0;
        let mut weight = 0.0;
        for (cmp, w) in &self.comparisons {
            match cmp.score(a, b) {
                Some(s) => {
                    total += s * w;
                    weight += w;
                }
                None if self.strict => return None,
                None => {}
            }
        }
        if weight == 0.0 {
            None
        } else {
            Some(total / weight)
        }
    }

    /// Does the rule link the pair?
    pub fn matches(&self, a: &Entity, b: &Entity) -> bool {
        self.score(a, b).is_some_and(|s| s >= self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_geo::Geometry;
    use applab_rdf::Resource;

    fn entity(name: Option<&str>, geometry: Option<Geometry>) -> Entity {
        Entity {
            id: Resource::named("http://ex.org/e"),
            tokens: name.map(crate::entity::tokenize).unwrap_or_default(),
            name: name.map(String::from),
            geometry,
            time: None,
        }
    }

    #[test]
    fn name_and_space_agree() {
        let rule = LinkRule::same_as(
            vec![
                (Comparison::NameLevenshtein, 0.5),
                (Comparison::SpatialProximity { max_distance: 1.0 }, 0.5),
            ],
            0.8,
        );
        let a = entity(Some("Bois de Boulogne"), Some(Geometry::point(2.25, 48.86)));
        let b = entity(
            Some("Bois de Boulogne"),
            Some(Geometry::rect(2.2, 48.8, 2.3, 48.9)),
        );
        assert!(rule.matches(&a, &b));
        let far = entity(Some("Bois de Boulogne"), Some(Geometry::point(10.0, 50.0)));
        assert!(!rule.matches(&a, &far));
    }

    #[test]
    fn missing_features_renormalize_or_fail() {
        let rule = LinkRule::same_as(
            vec![
                (Comparison::NameLevenshtein, 0.5),
                (Comparison::TemporalOverlap, 0.5),
            ],
            0.9,
        );
        let a = entity(Some("Parc Monceau"), None);
        let b = entity(Some("Parc Monceau"), None);
        // No time on either side: renormalizes to names only → match.
        assert!(rule.matches(&a, &b));
        // Strict mode fails the pair instead.
        let strict = rule.clone().strict();
        assert!(!strict.matches(&a, &b));
    }

    #[test]
    fn hard_spatial_predicate() {
        let rule = LinkRule::same_as(
            vec![(Comparison::Spatial(SpatialRelation::Within), 1.0)],
            1.0,
        )
        .with_predicate(NamedNode::new("http://ex.org/locatedIn"));
        let point = entity(None, Some(Geometry::point(0.5, 0.5)));
        let area = entity(None, Some(Geometry::rect(0.0, 0.0, 1.0, 1.0)));
        assert!(rule.matches(&point, &area));
        assert!(!rule.matches(&area, &point));
        assert_eq!(rule.predicate.as_str(), "http://ex.org/locatedIn");
    }

    #[test]
    fn incomparable_pair_scores_none() {
        let rule = LinkRule::same_as(vec![(Comparison::NameLevenshtein, 1.0)], 0.5);
        let a = entity(None, None);
        let b = entity(Some("x"), None);
        assert!(rule.score(&a, &b).is_none());
        assert!(!rule.matches(&a, &b));
    }
}
