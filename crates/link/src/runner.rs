//! Link discovery: blocking → meta-blocking → rule evaluation.

use crate::blocking::{candidates, BlockingStats, Pair};
use crate::entity::Entity;
use crate::rules::LinkRule;
use applab_rdf::{Graph, Resource, Triple};

/// A discovered link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    pub left: Resource,
    pub right: Resource,
    pub score: f64,
}

/// Result of a discovery run.
#[derive(Debug, Clone)]
pub struct LinkResult {
    pub links: Vec<Link>,
    pub stats: BlockingStats,
    /// Rule evaluations actually performed (after pruning).
    pub comparisons: usize,
}

impl LinkResult {
    /// Materialize the links as RDF triples with the rule's predicate.
    pub fn to_graph(&self, rule: &LinkRule) -> Graph {
        let mut g = Graph::new();
        for l in &self.links {
            g.insert(Triple::new(
                l.left.clone(),
                rule.predicate.clone(),
                applab_rdf::Term::from(l.right.clone()),
            ));
        }
        g
    }
}

const MAX_BLOCK: usize = 200;

fn evaluate_pairs(pairs: &[Pair], left: &[Entity], right: &[Entity], rule: &LinkRule) -> Vec<Link> {
    pairs
        .iter()
        .filter_map(|&(i, j)| {
            let score = rule.score(&left[i], &right[j])?;
            (score >= rule.threshold).then(|| Link {
                left: left[i].id.clone(),
                right: right[j].id.clone(),
                score,
            })
        })
        .collect()
}

/// Sequential link discovery between two collections.
pub fn discover_links(left: &[Entity], right: &[Entity], rule: &LinkRule) -> LinkResult {
    let (pairs, stats) = candidates(left, right, MAX_BLOCK);
    let links = evaluate_pairs(&pairs, left, right, rule);
    LinkResult {
        links,
        stats,
        comparisons: pairs.len(),
    }
}

/// Multi-core link discovery: the candidate list is sharded across
/// `workers` threads (the JedAI multi-core meta-blocking execution of
/// \[25\]; bench B6 measures the speedup).
pub fn discover_links_parallel(
    left: &[Entity],
    right: &[Entity],
    rule: &LinkRule,
    workers: usize,
) -> LinkResult {
    let workers = workers.max(1);
    let (pairs, stats) = candidates(left, right, MAX_BLOCK);
    if workers == 1 || pairs.len() < 2 {
        let links = evaluate_pairs(&pairs, left, right, rule);
        return LinkResult {
            links,
            stats,
            comparisons: pairs.len(),
        };
    }
    let chunk = pairs.len().div_ceil(workers);
    let links: Vec<Link> = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|shard| scope.spawn(move || evaluate_pairs(shard, left, right, rule)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    LinkResult {
        links,
        stats,
        comparisons: pairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Comparison;
    use applab_geo::Geometry;

    fn collection(prefix: &str, names: &[&str], offset: f64) -> Vec<Entity> {
        names
            .iter()
            .enumerate()
            .map(|(i, name)| Entity {
                id: Resource::named(format!("http://{prefix}.org/{i}")),
                name: Some(name.to_string()),
                geometry: Some(Geometry::point(i as f64 + offset, 0.0)),
                time: None,
                tokens: crate::entity::tokenize(name),
            })
            .collect()
    }

    fn rule() -> LinkRule {
        LinkRule::same_as(
            vec![
                (Comparison::NameLevenshtein, 0.7),
                (Comparison::SpatialProximity { max_distance: 0.5 }, 0.3),
            ],
            0.85,
        )
    }

    #[test]
    fn finds_true_matches() {
        let names = [
            "Bois de Boulogne",
            "Parc de Monceau",
            "Jardin du Luxembourg",
        ];
        let left = collection("osm", &names, 0.0);
        // The same parks with slightly perturbed positions. (Names must
        // keep comparable token weights: Weighted Edge Pruning drops pairs
        // whose shared-token count falls below the mean.)
        let right = collection("clc", &names, 0.05);
        let result = discover_links(&left, &right, &rule());
        assert_eq!(result.links.len(), 3, "{:?}", result.links);
        // Left i should match right i.
        for l in &result.links {
            let li = l.left.as_named().unwrap().as_str();
            let ri = l.right.as_named().unwrap().as_str();
            assert_eq!(
                li.rsplit('/').next().unwrap(),
                ri.rsplit('/').next().unwrap()
            );
        }
    }

    #[test]
    fn pruning_reduces_comparisons() {
        let names: Vec<String> = (0..40)
            .map(|i| format!("park number {i} in paris"))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let left = collection("a", &refs, 0.0);
        let right = collection("b", &refs, 0.01);
        let result = discover_links(&left, &right, &rule());
        // Shared tokens ("park", "number", "in", "paris") create a dense raw
        // graph; meta-blocking must prune it.
        assert!(result.stats.pruned_pairs < result.stats.raw_pairs);
        assert!(result.comparisons > 0);
    }

    #[test]
    fn parallel_equals_sequential() {
        let names: Vec<String> = (0..60).map(|i| format!("entity alpha {i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let left = collection("a", &refs, 0.0);
        let right = collection("b", &refs, 0.02);
        let seq = discover_links(&left, &right, &rule());
        for workers in [2, 4, 8] {
            let par = discover_links_parallel(&left, &right, &rule(), workers);
            assert_eq!(par.comparisons, seq.comparisons);
            let mut a: Vec<String> = seq.links.iter().map(|l| format!("{:?}", l)).collect();
            let mut b: Vec<String> = par.links.iter().map(|l| format!("{:?}", l)).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    fn links_as_graph() {
        let left = collection("a", &["Tour Eiffel"], 0.0);
        let right = collection("b", &["Tour Eiffel"], 0.0);
        let r = rule();
        let result = discover_links(&left, &right, &r);
        let g = result.to_graph(&r);
        assert_eq!(g.len(), 1);
        let t = g.iter().next().unwrap();
        assert_eq!(t.predicate.as_str(), applab_rdf::vocab::owl::SAME_AS);
    }

    #[test]
    fn empty_collections() {
        let r = rule();
        let result = discover_links(&[], &[], &r);
        assert!(result.links.is_empty());
        let result = discover_links_parallel(&[], &[], &r, 4);
        assert!(result.links.is_empty());
    }
}
