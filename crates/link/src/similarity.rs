//! Similarity measures over strings, geometries and time.

use applab_geo::{algorithms, relate, Geometry};

/// Levenshtein edit distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein similarity in [0, 1].
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaccard similarity of two token multisets (as sets).
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<&String> = a.iter().collect();
    let sb: std::collections::HashSet<&String> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Character trigram similarity (Jaccard over trigrams), robust for short
/// place names.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> Vec<String> {
        let padded = format!("  {}  ", s.to_lowercase());
        let chars: Vec<char> = padded.chars().collect();
        chars.windows(3).map(|w| w.iter().collect()).collect()
    };
    jaccard(&grams(a), &grams(b))
}

/// Geometry proximity in [0, 1]: 1 when the geometries intersect, decaying
/// linearly to 0 at `max_distance`.
pub fn spatial_proximity(a: &Geometry, b: &Geometry, max_distance: f64) -> f64 {
    if relate::intersects(a, b) {
        return 1.0;
    }
    if max_distance <= 0.0 {
        return 0.0;
    }
    let d = algorithms::distance(a, b);
    (1.0 - d / max_distance).max(0.0)
}

/// Overlap ratio of two time intervals in [0, 1] (intersection / smaller
/// interval; instants match when equal).
pub fn temporal_overlap(a: (i64, i64), b: (i64, i64)) -> f64 {
    let start = a.0.max(b.0);
    let end = a.1.min(b.1);
    if end < start {
        return 0.0;
    }
    let inter = (end - start) as f64;
    let smaller = ((a.1 - a.0).min(b.1 - b.0)) as f64;
    if smaller == 0.0 {
        1.0 // instants (or instant-inside-interval)
    } else {
        inter / smaller
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert!(levenshtein_similarity("Bois de Boulogne", "Bois de Boulognes") > 0.9);
        assert!(levenshtein_similarity("abc", "xyz") < 0.01);
    }

    #[test]
    fn jaccard_cases() {
        let a = vec!["bois".to_string(), "boulogne".to_string()];
        let b = vec!["boulogne".to_string(), "bois".to_string()];
        assert_eq!(jaccard(&a, &b), 1.0);
        let c = vec!["parc".to_string(), "monceau".to_string()];
        assert_eq!(jaccard(&a, &c), 0.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn trigram_tolerates_typos() {
        assert!(trigram_similarity("Boulogne", "Boulonge") > 0.4);
        assert!(trigram_similarity("Boulogne", "Vincennes") < 0.2);
    }

    #[test]
    fn spatial_proximity_behaviour() {
        let a = Geometry::rect(0.0, 0.0, 1.0, 1.0);
        let b = Geometry::rect(0.5, 0.5, 1.5, 1.5);
        assert_eq!(spatial_proximity(&a, &b, 1.0), 1.0);
        let c = Geometry::point(3.0, 0.5);
        // Distance 2 from a with max 4 → 0.5.
        assert!((spatial_proximity(&a, &c, 4.0) - 0.5).abs() < 1e-9);
        assert_eq!(spatial_proximity(&a, &c, 1.0), 0.0);
    }

    #[test]
    fn temporal_overlap_cases() {
        assert_eq!(temporal_overlap((0, 10), (5, 15)), 0.5);
        assert_eq!(temporal_overlap((0, 10), (10, 20)), 0.0); // endpoint touch only
        assert_eq!(temporal_overlap((0, 10), (11, 20)), 0.0);
        assert_eq!(temporal_overlap((5, 5), (0, 10)), 1.0); // instant inside
        assert_eq!(temporal_overlap((5, 5), (5, 5)), 1.0);
        assert_eq!(temporal_overlap((5, 5), (6, 6)), 0.0);
    }
}
