//! Token blocking and meta-blocking (the JedAI pipeline).
//!
//! Token blocking puts every entity in one block per token; meta-blocking
//! then prunes the implied comparison graph by edge weight. We implement
//! CBS weighting (common blocks scheme) with Weighted Edge Pruning: keep
//! the pairs whose weight exceeds the mean edge weight — the standard
//! JedAI configuration whose multi-core scaling \[25\] bench B6 reproduces.

use crate::entity::Entity;
use std::collections::HashMap;

/// A candidate pair: indexes into the two entity collections (for dirty ER
/// both indexes point into the same collection, with `a < b`).
pub type Pair = (usize, usize);

/// Build token blocks over two collections ("clean-clean" ER). Block key →
/// (left members, right members). Oversized blocks (more than
/// `max_block_size` members per side) are purged, as in JedAI's block
/// purging step.
pub fn token_blocks(
    left: &[Entity],
    right: &[Entity],
    max_block_size: usize,
) -> HashMap<String, (Vec<usize>, Vec<usize>)> {
    let mut blocks: HashMap<String, (Vec<usize>, Vec<usize>)> = HashMap::new();
    for (i, e) in left.iter().enumerate() {
        for t in &e.tokens {
            blocks.entry(t.clone()).or_default().0.push(i);
        }
    }
    for (j, e) in right.iter().enumerate() {
        for t in &e.tokens {
            blocks.entry(t.clone()).or_default().1.push(j);
        }
    }
    blocks.retain(|_, (l, r)| {
        !l.is_empty() && !r.is_empty() && l.len() <= max_block_size && r.len() <= max_block_size
    });
    blocks
}

/// All comparisons implied by the blocks, deduplicated (no weighting).
pub fn block_pairs(blocks: &HashMap<String, (Vec<usize>, Vec<usize>)>) -> Vec<Pair> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (l, r) in blocks.values() {
        for &i in l {
            for &j in r {
                if seen.insert((i, j)) {
                    out.push((i, j));
                }
            }
        }
    }
    out
}

/// Meta-blocking with CBS weights and Weighted Edge Pruning: keep pairs
/// sharing more blocks than the average pair.
pub fn meta_blocking(blocks: &HashMap<String, (Vec<usize>, Vec<usize>)>) -> Vec<Pair> {
    let mut weights: HashMap<Pair, u32> = HashMap::new();
    for (l, r) in blocks.values() {
        for &i in l {
            for &j in r {
                *weights.entry((i, j)).or_insert(0) += 1;
            }
        }
    }
    if weights.is_empty() {
        return Vec::new();
    }
    let mean = weights.values().map(|&w| w as f64).sum::<f64>() / weights.len() as f64;
    let mut out: Vec<Pair> = weights
        .into_iter()
        .filter(|(_, w)| *w as f64 >= mean)
        .map(|(p, _)| p)
        .collect();
    out.sort_unstable();
    out
}

/// Statistics of a blocking configuration, for the scalability bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingStats {
    pub blocks: usize,
    pub raw_pairs: usize,
    pub pruned_pairs: usize,
}

/// Run the whole candidate-generation pipeline and report sizes.
pub fn candidates(
    left: &[Entity],
    right: &[Entity],
    max_block_size: usize,
) -> (Vec<Pair>, BlockingStats) {
    let blocks = token_blocks(left, right, max_block_size);
    let raw = block_pairs(&blocks).len();
    let pruned = meta_blocking(&blocks);
    let stats = BlockingStats {
        blocks: blocks.len(),
        raw_pairs: raw,
        pruned_pairs: pruned.len(),
    };
    (pruned, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::Resource;

    fn entity(id: usize, name: &str) -> Entity {
        Entity {
            id: Resource::named(format!("http://ex.org/e{id}")),
            name: Some(name.to_string()),
            geometry: None,
            time: None,
            tokens: crate::entity::tokenize(name),
        }
    }

    #[test]
    fn token_blocking_groups_shared_tokens() {
        let left = vec![entity(0, "Bois de Boulogne"), entity(1, "Parc Monceau")];
        let right = vec![
            entity(0, "bois boulogne paris"),
            entity(1, "jardin luxembourg"),
        ];
        let blocks = token_blocks(&left, &right, 100);
        assert!(blocks.contains_key("boulogne"));
        assert!(blocks.contains_key("bois"));
        // Tokens present on only one side are purged.
        assert!(!blocks.contains_key("monceau"));
        let pairs = block_pairs(&blocks);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn meta_blocking_prunes_weak_pairs() {
        // e0/e0' share two tokens; e1/e0' share one → WEP keeps the strong
        // pair, drops the weak one (mean weight = 1.5).
        let left = vec![entity(0, "grand parc boulogne"), entity(1, "parc monceau")];
        let right = vec![entity(0, "parc boulogne")];
        let blocks = token_blocks(&left, &right, 100);
        let raw = block_pairs(&blocks);
        assert_eq!(raw.len(), 2);
        let pruned = meta_blocking(&blocks);
        assert_eq!(pruned, vec![(0, 0)]);
    }

    #[test]
    fn oversized_blocks_purged() {
        let left: Vec<Entity> = (0..50).map(|i| entity(i, "common park")).collect();
        let right: Vec<Entity> = (0..50).map(|i| entity(i, "common park")).collect();
        let blocks = token_blocks(&left, &right, 10);
        assert!(blocks.is_empty());
    }

    #[test]
    fn stats_reported() {
        let left = vec![entity(0, "alpha beta"), entity(1, "gamma delta")];
        let right = vec![entity(0, "alpha beta"), entity(1, "epsilon zeta")];
        let (pairs, stats) = candidates(&left, &right, 100);
        assert_eq!(stats.blocks, 2); // alpha, beta
        assert!(stats.pruned_pairs <= stats.raw_pairs);
        assert!(pairs.contains(&(0, 0)));
    }

    #[test]
    fn empty_inputs() {
        let (pairs, stats) = candidates(&[], &[], 100);
        assert!(pairs.is_empty());
        assert_eq!(stats.blocks, 0);
    }
}
