//! The differential harness: one query, four engines, one verdict.
//!
//! Engines under test:
//!
//! 1. `reference` — the nested-loop oracle evaluator,
//! 2. `pipeline-seq` — the dictionary/hash-join pipeline, forced
//!    sequential,
//! 3. `pipeline-par` — the same pipeline, forced onto parallel probes,
//! 4. `virtual` — the on-the-fly OBDA workflow over tables + OPeNDAP.
//!
//! All solution results are pushed through the JSON wire format
//! (`to_json` → `from_json`) before canonicalization, so every
//! differential case also exercises the serializer round-trip.
//!
//! With `LIMIT`/`OFFSET` in play any correctly-sized subset of the full
//! answer is a legal result (row order below an under-specified `ORDER
//! BY` is engine-dependent), so the harness switches to *slice mode*:
//! each engine's answer must be contained in the unlimited reference
//! answer and have exactly the cardinality the modifiers dictate.

use crate::canon::{canonicalize, diff, is_multiset_subset, Canon};
use crate::dataset::{DatasetSpec, Engines};
use crate::gen::QueryIr;
use applab_sparql::{reference, EvalOptions, Query, QueryResults};

/// How a case was judged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All engines produced equivalent results.
    Agree,
    /// All engines failed (same front door, e.g. a type error surfaced at
    /// evaluation); recorded separately so a noisy generator is visible.
    AgreeError(String),
    /// At least two engines produced non-equivalent results — the oracle
    /// fired. The payload names the engines and the first difference.
    Disagree(String),
}

impl Verdict {
    pub fn is_disagreement(&self) -> bool {
        matches!(self, Verdict::Disagree(_))
    }
}

/// Engine labels, aligned with [`Harness::run_text`] internals.
pub const ENGINES: [&str; 4] = ["reference", "pipeline-seq", "pipeline-par", "virtual"];

/// Planner-on engine labels appended by [`Harness::run_text_planned`]:
/// the sequential pipeline and the OBDA virtual workflow re-run with
/// [`EvalOptions::planner`] enabled, so every differential case also
/// proves the cost-based plan returns the written-order multiset.
pub const PLANNED_ENGINES: [&str; 2] = ["planned-seq", "planned-virtual"];

fn engine_name(idx: usize) -> &'static str {
    ENGINES
        .get(idx)
        .or_else(|| PLANNED_ENGINES.get(idx - ENGINES.len()))
        .expect("engine index")
}

/// The batch windows forced on the pipeline engines (`pipeline-seq`,
/// `pipeline-par` in that order): deliberately tiny and coprime, so on
/// the small generated datasets batch edges land inside every operator
/// and at different rows for the two engines. `QueryIr::features`
/// reports batch-boundary coverage against these same windows.
pub const HARNESS_BATCH_WINDOWS: [usize; 2] = [7, 3];

/// A differential harness bound to one dataset.
pub struct Harness {
    pub engines: Engines,
    pub spec: DatasetSpec,
}

fn canon_via_json(r: &QueryResults) -> Result<Canon, String> {
    let direct = canonicalize(r);
    let json = r.to_json();
    let parsed = QueryResults::from_json(&json).map_err(|e| format!("from_json failed: {e}"))?;
    let round = canonicalize(&parsed);
    if direct != round {
        return Err(format!(
            "JSON round-trip changed the canonical result: {}",
            diff(&direct, &round).unwrap_or_default()
        ));
    }
    Ok(direct)
}

impl Harness {
    pub fn new(spec: DatasetSpec) -> Result<Harness, String> {
        let engines = spec.build()?;
        Ok(Harness { engines, spec })
    }

    /// Evaluate on one engine by index (order of [`ENGINES`]).
    ///
    /// Both pipeline engines run with deliberately tiny (and different)
    /// batch windows, so on the small generated datasets every FILTER,
    /// LIMIT/OFFSET slice and GROUP BY constantly straddles batch
    /// boundaries — the window size must never be observable.
    fn eval_engine(&self, idx: usize, text: &str, query: &Query) -> Result<QueryResults, String> {
        match idx {
            0 => reference::evaluate(&self.engines.store, query).map_err(|e| e.to_string()),
            1 => applab_sparql::evaluate_with(
                &self.engines.store,
                query,
                &EvalOptions {
                    batch_size: HARNESS_BATCH_WINDOWS[0],
                    ..EvalOptions::sequential()
                },
            )
            .map_err(|e| e.to_string()),
            2 => applab_sparql::evaluate_with(
                &self.engines.store,
                query,
                &EvalOptions {
                    batch_size: HARNESS_BATCH_WINDOWS[1],
                    ..EvalOptions::forced_parallel(3)
                },
            )
            .map_err(|e| e.to_string()),
            3 => self
                .engines
                .vw
                .query_with(text, &EvalOptions::sequential())
                .map_err(|e| e.to_string()),
            // Planner-on engines ([`PLANNED_ENGINES`]): same configs as
            // pipeline-seq / virtual with the cost-based plan enabled.
            4 => applab_sparql::evaluate_with(
                &self.engines.store,
                query,
                &EvalOptions {
                    batch_size: HARNESS_BATCH_WINDOWS[0],
                    ..EvalOptions::sequential()
                }
                .planner(true),
            )
            .map_err(|e| e.to_string()),
            5 => self
                .engines
                .vw
                .query_with(text, &EvalOptions::sequential().planner(true))
                .map_err(|e| e.to_string()),
            _ => unreachable!("engine index"),
        }
    }

    /// Run the pipeline-seq engine only (the metamorphic checks need a
    /// single fast engine, not the full cross-product).
    pub fn eval_pipeline_seq(&self, text: &str) -> Result<Canon, String> {
        let query = applab_sparql::parse_query(text).map_err(|e| format!("parse: {e}"))?;
        let r = self.eval_engine(1, text, &query)?;
        canon_via_json(&r)
    }

    /// Run the planner-on sequential pipeline only (the adversarial-order
    /// metamorphic check compares plans, not the full cross-product).
    pub fn eval_planned_seq(&self, text: &str) -> Result<Canon, String> {
        let query = applab_sparql::parse_query(text).map_err(|e| format!("parse: {e}"))?;
        let r = self.eval_engine(4, text, &query)?;
        canon_via_json(&r)
    }

    /// Run one rendered query through all four engines and diff.
    pub fn run_text(&self, text: &str) -> Verdict {
        self.run_engines(text, ENGINES.len())
    }

    /// Run one rendered query through all four engines *plus* the two
    /// planner-on configurations ([`PLANNED_ENGINES`]) and diff — the
    /// planner-equivalence differential sweep.
    pub fn run_text_planned(&self, text: &str) -> Verdict {
        self.run_engines(text, ENGINES.len() + PLANNED_ENGINES.len())
    }

    fn run_engines(&self, text: &str, engine_count: usize) -> Verdict {
        let query = match applab_sparql::parse_query(text) {
            Ok(q) => q,
            // All engines share the parser; a parse failure cannot
            // discriminate between them. It is still a generator defect,
            // so surface it loudly.
            Err(e) => return Verdict::Disagree(format!("generated query does not parse: {e}")),
        };
        let slice_mode = query.limit.is_some() || query.offset > 0;

        let mut canons: Vec<(usize, Canon)> = Vec::new();
        let mut errors: Vec<(usize, String)> = Vec::new();
        // An index loop on purpose: idx names the engine in both arms and
        // feeds eval_engine; iterating the label arrays would still need it.
        for idx in 0..engine_count {
            match self.eval_engine(idx, text, &query) {
                Ok(r) => match canon_via_json(&r) {
                    Ok(c) => canons.push((idx, c)),
                    Err(e) => {
                        return Verdict::Disagree(format!("{}: {e}", engine_name(idx)));
                    }
                },
                Err(e) => errors.push((idx, e)),
            }
        }
        if canons.is_empty() {
            let (idx, e) = &errors[0];
            return Verdict::AgreeError(format!("{}: {e}", engine_name(*idx)));
        }
        if !errors.is_empty() {
            let (eidx, e) = &errors[0];
            let (oidx, _) = &canons[0];
            return Verdict::Disagree(format!(
                "{} errored ({e}) while {} answered",
                engine_name(*eidx),
                engine_name(*oidx)
            ));
        }

        if !slice_mode {
            let (_, reference_canon) = &canons[0];
            for (idx, c) in &canons[1..] {
                if let Some(d) = diff(reference_canon, c) {
                    return Verdict::Disagree(format!("reference vs {}: {d}", engine_name(*idx)));
                }
            }
            return Verdict::Agree;
        }

        // Slice mode: compare every engine against the unlimited
        // reference answer.
        let mut unlimited = query.clone();
        unlimited.limit = None;
        unlimited.offset = 0;
        let full = match reference::evaluate(&self.engines.store, &unlimited) {
            Ok(r) => canonicalize(&r),
            Err(e) => return Verdict::Disagree(format!("unlimited reference run failed: {e}")),
        };
        let expected = query
            .limit
            .unwrap_or(usize::MAX)
            .min(full.len().saturating_sub(query.offset));
        for (idx, c) in &canons {
            if c.len() != expected {
                return Verdict::Disagree(format!(
                    "{}: slice of {} rows, expected {expected} (full {} rows, limit {:?} offset {})",
                    engine_name(*idx),
                    c.len(),
                    full.len(),
                    query.limit,
                    query.offset
                ));
            }
            if !is_multiset_subset(c, &full) {
                return Verdict::Disagree(format!(
                    "{}: slice is not contained in the unlimited reference answer",
                    engine_name(*idx)
                ));
            }
        }
        Verdict::Agree
    }

    /// Convenience: render an IR and run it.
    pub fn run_ir(&self, ir: &QueryIr) -> Verdict {
        self.run_text(&ir.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handwritten_queries_agree() {
        let h = Harness::new(DatasetSpec::small(11)).unwrap();
        for q in [
            "SELECT ?s ?w WHERE { ?s a clc:CorineArea ; geo:hasGeometry ?g . ?g geo:asWKT ?w }",
            "SELECT ?s (COUNT(*) AS ?n) WHERE { ?s a gadm:AdministrativeUnit } GROUP BY ?s",
            "ASK WHERE { ?s osm:poiType osm:park }",
            "SELECT ?s ?lai WHERE { ?s lai:hasLai ?lai . FILTER(?lai > 1.0) }",
            "SELECT ?s WHERE { ?s a ua:UrbanAtlasArea } ORDER BY ?s LIMIT 3",
        ] {
            assert_eq!(h.run_text(q), Verdict::Agree, "query {q}");
        }
    }

    #[test]
    fn a_broken_query_is_reported_not_panicked() {
        let h = Harness::new(DatasetSpec::small(11)).unwrap();
        let v = h.run_text("SELECT ?x WHERE { ?x osm:nope ?y . FILTER(?y");
        assert!(v.is_disagreement(), "parse failures surface loudly: {v:?}");
    }
}
