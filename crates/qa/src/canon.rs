//! Canonical, order-insensitive form of query results.
//!
//! The differential harness never compares [`QueryResults`] directly:
//! every result is reduced to a [`Canon`] first — variables sorted, rows
//! sorted, numeric lexical forms normalized, blank-node labels renamed
//! per row — so two engines agree exactly when their answers are the same
//! *multiset of solutions*, regardless of row order, column order, or
//! internal identifier choices.

use applab_rdf::{vocab, Term};
use applab_sparql::QueryResults;
use std::collections::BTreeMap;

/// A canonicalized result. `Solutions` covers SELECT and (via the
/// subject/predicate/object pseudo-variables of the JSON serialization)
/// CONSTRUCT; `Boolean` covers ASK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Canon {
    Solutions {
        /// Sorted ascending.
        variables: Vec<String>,
        /// Each row aligned with `variables`; rows sorted ascending.
        rows: Vec<Vec<Option<String>>>,
    },
    Boolean(bool),
}

impl Canon {
    pub fn len(&self) -> usize {
        match self {
            Canon::Solutions { rows, .. } => rows.len(),
            Canon::Boolean(_) => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn rows(&self) -> Option<&[Vec<Option<String>>]> {
        match self {
            Canon::Solutions { rows, .. } => Some(rows),
            Canon::Boolean(_) => None,
        }
    }
}

/// Canonical string form of one term. Blank labels are kept verbatim here;
/// the row canonicalizer renames them per row.
pub fn canonical_term(t: &Term) -> String {
    match t {
        Term::Named(n) => format!("<{}>", n.as_str()),
        Term::Blank(b) => format!("_:{b}"),
        Term::Literal(l) => {
            if let Some(lang) = l.language() {
                return format!("\"{}\"@{lang}", l.value());
            }
            let dt = l.datatype().as_str();
            if let Some(v) = l.as_f64() {
                // One lexical form per numeric value *and* datatype:
                // "5" vs "5.0" vs "05" collapse, but xsd:integer 5 stays
                // distinct from xsd:double 5 (SPARQL `=` treats them equal,
                // solution multisets do not).
                return format!("\"{v}\"^^<{dt}>");
            }
            if let Some(b) = l.as_bool() {
                return format!("\"{b}\"^^<{dt}>");
            }
            if let Some(ts) = l.as_datetime() {
                return format!("\"@{ts}\"^^<{}>", vocab::xsd::DATE_TIME);
            }
            if dt == vocab::xsd::STRING {
                return format!("\"{}\"", l.value());
            }
            format!("\"{}\"^^<{dt}>", l.value())
        }
    }
}

/// Canonicalize one row: project through the column permutation and
/// rename blank labels in order of first appearance, so blank identity is
/// preserved within the row but engine-specific label choices vanish.
fn canonical_row(values: Vec<Option<String>>) -> Vec<Option<String>> {
    let mut names: BTreeMap<String, usize> = BTreeMap::new();
    values
        .into_iter()
        .map(|v| {
            v.map(|s| {
                if let Some(label) = s.strip_prefix("_:") {
                    let next = names.len();
                    let id = *names.entry(label.to_string()).or_insert(next);
                    format!("_:b{id}")
                } else {
                    s
                }
            })
        })
        .collect()
}

/// Reduce a result to its canonical form.
pub fn canonicalize(r: &QueryResults) -> Canon {
    match r {
        QueryResults::Boolean(b) => Canon::Boolean(*b),
        QueryResults::Solutions { variables, rows } => {
            // Column permutation: sorted variable names.
            let mut order: Vec<usize> = (0..variables.len()).collect();
            order.sort_by(|&a, &b| variables[a].cmp(&variables[b]));
            let sorted_vars: Vec<String> = order.iter().map(|&i| variables[i].clone()).collect();
            let mut out_rows: Vec<Vec<Option<String>>> = rows
                .iter()
                .map(|row| {
                    canonical_row(
                        order
                            .iter()
                            .map(|&i| {
                                row.values
                                    .get(i)
                                    .and_then(|v| v.as_ref().map(canonical_term))
                            })
                            .collect(),
                    )
                })
                .collect();
            out_rows.sort();
            Canon::Solutions {
                variables: sorted_vars,
                rows: out_rows,
            }
        }
        QueryResults::Graph(g) => {
            // Match the JSON serialization: solutions over the
            // subject/predicate/object pseudo-variables.
            let variables = vec![
                "object".to_string(),
                "predicate".to_string(),
                "subject".to_string(),
            ];
            let mut rows: Vec<Vec<Option<String>>> = g
                .iter()
                .map(|t| {
                    let subject = match &t.subject {
                        applab_rdf::Resource::Named(n) => format!("<{}>", n.as_str()),
                        applab_rdf::Resource::Blank(b) => format!("_:{b}"),
                    };
                    canonical_row(vec![
                        Some(canonical_term(&t.object)),
                        Some(format!("<{}>", t.predicate.as_str())),
                        Some(subject),
                    ])
                })
                .collect();
            rows.sort();
            Canon::Solutions { variables, rows }
        }
    }
}

/// Multiset containment: every row of `sub` occurs in `sup` at least as
/// often. Only defined over `Solutions` with identical variable lists.
pub fn is_multiset_subset(sub: &Canon, sup: &Canon) -> bool {
    match (sub, sup) {
        (
            Canon::Solutions {
                variables: va,
                rows: ra,
            },
            Canon::Solutions {
                variables: vb,
                rows: rb,
            },
        ) => {
            if va != vb {
                return false;
            }
            let mut counts: BTreeMap<&Vec<Option<String>>, i64> = BTreeMap::new();
            for row in rb {
                *counts.entry(row).or_insert(0) += 1;
            }
            for row in ra {
                match counts.get_mut(row) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => return false,
                }
            }
            true
        }
        (Canon::Boolean(a), Canon::Boolean(b)) => a == b,
        _ => false,
    }
}

/// Human-readable first difference between two canonical results, or
/// `None` when they are equal.
pub fn diff(a: &Canon, b: &Canon) -> Option<String> {
    if a == b {
        return None;
    }
    match (a, b) {
        (Canon::Boolean(x), Canon::Boolean(y)) => Some(format!("ASK {x} vs {y}")),
        (
            Canon::Solutions {
                variables: va,
                rows: ra,
            },
            Canon::Solutions {
                variables: vb,
                rows: rb,
            },
        ) => {
            if va != vb {
                return Some(format!("variables {va:?} vs {vb:?}"));
            }
            let only_a: Vec<&Vec<Option<String>>> =
                ra.iter().filter(|r| !rb.contains(r)).take(3).collect();
            let only_b: Vec<&Vec<Option<String>>> =
                rb.iter().filter(|r| !ra.contains(r)).take(3).collect();
            Some(format!(
                "{} vs {} rows; sample only-left {only_a:?}; sample only-right {only_b:?}",
                ra.len(),
                rb.len()
            ))
        }
        _ => Some("result kinds differ (solutions vs boolean)".to_string()),
    }
}

/// The multiset of rows shared by the comparison helpers, exposed for the
/// metamorphic containment checks.
pub fn row_count(c: &Canon) -> Option<usize> {
    c.rows().map(<[_]>::len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::{Literal, Term};
    use applab_sparql::Row;

    fn solutions(vars: &[&str], rows: Vec<Vec<Option<Term>>>) -> QueryResults {
        QueryResults::Solutions {
            variables: vars.iter().map(|s| s.to_string()).collect(),
            rows: rows.into_iter().map(|values| Row { values }).collect(),
        }
    }

    #[test]
    fn numeric_lexical_forms_collapse() {
        let a = solutions(
            &["x"],
            vec![vec![Some(Term::Literal(Literal::typed(
                "5.0",
                applab_rdf::NamedNode::new(vocab::xsd::DOUBLE),
            )))]],
        );
        let b = solutions(
            &["x"],
            vec![vec![Some(Term::Literal(Literal::typed(
                "5",
                applab_rdf::NamedNode::new(vocab::xsd::DOUBLE),
            )))]],
        );
        assert_eq!(canonicalize(&a), canonicalize(&b));
        // ... but datatypes stay significant.
        let c = solutions(
            &["x"],
            vec![vec![Some(Term::Literal(Literal::typed(
                "5",
                applab_rdf::NamedNode::new(vocab::xsd::INTEGER),
            )))]],
        );
        assert_ne!(canonicalize(&a), canonicalize(&c));
    }

    #[test]
    fn row_and_column_order_are_insignificant() {
        let one = Term::Literal(Literal::integer(1));
        let two = Term::Literal(Literal::integer(2));
        let a = solutions(
            &["x", "y"],
            vec![
                vec![Some(one.clone()), Some(two.clone())],
                vec![Some(two.clone()), Some(one.clone())],
            ],
        );
        let b = solutions(
            &["y", "x"],
            vec![
                vec![Some(one.clone()), Some(two.clone())],
                vec![Some(two), Some(one)],
            ],
        );
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn blank_labels_are_renamed_per_row() {
        let blank = |label: &str| Term::Blank(applab_rdf::BlankNode::new(label));
        let a = solutions(
            &["g", "h"],
            vec![vec![Some(blank("n17")), Some(blank("n17"))]],
        );
        let b = solutions(
            &["g", "h"],
            vec![vec![Some(blank("z2")), Some(blank("z2"))]],
        );
        let c = solutions(
            &["g", "h"],
            vec![vec![Some(blank("z2")), Some(blank("z3"))]],
        );
        assert_eq!(canonicalize(&a), canonicalize(&b));
        assert_ne!(canonicalize(&a), canonicalize(&c));
    }

    #[test]
    fn multiset_subset_respects_duplicates() {
        let one = Term::Literal(Literal::integer(1));
        let single = canonicalize(&solutions(&["x"], vec![vec![Some(one.clone())]]));
        let double = canonicalize(&solutions(
            &["x"],
            vec![vec![Some(one.clone())], vec![Some(one)]],
        ));
        assert!(is_multiset_subset(&single, &double));
        assert!(!is_multiset_subset(&double, &single));
        assert!(diff(&single, &double).is_some());
        assert!(diff(&single, &single).is_none());
    }
}
