//! Greedy input shrinking: reduce a failing (query, dataset) pair to a
//! locally-minimal one that still fails.
//!
//! The shrinker proposes structural edits — drop a pattern element,
//! unwrap an OPTIONAL, keep one UNION branch, drop a FILTER conjunct,
//! strip solution modifiers, shrink the world, drop tables — and greedily
//! applies any edit under which the failure predicate still fires,
//! until no edit helps. The predicate re-runs the full harness, so a
//! shrunk case is failing *for the same observable reason class* (any
//! disagreement), which is what a regression corpus needs.

use crate::dataset::DatasetSpec;
use crate::gen::{Elem, QueryIr, SelectItem};

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    pub ir: QueryIr,
    pub spec: DatasetSpec,
    /// Number of accepted shrink steps.
    pub steps: usize,
}

/// Candidate edits of the dataset, cheapest savings first.
fn dataset_candidates(spec: &DatasetSpec) -> Vec<DatasetSpec> {
    let mut out = Vec::new();
    if spec.times > 1 {
        let mut s = spec.clone();
        s.times = 1;
        out.push(s);
    }
    if spec.resolution > 2 {
        let mut s = spec.clone();
        s.resolution = (spec.resolution / 2).max(2);
        out.push(s);
    }
    if spec.cells > 2 {
        let mut s = spec.clone();
        s.cells = (spec.cells / 2).max(2);
        out.push(s);
    }
    if spec.grid && !spec.tables.is_empty() {
        let mut s = spec.clone();
        s.grid = false;
        out.push(s);
    }
    for i in 0..spec.tables.len() {
        if spec.tables.len() > 1 || spec.grid {
            let mut s = spec.clone();
            s.tables.remove(i);
            out.push(s);
        }
    }
    out
}

/// Candidate edits of the query. Every candidate is already sanitized.
fn query_candidates(ir: &QueryIr) -> Vec<QueryIr> {
    let mut out = Vec::new();
    let mut push = |mut candidate: QueryIr| {
        if candidate.sanitize() && candidate != *ir {
            out.push(candidate);
        }
    };

    for i in 0..ir.body.len() {
        // Remove element i outright.
        let mut c = ir.clone();
        c.body.remove(i);
        push(c);
        match &ir.body[i] {
            Elem::Optional(inner) => {
                // Unwrap: make the optional part mandatory.
                let mut c = ir.clone();
                let inner = inner.clone();
                c.body.splice(i..=i, inner);
                push(c);
            }
            Elem::Union(a, b) => {
                for branch in [a.clone(), b.clone()] {
                    let mut c = ir.clone();
                    c.body.splice(i..=i, branch);
                    push(c);
                }
            }
            Elem::Filter(cs) if cs.len() >= 2 => {
                for j in 0..cs.len() {
                    let mut c = ir.clone();
                    if let Elem::Filter(cs) = &mut c.body[i] {
                        cs.remove(j);
                    }
                    push(c);
                }
            }
            _ => {}
        }
    }

    if ir.limit.is_some() || ir.offset > 0 {
        let mut c = ir.clone();
        c.limit = None;
        c.offset = 0;
        push(c);
    }
    if ir.distinct {
        let mut c = ir.clone();
        c.distinct = false;
        push(c);
    }
    if !ir.order_by.is_empty() {
        let mut c = ir.clone();
        c.order_by.clear();
        push(c);
    }
    if ir.has_aggregates() {
        // Try the plain (non-aggregated) projection of the same body.
        let mut c = ir.clone();
        c.select.clear();
        c.group_by.clear();
        push(c);
    } else if ir.select.len() > 1 {
        for i in 0..ir.select.len() {
            let mut c = ir.clone();
            c.select.remove(i);
            push(c);
        }
    } else if !ir.select.is_empty() {
        let mut c = ir.clone();
        c.select.clear();
        push(c);
    }
    if ir.has_aggregates() && ir.select.len() > 1 {
        for i in 0..ir.select.len() {
            if matches!(ir.select[i], SelectItem::Agg { .. }) {
                let mut c = ir.clone();
                c.select.remove(i);
                push(c);
            }
        }
    }
    out
}

/// Greedily shrink `(ir, spec)` while `fails` keeps returning `true`.
///
/// `fails` receives a candidate pair and must rebuild whatever state it
/// needs (the harness rebuilds engines when the spec changed). The
/// original pair is assumed failing; the result is locally minimal under
/// the edit set, reached in at most `max_steps` accepted edits.
pub fn shrink(
    ir: &QueryIr,
    spec: &DatasetSpec,
    max_steps: usize,
    fails: &mut dyn FnMut(&QueryIr, &DatasetSpec) -> bool,
) -> Shrunk {
    let mut current = Shrunk {
        ir: ir.clone(),
        spec: spec.clone(),
        steps: 0,
    };
    loop {
        if current.steps >= max_steps {
            return current;
        }
        let mut advanced = false;
        for candidate in query_candidates(&current.ir) {
            if fails(&candidate, &current.spec) {
                current.ir = candidate;
                current.steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            for candidate in dataset_candidates(&current.spec) {
                if fails(&current.ir, &candidate) {
                    current.spec = candidate;
                    current.steps += 1;
                    advanced = true;
                    break;
                }
            }
        }
        if !advanced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Table;
    use crate::gen::{case_seed, generate};

    /// A synthetic failure: "fails whenever the body mentions lai:hasLai".
    /// The shrinker must reduce any failing case to its minimal core —
    /// a single-triple body over a grid-only dataset.
    #[test]
    fn shrinks_to_the_minimal_failing_core() {
        let spec = DatasetSpec::small(4);
        fn mentions_lai(elems: &[Elem]) -> bool {
            elems.iter().any(|e| match e {
                Elem::Triple(_, p, _) => p == "lai:hasLai",
                Elem::Optional(inner) => mentions_lai(inner),
                Elem::Union(a, b) => mentions_lai(a) || mentions_lai(b),
                _ => false,
            })
        }
        let mut fails = |ir: &QueryIr, spec: &DatasetSpec| spec.grid && mentions_lai(&ir.body);

        // Find a failing generated case first.
        let failing = (0..500)
            .map(|i| generate(case_seed(9, i), &spec))
            .find(|ir| fails(ir, &spec))
            .expect("500 cases include a lai:hasLai query");

        let shrunk = shrink(&failing, &spec, 200, &mut fails);
        assert!(fails(&shrunk.ir, &shrunk.spec), "shrunk case still fails");
        assert_eq!(
            shrunk.ir.body.len(),
            1,
            "body reduced to the one guilty triple: {:?}",
            shrunk.ir.body
        );
        assert!(shrunk.spec.tables.len() < Table::ALL.len() || shrunk.spec.cells <= 2);
        assert!(shrunk.steps > 0);
    }
}
