//! Oracle-free metamorphic checks.
//!
//! Each check derives a transformed query whose answer has a *known
//! relationship* to the original's — equality under pattern reordering and
//! FILTER-conjunct splitting, containment under LIMIT and under bbox
//! shrinking — and verifies the relationship on the hash-join pipeline.
//! No second engine is needed, so these catch bugs that all engines share
//! (e.g. a join planner that drops a pattern regardless of entry point).

use crate::canon::is_multiset_subset;
use crate::gen::{Conjunct, Elem, QueryIr, SpatialFunc};
use crate::harness::Harness;

/// Outcome of the metamorphic suite for one case: the names of the checks
/// that ran, or the first violated invariant.
pub fn check_all(h: &Harness, ir: &QueryIr) -> Result<Vec<&'static str>, String> {
    let mut ran = Vec::new();
    if let Some(v) = check_reorder(h, ir)? {
        return Err(v);
    } else if applicable_reorder(ir) {
        ran.push("reorder");
    }
    if let Some(v) = check_filter_split(h, ir)? {
        return Err(v);
    } else if applicable_filter_split(ir) {
        ran.push("filter_split");
    }
    if let Some(v) = check_limit_monotonic(h, ir)? {
        return Err(v);
    } else if ir.slice_mode() {
        ran.push("limit_monotonic");
    }
    if let Some(v) = check_bbox_shrink(h, ir)? {
        return Err(v);
    } else if bbox_target(ir).is_some() && applicable_bbox(ir) {
        ran.push("bbox_shrink");
    }
    if let Some(v) = check_adversarial_order(h, ir)? {
        return Err(v);
    } else if applicable_reorder(ir) {
        ran.push("adversarial_order");
    }
    Ok(ran)
}

fn applicable_reorder(ir: &QueryIr) -> bool {
    // A LIMIT without a total ORDER BY makes the returned slice
    // legitimately plan-dependent.
    !ir.slice_mode() && ir.body.len() > 1
}

/// Reverse contiguous runs of triples (and the conjunct order inside each
/// FILTER): a pure join-order permutation with identical semantics.
fn reordered(ir: &QueryIr) -> QueryIr {
    let mut out = ir.clone();
    let mut result: Vec<Elem> = Vec::new();
    let mut run: Vec<Elem> = Vec::new();
    for e in out.body.drain(..) {
        match e {
            Elem::Triple(..) => run.push(e),
            other => {
                run.reverse();
                result.append(&mut run);
                let other = match other {
                    Elem::Filter(mut cs) => {
                        cs.reverse();
                        Elem::Filter(cs)
                    }
                    o => o,
                };
                result.push(other);
            }
        }
    }
    run.reverse();
    result.append(&mut run);
    out.body = result;
    out
}

fn check_reorder(h: &Harness, ir: &QueryIr) -> Result<Option<String>, String> {
    if !applicable_reorder(ir) {
        return Ok(None);
    }
    let variant = reordered(ir);
    if variant == *ir {
        return Ok(None);
    }
    let a = h.eval_pipeline_seq(&ir.render());
    let b = h.eval_pipeline_seq(&variant.render());
    match (a, b) {
        (Ok(x), Ok(y)) if x == y => Ok(None),
        (Ok(_), Ok(_)) => Ok(Some(format!(
            "reorder changed the answer\noriginal: {}\nreordered: {}",
            ir.render(),
            variant.render()
        ))),
        // Evaluation errors must also be order-insensitive.
        (Err(_), Err(_)) => Ok(None),
        (a, b) => Ok(Some(format!(
            "reorder flipped success/failure: {a:?} vs {b:?}\n{}",
            ir.render()
        ))),
    }
}

fn applicable_filter_split(ir: &QueryIr) -> bool {
    !ir.slice_mode()
        && ir
            .body
            .iter()
            .any(|e| matches!(e, Elem::Filter(cs) if cs.len() >= 2))
}

/// `FILTER(a && b)` ≡ `FILTER(b) FILTER(a)` under SPARQL group semantics.
fn split_filters(ir: &QueryIr) -> QueryIr {
    let mut out = ir.clone();
    let mut body = Vec::new();
    for e in out.body.drain(..) {
        match e {
            Elem::Filter(cs) if cs.len() >= 2 => {
                for c in cs.into_iter().rev() {
                    body.push(Elem::Filter(vec![c]));
                }
            }
            other => body.push(other),
        }
    }
    out.body = body;
    out
}

fn check_filter_split(h: &Harness, ir: &QueryIr) -> Result<Option<String>, String> {
    if !applicable_filter_split(ir) {
        return Ok(None);
    }
    let variant = split_filters(ir);
    let a = h.eval_pipeline_seq(&ir.render());
    let b = h.eval_pipeline_seq(&variant.render());
    match (a, b) {
        (Ok(x), Ok(y)) if x == y => Ok(None),
        (Err(_), Err(_)) => Ok(None),
        (Ok(_), Ok(_)) | (Ok(_), Err(_)) | (Err(_), Ok(_)) => Ok(Some(format!(
            "filter-conjunct splitting changed the answer\noriginal: {}\nsplit: {}",
            ir.render(),
            variant.render()
        ))),
    }
}

/// `LIMIT n [OFFSET k]` must return exactly `min(n, full - k)` rows, all
/// of them drawn from the unlimited answer.
fn check_limit_monotonic(h: &Harness, ir: &QueryIr) -> Result<Option<String>, String> {
    if !ir.slice_mode() {
        return Ok(None);
    }
    let mut unlimited = ir.clone();
    unlimited.limit = None;
    unlimited.offset = 0;
    let (sliced, full) = match (
        h.eval_pipeline_seq(&ir.render()),
        h.eval_pipeline_seq(&unlimited.render()),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(_), Err(_)) => return Ok(None),
        (a, b) => {
            return Ok(Some(format!(
                "removing LIMIT flipped success/failure: {a:?} vs {b:?}\n{}",
                ir.render()
            )))
        }
    };
    let expected = ir
        .limit
        .unwrap_or(usize::MAX)
        .min(full.len().saturating_sub(ir.offset));
    if sliced.len() != expected {
        return Ok(Some(format!(
            "LIMIT produced {} rows, expected {expected} of {}\n{}",
            sliced.len(),
            full.len(),
            ir.render()
        )));
    }
    if !is_multiset_subset(&sliced, &full) {
        return Ok(Some(format!(
            "LIMIT slice is not a subset of the unlimited answer\n{}",
            ir.render()
        )));
    }
    Ok(None)
}

/// The first top-level spatial-box conjunct, if any.
fn bbox_target(ir: &QueryIr) -> Option<(usize, usize, SpatialFunc)> {
    for (i, e) in ir.body.iter().enumerate() {
        if let Elem::Filter(cs) = e {
            for (j, c) in cs.iter().enumerate() {
                if let Conjunct::SpatialBox { func, .. } = c {
                    return Some((i, j, *func));
                }
            }
        }
    }
    None
}

fn applicable_bbox(ir: &QueryIr) -> bool {
    // OPTIONAL makes the result non-monotone in the filter (a row removed
    // from the right side resurfaces its left row with unbound columns),
    // aggregates fold cardinality changes into values, ASK folds them
    // into one bit, and slices are plan-dependent.
    !ir.slice_mode()
        && !ir.ask
        && !ir.has_aggregates()
        && !ir.body.iter().any(|e| matches!(e, Elem::Optional(_)))
}

/// Shrink the envelope by half toward its center.
fn shrink_bbox(b: &[f64; 4]) -> [f64; 4] {
    let [x1, y1, x2, y2] = *b;
    let (cx, cy) = ((x1 + x2) / 2.0, (y1 + y2) / 2.0);
    [
        cx - (x2 - x1) / 4.0,
        cy - (y2 - y1) / 4.0,
        cx + (x2 - x1) / 4.0,
        cy + (y2 - y1) / 4.0,
    ]
}

fn check_bbox_shrink(h: &Harness, ir: &QueryIr) -> Result<Option<String>, String> {
    let Some((ei, cj, func)) = bbox_target(ir) else {
        return Ok(None);
    };
    if !applicable_bbox(ir) {
        return Ok(None);
    }
    let mut variant = ir.clone();
    if let Elem::Filter(cs) = &mut variant.body[ei] {
        if let Conjunct::SpatialBox { bbox, .. } = &mut cs[cj] {
            *bbox = shrink_bbox(bbox);
        }
    }
    let (orig, shrunk) = match (
        h.eval_pipeline_seq(&ir.render()),
        h.eval_pipeline_seq(&variant.render()),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return Ok(None),
    };
    // Strengthening one conjunct of a conjunction shrinks the pass set —
    // except for sfContains(?w, box), where a smaller box is *easier* to
    // contain, so the containment direction flips.
    let holds = match func {
        SpatialFunc::Intersects | SpatialFunc::Within => is_multiset_subset(&shrunk, &orig),
        SpatialFunc::Contains => is_multiset_subset(&orig, &shrunk),
    };
    if holds {
        Ok(None)
    } else {
        Ok(Some(format!(
            "bbox-shrink containment violated for {}: {} rows vs {} rows\noriginal: {}\nshrunk: {}",
            func.geof_name(),
            orig.len(),
            shrunk.len(),
            ir.render(),
            variant.render()
        )))
    }
}

/// Sort each contiguous triple run largest-scan-first: fewer constant
/// positions → bigger scan, with all-variable patterns leading. This is
/// the written order a cost-naive author would be punished for.
fn adversarial_order(ir: &QueryIr) -> QueryIr {
    let weight = |e: &Elem| -> usize {
        match e {
            Elem::Triple(s, p, o) => [s, p, o].iter().filter(|t| !t.starts_with('?')).count(),
            _ => 3,
        }
    };
    let mut out = ir.clone();
    let mut result: Vec<Elem> = Vec::new();
    let mut run: Vec<Elem> = Vec::new();
    for e in out.body.drain(..) {
        match e {
            Elem::Triple(..) => run.push(e),
            other => {
                run.sort_by_key(&weight);
                result.append(&mut run);
                result.push(other);
            }
        }
    }
    run.sort_by_key(&weight);
    result.append(&mut run);
    out.body = result;
    out
}

/// The planner must be written-order independent: the adversarial order
/// (largest pattern first) must produce the same plan fingerprint as the
/// original, and planned evaluation of both must return the same answer
/// as the written-order oracle.
pub fn check_adversarial_order(h: &Harness, ir: &QueryIr) -> Result<Option<String>, String> {
    if !applicable_reorder(ir) {
        return Ok(None);
    }
    let variant = adversarial_order(ir);
    if variant == *ir {
        return Ok(None);
    }
    if let Some(stats) = applab_sparql::GraphSource::stats(&h.engines.store) {
        let parse =
            |text: &str| applab_sparql::parse_query(text).map_err(|e| format!("parse: {e}"));
        let qa = parse(&ir.render())?;
        let qb = parse(&variant.render())?;
        let fa = applab_sparql::plan::query_fingerprint(stats, &qa.pattern);
        let fb = applab_sparql::plan::query_fingerprint(stats, &qb.pattern);
        if fa != fb {
            return Ok(Some(format!(
                "plan fingerprint depends on written order: {fa:016x} vs {fb:016x}\noriginal: {}\nadversarial: {}",
                ir.render(),
                variant.render()
            )));
        }
    }
    let oracle = h.eval_pipeline_seq(&ir.render());
    let a = h.eval_planned_seq(&ir.render());
    let b = h.eval_planned_seq(&variant.render());
    match (oracle, a, b) {
        (Ok(o), Ok(x), Ok(y)) if o == x && x == y => Ok(None),
        (Err(_), Err(_), Err(_)) => Ok(None),
        (o, x, y) => Ok(Some(format!(
            "planned evaluation depends on written order or diverged from the oracle\n\
             oracle: {o:?}\nplanned original: {x:?}\nplanned adversarial: {y:?}\n\
             original: {}\nadversarial: {}",
            ir.render(),
            variant.render()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::gen::{case_seed, generate};

    #[test]
    fn metamorphic_suite_holds_on_generated_cases() {
        let spec = DatasetSpec::small(2);
        let h = Harness::new(spec.clone()).unwrap();
        let mut ran = std::collections::BTreeSet::new();
        for i in 0..60 {
            let ir = generate(case_seed(2, i), &spec);
            match check_all(&h, &ir) {
                Ok(names) => ran.extend(names),
                Err(v) => panic!("case {i} violated a metamorphic invariant: {v}"),
            }
        }
        // The 60-case slice must actually exercise the transformations.
        assert!(ran.contains("reorder"), "reorder never ran: {ran:?}");
        assert!(
            ran.contains("limit_monotonic"),
            "limit_monotonic never ran: {ran:?}"
        );
        assert!(
            ran.contains("adversarial_order"),
            "adversarial_order never ran: {ran:?}"
        );
    }

    #[test]
    fn adversarial_order_puts_widest_pattern_first() {
        let ir = QueryIr {
            ask: false,
            distinct: false,
            select: Vec::new(),
            body: vec![
                Elem::Triple("?s".into(), "osm:poiType".into(), "osm:park".into()),
                Elem::Triple("?s".into(), "?p".into(), "?o".into()),
                Elem::Triple("?s".into(), "osm:hasName".into(), "?n".into()),
            ],
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: 0,
        };
        let adv = adversarial_order(&ir);
        assert_eq!(
            adv.body[0],
            Elem::Triple("?s".into(), "?p".into(), "?o".into()),
            "the all-variable pattern must lead"
        );
        assert_eq!(
            adv.body[2],
            Elem::Triple("?s".into(), "osm:poiType".into(), "osm:park".into()),
            "the most-constant pattern must trail"
        );
    }

    #[test]
    fn bbox_shrink_helper_halves_the_envelope() {
        let b = shrink_bbox(&[0.0, 0.0, 4.0, 2.0]);
        assert_eq!(b, [1.0, 0.5, 3.0, 1.5]);
    }
}
