//! Seeded generator of valid GeoSPARQL queries over the workspace
//! vocabularies.
//!
//! Queries are generated as a small intermediate representation
//! ([`QueryIr`]) rather than as text, so the shrinker and the metamorphic
//! transformations can manipulate them structurally and re-render. The
//! rendered text goes through the ordinary parser — the generator never
//! bypasses the front door of the engines under test.
//!
//! Generation is deterministic: `generate(seed, spec)` always produces the
//! same query, and [`case_seed`] derives per-case seeds from a run seed so
//! any case from an `exp_qa` run can be replayed byte-identically from the
//! printed number alone.

use crate::dataset::{DatasetSpec, Table};
use applab_rdf::datetime::format_datetime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Derive the seed of case `index` within a run seeded with `run_seed`.
///
/// SplitMix64 over the pair: adjacent indices land far apart, and the
/// mapping is stable across releases (it is part of the replay contract).
pub fn case_seed(run_seed: u64, index: u64) -> u64 {
    let mut z = run_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A GeoSPARQL spatial predicate usable in the structured conjuncts.
///
/// Only the three predicates with a known monotonicity direction under
/// bbox shrinking are structured; others appear as [`Conjunct::Raw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialFunc {
    Intersects,
    Within,
    Contains,
}

impl SpatialFunc {
    pub fn geof_name(self) -> &'static str {
        match self {
            SpatialFunc::Intersects => "sfIntersects",
            SpatialFunc::Within => "sfWithin",
            SpatialFunc::Contains => "sfContains",
        }
    }
}

/// One conjunct of a `FILTER`.
#[derive(Debug, Clone, PartialEq)]
pub enum Conjunct {
    /// Pre-rendered expression text (numeric/temporal comparisons, BOUND
    /// checks, disjunctions, ...).
    Raw(String),
    /// `geof:<func>(?var, <bbox polygon literal>)`, kept structured so the
    /// bbox-shrink metamorphic check can transform the envelope.
    SpatialBox {
        func: SpatialFunc,
        var: String,
        bbox: [f64; 4],
    },
    /// `geof:<func>(?a, ?b)` — a spatial join between two geometry vars.
    SpatialJoin {
        func: SpatialFunc,
        a: String,
        b: String,
    },
    /// `geof:distance(?var, POINT(x y)) < d`.
    DistanceWithin { var: String, x: f64, y: f64, d: f64 },
}

/// Render a WKT polygon literal for an envelope.
pub fn bbox_wkt(b: &[f64; 4]) -> String {
    let [x1, y1, x2, y2] = *b;
    format!("\"POLYGON (({x1} {y1}, {x2} {y1}, {x2} {y2}, {x1} {y2}, {x1} {y1}))\"^^geo:wktLiteral")
}

impl Conjunct {
    pub fn render(&self) -> String {
        match self {
            Conjunct::Raw(s) => s.clone(),
            Conjunct::SpatialBox { func, var, bbox } => {
                format!("geof:{}({var}, {})", func.geof_name(), bbox_wkt(bbox))
            }
            Conjunct::SpatialJoin { func, a, b } => {
                format!("geof:{}({a}, {b})", func.geof_name())
            }
            Conjunct::DistanceWithin { var, x, y, d } => {
                format!("geof:distance({var}, \"POINT ({x} {y})\"^^geo:wktLiteral) < {d}")
            }
        }
    }

    /// Variables mentioned by the conjunct (with their `?`).
    fn vars(&self) -> Vec<String> {
        match self {
            Conjunct::Raw(s) => raw_vars(s),
            Conjunct::SpatialBox { var, .. } | Conjunct::DistanceWithin { var, .. } => {
                vec![var.clone()]
            }
            Conjunct::SpatialJoin { a, b, .. } => vec![a.clone(), b.clone()],
        }
    }
}

/// Extract `?var` tokens from rendered expression text.
fn raw_vars(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'?' {
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            if i > start + 1 {
                out.push(s[start..i].to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// One element of a group graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Elem {
    /// `s p o .` — positions are rendered term strings; variables carry
    /// their leading `?`.
    Triple(String, String, String),
    /// `FILTER(c1 && c2 && ...)`.
    Filter(Vec<Conjunct>),
    /// `OPTIONAL { ... }`.
    Optional(Vec<Elem>),
    /// `{ ... } UNION { ... }`.
    Union(Vec<Elem>, Vec<Elem>),
    /// `BIND(expr AS ?var)`.
    Bind(String, String),
    /// `VALUES ?var { t1 t2 ... }`.
    Values(String, Vec<String>),
}

impl Elem {
    pub fn render(&self) -> String {
        match self {
            Elem::Triple(s, p, o) => format!("{s} {p} {o} ."),
            Elem::Filter(cs) => {
                let body: Vec<String> = cs.iter().map(Conjunct::render).collect();
                format!("FILTER({})", body.join(" && "))
            }
            Elem::Optional(inner) => format!("OPTIONAL {{ {} }}", render_elems(inner)),
            Elem::Union(a, b) => {
                format!("{{ {} }} UNION {{ {} }}", render_elems(a), render_elems(b))
            }
            Elem::Bind(expr, var) => format!("BIND({expr} AS {var})"),
            Elem::Values(var, terms) => format!("VALUES {var} {{ {} }}", terms.join(" ")),
        }
    }

    fn collect_bound(&self, out: &mut BTreeSet<String>) {
        match self {
            Elem::Triple(s, p, o) => {
                for t in [s, p, o] {
                    if t.starts_with('?') {
                        out.insert(t.clone());
                    }
                }
            }
            Elem::Filter(_) => {}
            Elem::Optional(inner) => {
                for e in inner {
                    e.collect_bound(out);
                }
            }
            Elem::Union(a, b) => {
                for e in a.iter().chain(b) {
                    e.collect_bound(out);
                }
            }
            Elem::Bind(_, var) | Elem::Values(var, _) => {
                out.insert(var.clone());
            }
        }
    }
}

fn render_elems(elems: &[Elem]) -> String {
    let parts: Vec<String> = elems.iter().map(Elem::render).collect();
    parts.join(" ")
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `?v`.
    Var(String),
    /// `(FUNC(?v) AS ?alias)`; `var: None` renders `COUNT(*)`.
    Agg {
        func: &'static str,
        var: Option<String>,
        alias: String,
    },
}

impl SelectItem {
    fn render(&self) -> String {
        match self {
            SelectItem::Var(v) => v.clone(),
            SelectItem::Agg { func, var, alias } => match var {
                Some(v) => format!("({func}({v}) AS {alias})"),
                None => format!("(COUNT(*) AS {alias})"),
            },
        }
    }

    fn is_agg(&self) -> bool {
        matches!(self, SelectItem::Agg { .. })
    }
}

/// The structured query the generator produces and the shrinker consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryIr {
    pub ask: bool,
    pub distinct: bool,
    /// Empty means `SELECT *`.
    pub select: Vec<SelectItem>,
    pub body: Vec<Elem>,
    pub group_by: Vec<String>,
    /// `(variable, descending)` pairs.
    pub order_by: Vec<(String, bool)>,
    pub limit: Option<usize>,
    pub offset: usize,
}

impl QueryIr {
    /// Render to SPARQL text (single line, deterministic).
    pub fn render(&self) -> String {
        let mut s = String::new();
        if self.ask {
            s.push_str("ASK WHERE { ");
        } else {
            s.push_str("SELECT ");
            if self.distinct {
                s.push_str("DISTINCT ");
            }
            if self.select.is_empty() {
                s.push_str("* ");
            } else {
                for item in &self.select {
                    s.push_str(&item.render());
                    s.push(' ');
                }
            }
            s.push_str("WHERE { ");
        }
        s.push_str(&render_elems(&self.body));
        s.push_str(" }");
        if !self.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            s.push_str(&self.group_by.join(" "));
        }
        if !self.order_by.is_empty() {
            s.push_str(" ORDER BY");
            for (v, desc) in &self.order_by {
                if *desc {
                    s.push_str(&format!(" DESC({v})"));
                } else {
                    s.push_str(&format!(" {v}"));
                }
            }
        }
        if let Some(l) = self.limit {
            s.push_str(&format!(" LIMIT {l}"));
        }
        if self.offset > 0 {
            s.push_str(&format!(" OFFSET {}", self.offset));
        }
        s
    }

    /// Variables bound anywhere in the body (OPTIONAL and UNION branches
    /// included, so possibly-unbound variables are still "in scope").
    pub fn bound_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for e in &self.body {
            e.collect_bound(&mut out);
        }
        out
    }

    /// Whether the result comparison must run in slice mode (LIMIT/OFFSET
    /// make any row subset of the right cardinality a legal answer).
    pub fn slice_mode(&self) -> bool {
        self.limit.is_some() || self.offset > 0
    }

    pub fn has_aggregates(&self) -> bool {
        self.select.iter().any(SelectItem::is_agg)
    }

    /// Re-establish the structural invariants after generation or after a
    /// shrinking edit: projections and ORDER BY keys reference bound
    /// variables, plain projections are grouped when aggregating, ASK
    /// carries no solution modifiers. Returns `false` when the query can
    /// not be repaired into something meaningful (empty body).
    pub fn sanitize(&mut self) -> bool {
        if self.body.is_empty() {
            return false;
        }
        let bound = self.bound_vars();
        if self.ask {
            self.select.clear();
            self.group_by.clear();
            self.order_by.clear();
            self.limit = None;
            self.offset = 0;
            self.distinct = false;
            return true;
        }
        self.select.retain(|item| match item {
            SelectItem::Var(v) => bound.contains(v),
            SelectItem::Agg { var, .. } => var.as_ref().is_none_or(|v| bound.contains(v)),
        });
        // Dedup projections by output name.
        let mut seen = BTreeSet::new();
        self.select.retain(|item| {
            let name = match item {
                SelectItem::Var(v) => v.clone(),
                SelectItem::Agg { alias, .. } => alias.clone(),
            };
            seen.insert(name)
        });
        if self.has_aggregates() {
            self.group_by.retain(|v| bound.contains(v));
            let grouped: BTreeSet<&String> = self.group_by.iter().collect();
            self.select.retain(|item| match item {
                SelectItem::Var(v) => grouped.contains(v),
                SelectItem::Agg { .. } => true,
            });
        } else {
            self.group_by.clear();
        }
        // ORDER BY keys must be visible in the solution.
        let allowed: BTreeSet<String> = if self.has_aggregates() {
            self.select
                .iter()
                .map(|i| match i {
                    SelectItem::Var(v) => v.clone(),
                    SelectItem::Agg { alias, .. } => alias.clone(),
                })
                .collect()
        } else if self.select.is_empty() {
            bound.clone()
        } else {
            self.select
                .iter()
                .map(|i| match i {
                    SelectItem::Var(v) => v.clone(),
                    SelectItem::Agg { alias, .. } => alias.clone(),
                })
                .collect()
        };
        let mut seen_keys = BTreeSet::new();
        self.order_by
            .retain(|(v, _)| allowed.contains(v) && seen_keys.insert(v.clone()));
        true
    }

    /// Algebra-surface features exercised by the query, for the coverage
    /// report of `exp_qa`.
    pub fn features(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut push = |f: &'static str| {
            if !out.contains(&f) {
                out.push(f);
            }
        };
        if self.ask {
            push("ask");
        }
        if self.distinct {
            push("distinct");
        }
        if self.has_aggregates() {
            push("aggregate");
        }
        if !self.group_by.is_empty() {
            push("group_by");
        }
        if !self.order_by.is_empty() {
            push("order_by");
        }
        if self.limit.is_some() {
            push("limit");
        }
        if self.offset > 0 {
            push("offset");
        }
        // Batch-boundary coverage, measured against the batch windows the
        // harness forces on the pipeline engines. A slice cut (OFFSET, or
        // OFFSET+LIMIT) that is not a multiple of a window lands strictly
        // inside a batch, so the slice must split a batch rather than drop
        // whole ones.
        if self.slice_mode() {
            let cuts = [Some(self.offset), self.limit.map(|l| self.offset + l)];
            let straddles = |cut: usize| {
                cut > 0
                    && crate::harness::HARNESS_BATCH_WINDOWS
                        .iter()
                        .any(|w| !cut.is_multiple_of(*w))
            };
            if cuts.iter().flatten().any(|&c| straddles(c)) {
                push("limit_offset_batch_straddle");
            }
        }
        // Grouped aggregation over a join fan-out: members of one group
        // arrive interleaved across scan order, so with the harness's tiny
        // windows group state must survive batch edges.
        if !self.group_by.is_empty()
            && self
                .body
                .iter()
                .filter(|e| !matches!(e, Elem::Filter(_)))
                .count()
                >= 2
        {
            push("group_spans_batches");
        }
        let optional_vars = {
            let mut inner = BTreeSet::new();
            for e in &self.body {
                if let Elem::Optional(body) = e {
                    for b in body {
                        b.collect_bound(&mut inner);
                    }
                }
            }
            inner
        };
        fn walk(
            elems: &[Elem],
            optional_vars: &BTreeSet<String>,
            push: &mut dyn FnMut(&'static str),
        ) {
            for e in elems {
                match e {
                    Elem::Triple(..) => push("bgp"),
                    Elem::Filter(cs) => {
                        for c in cs {
                            match c {
                                Conjunct::Raw(s) => {
                                    if s.contains("BOUND") {
                                        push("filter_bound");
                                    } else if s.contains("xsd:dateTime") {
                                        push("filter_temporal");
                                    } else {
                                        push("filter_value");
                                    }
                                    if c.vars().iter().any(|v| optional_vars.contains(v)) {
                                        push("filter_on_optional_var");
                                    }
                                }
                                Conjunct::SpatialBox { .. } => push("filter_spatial_box"),
                                Conjunct::SpatialJoin { .. } => push("spatial_join"),
                                Conjunct::DistanceWithin { .. } => push("filter_distance"),
                            }
                        }
                    }
                    Elem::Optional(inner) => {
                        push("optional");
                        if inner.iter().any(|i| matches!(i, Elem::Filter(_))) {
                            push("optional_inner_filter");
                        }
                        walk(inner, optional_vars, push);
                    }
                    Elem::Union(a, b) => {
                        push("union");
                        walk(a, optional_vars, push);
                        walk(b, optional_vars, push);
                    }
                    Elem::Bind(..) => push("bind"),
                    Elem::Values(..) => push("values"),
                }
            }
        }
        walk(&self.body, &optional_vars, &mut push);
        out
    }
}

// ---------------------------------------------------------------------
// Generation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntityKind {
    Corine,
    UrbanAtlas,
    Osm,
    Gadm,
    Lai,
}

/// Per-entity context accumulated while emitting its triples.
struct EntityCtx {
    subj: String,
    wkt: Option<String>,
    /// `(var, kind)` numeric object variables; kind selects the constant
    /// range for comparisons.
    numeric: Vec<(String, NumKind)>,
    time: Option<String>,
    strs: Vec<(String, &'static str)>,
    /// Low-cardinality variables suitable for GROUP BY.
    group_candidates: Vec<String>,
    /// Variables bound only inside an OPTIONAL.
    optional_vars: Vec<String>,
    kind: EntityKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NumKind {
    ClcCode,
    Population,
    Level,
    Lai,
    Area,
}

fn round4(v: f64) -> f64 {
    (v * 1e4).round() / 1e4
}

fn num_constant(rng: &mut StdRng, kind: NumKind) -> String {
    match kind {
        NumKind::ClcCode => format!(
            "{}",
            [112, 121, 141, 211, 311, 512][rng.gen_range(0usize..6)]
        ),
        NumKind::Population => format!("{}", rng.gen_range(0i64..9000)),
        NumKind::Level => format!("{}", rng.gen_range(1i64..=2)),
        NumKind::Lai => format!("{}", round4(rng.gen_range(0.0f64..5.5))),
        NumKind::Area => format!("{}", round4(rng.gen_range(0.0001f64..0.02))),
    }
}

fn cmp_op(rng: &mut StdRng) -> &'static str {
    ["<", "<=", ">", ">=", "=", "!="][rng.gen_range(0usize..6)]
}

fn gen_bbox(rng: &mut StdRng) -> [f64; 4] {
    // Sub-envelopes of (and slightly beyond) the Paris extent
    // (2.0, 48.7)..(2.6, 49.0).
    let x1 = round4(rng.gen_range(1.95f64..2.5));
    let y1 = round4(rng.gen_range(48.65f64..48.95));
    let mut x2 = round4(x1 + rng.gen_range(0.04f64..0.5));
    let mut y2 = round4(y1 + rng.gen_range(0.04f64..0.3));
    if x2 <= x1 {
        x2 = x1 + 0.05;
    }
    if y2 <= y1 {
        y2 = y1 + 0.05;
    }
    [x1, y1, x2, y2]
}

fn entity_kinds(spec: &DatasetSpec) -> Vec<EntityKind> {
    let mut kinds = Vec::new();
    for t in &spec.tables {
        kinds.push(match t {
            Table::Corine => EntityKind::Corine,
            Table::UrbanAtlas => EntityKind::UrbanAtlas,
            Table::Osm => EntityKind::Osm,
            Table::Gadm => EntityKind::Gadm,
        });
    }
    if spec.grid {
        kinds.push(EntityKind::Lai);
    }
    kinds
}

fn gen_entity(rng: &mut StdRng, i: usize, kind: EntityKind, body: &mut Vec<Elem>) -> EntityCtx {
    let subj = format!("?s{i}");
    let mut ctx = EntityCtx {
        subj: subj.clone(),
        wkt: None,
        numeric: Vec::new(),
        time: None,
        strs: Vec::new(),
        group_candidates: Vec::new(),
        optional_vars: Vec::new(),
        kind,
    };
    let class = match kind {
        EntityKind::Corine => "clc:CorineArea",
        EntityKind::UrbanAtlas => "ua:UrbanAtlasArea",
        EntityKind::Osm => "osm:PointOfInterest",
        EntityKind::Gadm => "gadm:AdministrativeUnit",
        EntityKind::Lai => "lai:Observation",
    };
    let with_class = rng.gen_bool(0.85);
    if with_class {
        body.push(Elem::Triple(subj.clone(), "a".into(), class.into()));
    }

    // Property triples; each may be wrapped in OPTIONAL.
    let mut props: Vec<Elem> = Vec::new();
    let prop = |p: &str, o: String| Elem::Triple(subj.clone(), p.into(), o);
    match kind {
        EntityKind::Corine => {
            if rng.gen_bool(0.6) || !with_class {
                let v = format!("?code{i}");
                props.push(prop("clc:hasCode", v.clone()));
                ctx.numeric.push((v.clone(), NumKind::ClcCode));
                ctx.group_candidates.push(v);
            }
            if rng.gen_bool(0.35) {
                let v = format!("?cls{i}");
                props.push(prop("clc:hasCorineValue", v.clone()));
                ctx.group_candidates.push(v);
            }
        }
        EntityKind::UrbanAtlas => {
            if rng.gen_bool(0.7) || !with_class {
                let v = format!("?pop{i}");
                props.push(prop("ua:hasPopulation", v.clone()));
                ctx.numeric.push((v, NumKind::Population));
            }
            if rng.gen_bool(0.3) {
                let v = format!("?cls{i}");
                props.push(prop("ua:hasClass", v.clone()));
                ctx.group_candidates.push(v);
            }
        }
        EntityKind::Osm => {
            if rng.gen_bool(0.75) || !with_class {
                if rng.gen_bool(0.45) {
                    let kinds = ["osm:park", "osm:forest", "osm:industrial"];
                    props.push(prop("osm:poiType", kinds[rng.gen_range(0usize..3)].into()));
                } else {
                    let v = format!("?kind{i}");
                    props.push(prop("osm:poiType", v.clone()));
                    ctx.group_candidates.push(v);
                }
            }
            if rng.gen_bool(0.4) {
                let v = format!("?name{i}");
                props.push(prop("osm:hasName", v.clone()));
                ctx.strs.push((v, "name"));
            }
        }
        EntityKind::Gadm => {
            if rng.gen_bool(0.6) || !with_class {
                let v = format!("?lvl{i}");
                props.push(prop("gadm:hasLevel", v.clone()));
                ctx.numeric.push((v.clone(), NumKind::Level));
                ctx.group_candidates.push(v);
            }
            if rng.gen_bool(0.3) {
                let v = format!("?name{i}");
                props.push(prop("gadm:hasName", v.clone()));
                ctx.strs.push((v, "name"));
            }
            if rng.gen_bool(0.25) {
                let v = format!("?country{i}");
                props.push(prop("gadm:hasCountry", v.clone()));
                ctx.strs.push((v, "country"));
            }
        }
        EntityKind::Lai => {
            if rng.gen_bool(0.85) || !with_class {
                let v = format!("?lai{i}");
                props.push(prop("lai:hasLai", v.clone()));
                ctx.numeric.push((v, NumKind::Lai));
            }
            if rng.gen_bool(0.5) {
                let v = format!("?t{i}");
                props.push(prop("time:hasTime", v.clone()));
                ctx.time = Some(v);
            }
        }
    }

    // Maybe wrap the last property triple in an OPTIONAL, sometimes with a
    // filter scoped inside it.
    if !props.is_empty() && rng.gen_bool(0.3) {
        let wrapped = props.pop().unwrap();
        let mut inner = vec![wrapped.clone()];
        if let Elem::Triple(_, _, o) = &wrapped {
            if o.starts_with('?') {
                ctx.optional_vars.push(o.clone());
                let numeric = ctx.numeric.iter().find(|(v, _)| v == o).map(|(_, k)| *k);
                if let (Some(k), true) = (numeric, rng.gen_bool(0.35)) {
                    let c = num_constant(rng, k);
                    inner.push(Elem::Filter(vec![Conjunct::Raw(format!(
                        "{o} {} {c}",
                        cmp_op(rng)
                    ))]));
                }
            }
        }
        body.append(&mut props);
        body.push(Elem::Optional(inner));
    } else {
        body.append(&mut props);
    }

    // Geometry chain.
    if rng.gen_bool(0.75) {
        let g = format!("?g{i}");
        let w = format!("?w{i}");
        body.push(Elem::Triple(
            subj.clone(),
            "geo:hasGeometry".into(),
            g.clone(),
        ));
        body.push(Elem::Triple(g, "geo:asWKT".into(), w.clone()));
        ctx.wkt = Some(w);
    }
    ctx
}

/// Generate the query for one case seed over the vocabularies present in
/// `spec`. Deterministic in `(seed, spec)`.
pub fn generate(seed: u64, spec: &DatasetSpec) -> QueryIr {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = entity_kinds(spec);
    assert!(!kinds.is_empty(), "dataset spec exposes no vocabulary");

    let n_entities = if kinds.len() > 1 && rng.gen_bool(0.35) {
        2
    } else {
        1
    };
    let mut body: Vec<Elem> = Vec::new();
    let mut entities = Vec::new();
    for i in 0..n_entities {
        let kind = kinds[rng.gen_range(0usize..kinds.len())];
        entities.push(gen_entity(&mut rng, i, kind, &mut body));
    }

    // UNION over a low-cardinality property of entity 0.
    let e0_kind = entities[0].kind;
    if rng.gen_bool(0.2) {
        let s0 = entities[0].subj.clone();
        let branches: Option<(Elem, Elem)> = match e0_kind {
            EntityKind::Osm => Some((
                Elem::Triple(s0.clone(), "osm:poiType".into(), "osm:park".into()),
                Elem::Triple(s0, "osm:poiType".into(), "osm:forest".into()),
            )),
            EntityKind::Corine => Some((
                Elem::Triple(s0.clone(), "clc:hasCode".into(), "141".into()),
                Elem::Triple(s0, "clc:hasCode".into(), "311".into()),
            )),
            EntityKind::Gadm => Some((
                Elem::Triple(s0.clone(), "gadm:hasLevel".into(), "1".into()),
                Elem::Triple(s0, "gadm:hasLevel".into(), "2".into()),
            )),
            _ => None,
        };
        if let Some((l, r)) = branches {
            body.push(Elem::Union(vec![l], vec![r]));
        }
    }

    // VALUES over OSM poi kinds.
    if e0_kind == EntityKind::Osm && rng.gen_bool(0.25) {
        let v = "?vk0".to_string();
        body.push(Elem::Triple(
            entities[0].subj.clone(),
            "osm:poiType".into(),
            v.clone(),
        ));
        body.push(Elem::Values(
            v.clone(),
            vec!["osm:park".into(), "osm:forest".into()],
        ));
        entities[0].group_candidates.push(v);
    }

    // BIND on a geometry (area) or a numeric variable.
    let mut bind_var: Option<(String, NumKind)> = None;
    if rng.gen_bool(0.2) {
        if let Some(w) = entities.iter().find_map(|e| e.wkt.clone()) {
            let v = "?b0".to_string();
            body.push(Elem::Bind(format!("geof:area({w})"), v.clone()));
            bind_var = Some((v, NumKind::Area));
        } else if let Some((nv, k)) = entities.iter().find_map(|e| e.numeric.first().cloned()) {
            let v = "?b0".to_string();
            body.push(Elem::Bind(format!("{nv} + 100"), v.clone()));
            bind_var = Some((v, k));
        }
    }

    // Filters.
    let mut conjuncts: Vec<Conjunct> = Vec::new();
    let all_numeric: Vec<(String, NumKind)> = entities
        .iter()
        .flat_map(|e| e.numeric.iter().cloned())
        .chain(bind_var.clone())
        .collect();
    for (v, k) in &all_numeric {
        if conjuncts.len() < 3 && rng.gen_bool(0.4) {
            let op = cmp_op(&mut rng);
            let c = num_constant(&mut rng, *k);
            if rng.gen_bool(0.15) {
                // A disjunction with a second numeric constraint.
                let c2 = num_constant(&mut rng, *k);
                conjuncts.push(Conjunct::Raw(format!(
                    "({v} {op} {c} || {v} {} {c2})",
                    cmp_op(&mut rng)
                )));
            } else {
                conjuncts.push(Conjunct::Raw(format!("{v} {op} {c}")));
            }
        }
    }
    for e in &entities {
        if let Some(w) = &e.wkt {
            if conjuncts.len() < 4 && rng.gen_bool(0.5) {
                let func = match rng.gen_range(0u32..5) {
                    0..=2 => SpatialFunc::Intersects,
                    3 => SpatialFunc::Within,
                    _ => SpatialFunc::Contains,
                };
                conjuncts.push(Conjunct::SpatialBox {
                    func,
                    var: w.clone(),
                    bbox: gen_bbox(&mut rng),
                });
            } else if rng.gen_bool(0.12) {
                conjuncts.push(Conjunct::DistanceWithin {
                    var: w.clone(),
                    x: round4(rng.gen_range(2.0f64..2.6)),
                    y: round4(rng.gen_range(48.7f64..49.0)),
                    d: round4(rng.gen_range(0.02f64..0.35)),
                });
            }
        }
        if let Some(t) = &e.time {
            if rng.gen_bool(0.5) {
                let month = rng.gen_range(1u64..=6);
                let ts = applab_array::time::days_from_civil(2017, month as u32, 1) * 86_400;
                let op = [">", ">=", "<", "<="][rng.gen_range(0usize..4)];
                conjuncts.push(Conjunct::Raw(format!(
                    "{t} {op} \"{}\"^^xsd:dateTime",
                    format_datetime(ts)
                )));
            }
        }
        if let Some((sv, which)) = e.strs.first() {
            if rng.gen_bool(0.2) {
                let val = if *which == "country" { "FRA" } else { "Zone 3" };
                let op = if rng.gen_bool(0.7) { "=" } else { "!=" };
                conjuncts.push(Conjunct::Raw(format!("{sv} {op} \"{val}\"")));
            }
        }
    }
    // Spatial join between two entities.
    if entities.len() == 2 {
        if let (Some(a), Some(b)) = (entities[0].wkt.clone(), entities[1].wkt.clone()) {
            if rng.gen_bool(0.65) {
                let func = if rng.gen_bool(0.75) {
                    SpatialFunc::Intersects
                } else {
                    SpatialFunc::Within
                };
                conjuncts.push(Conjunct::SpatialJoin { func, a, b });
            }
        }
    }
    // Filters over possibly-unbound OPTIONAL variables: BOUND checks and
    // bare comparisons (the error-to-false path).
    let optional_vars: Vec<String> = entities
        .iter()
        .flat_map(|e| e.optional_vars.iter().cloned())
        .collect();
    if let Some(ov) = optional_vars.first() {
        if rng.gen_bool(0.35) {
            if rng.gen_bool(0.5) {
                conjuncts.push(Conjunct::Raw(format!("BOUND({ov})")));
            } else {
                conjuncts.push(Conjunct::Raw(format!("!BOUND({ov})")));
            }
        } else if rng.gen_bool(0.3) {
            let k = entities
                .iter()
                .flat_map(|e| e.numeric.iter())
                .find(|(v, _)| v == ov)
                .map(|(_, k)| *k);
            if let Some(k) = k {
                let c = num_constant(&mut rng, k);
                conjuncts.push(Conjunct::Raw(format!("{ov} {} {c}", cmp_op(&mut rng))));
            }
        }
    }

    if !conjuncts.is_empty() {
        if conjuncts.len() >= 2 && rng.gen_bool(0.5) {
            // Split into two FILTER elements.
            let tail = conjuncts.split_off(conjuncts.len() / 2);
            body.push(Elem::Filter(conjuncts));
            body.push(Elem::Filter(tail));
        } else {
            body.push(Elem::Filter(conjuncts));
        }
    }

    // Projection.
    let mut ir = QueryIr {
        ask: false,
        distinct: false,
        select: Vec::new(),
        body,
        group_by: Vec::new(),
        order_by: Vec::new(),
        limit: None,
        offset: 0,
    };
    let bound: Vec<String> = ir.bound_vars().into_iter().collect();

    if rng.gen_bool(0.08) {
        ir.ask = true;
        ir.sanitize();
        return ir;
    }

    let group_candidates: Vec<String> = entities
        .iter()
        .flat_map(|e| e.group_candidates.iter().cloned())
        .collect();
    if rng.gen_bool(0.25) {
        // Aggregate projection.
        if !group_candidates.is_empty() && rng.gen_bool(0.7) {
            let g = group_candidates[rng.gen_range(0usize..group_candidates.len())].clone();
            ir.group_by.push(g.clone());
            ir.select.push(SelectItem::Var(g));
        }
        let n_aggs = rng.gen_range(1usize..=2);
        for alias in 0..n_aggs {
            let func_pick = rng.gen_range(0u32..6);
            let item = match func_pick {
                0 => SelectItem::Agg {
                    func: "COUNT",
                    var: None,
                    alias: format!("?agg{alias}"),
                },
                1 => SelectItem::Agg {
                    func: "COUNT",
                    var: Some(bound[rng.gen_range(0usize..bound.len())].clone()),
                    alias: format!("?agg{alias}"),
                },
                2 | 3 => {
                    if let Some((v, _)) = all_numeric.first() {
                        SelectItem::Agg {
                            func: if func_pick == 2 { "SUM" } else { "AVG" },
                            var: Some(v.clone()),
                            alias: format!("?agg{alias}"),
                        }
                    } else {
                        SelectItem::Agg {
                            func: "COUNT",
                            var: None,
                            alias: format!("?agg{alias}"),
                        }
                    }
                }
                _ => {
                    let v = bound[rng.gen_range(0usize..bound.len())].clone();
                    SelectItem::Agg {
                        func: if func_pick == 4 { "MIN" } else { "MAX" },
                        var: Some(v),
                        alias: format!("?agg{alias}"),
                    }
                }
            };
            ir.select.push(item);
        }
    } else if rng.gen_bool(0.6) && !bound.is_empty() {
        // Explicit projection of a subset of the bound variables.
        let n = rng.gen_range(1usize..=bound.len().min(4));
        let mut picked = BTreeSet::new();
        for _ in 0..n {
            picked.insert(bound[rng.gen_range(0usize..bound.len())].clone());
        }
        ir.select = picked.into_iter().map(SelectItem::Var).collect();
        ir.distinct = rng.gen_bool(0.25);
    } else {
        // SELECT *.
        ir.distinct = rng.gen_bool(0.15);
    }

    // Solution modifiers.
    if rng.gen_bool(0.3) {
        let candidates: Vec<String> = if ir.has_aggregates() {
            ir.select
                .iter()
                .map(|i| match i {
                    SelectItem::Var(v) => v.clone(),
                    SelectItem::Agg { alias, .. } => alias.clone(),
                })
                .collect()
        } else if ir.select.is_empty() {
            bound.clone()
        } else {
            ir.select
                .iter()
                .map(|i| match i {
                    SelectItem::Var(v) => v.clone(),
                    SelectItem::Agg { alias, .. } => alias.clone(),
                })
                .collect()
        };
        if !candidates.is_empty() {
            let n = rng.gen_range(1usize..=candidates.len().min(2));
            for _ in 0..n {
                let v = candidates[rng.gen_range(0usize..candidates.len())].clone();
                let desc = rng.gen_bool(0.4);
                ir.order_by.push((v, desc));
            }
        }
    }
    if rng.gen_bool(0.3) {
        ir.limit = Some(rng.gen_range(1usize..=15));
        if rng.gen_bool(0.25) {
            ir.offset = rng.gen_range(1usize..=4);
        }
    }

    ir.sanitize();
    ir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec::small(1)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for i in 0..50 {
            let s = case_seed(7, i);
            let a = generate(s, &spec());
            let b = generate(s, &spec());
            assert_eq!(a, b);
            assert_eq!(a.render(), b.render());
        }
    }

    #[test]
    fn case_seeds_spread() {
        let mut seen = std::collections::HashSet::new();
        for run in 1..=3u64 {
            for i in 0..1000 {
                assert!(seen.insert(case_seed(run, i)), "collision at {run}/{i}");
            }
        }
    }

    #[test]
    fn every_generated_query_parses() {
        let spec = spec();
        for i in 0..300 {
            let ir = generate(case_seed(1, i), &spec);
            let text = ir.render();
            applab_sparql::parse_query(&text)
                .unwrap_or_else(|e| panic!("case {i} failed to parse: {e}\n{text}"));
        }
    }

    #[test]
    fn surface_coverage_is_broad() {
        let spec = spec();
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        for i in 0..500 {
            seen.extend(generate(case_seed(1, i), &spec).features());
        }
        for must in [
            "bgp",
            "optional",
            "union",
            "bind",
            "values",
            "filter_value",
            "filter_spatial_box",
            "filter_temporal",
            "spatial_join",
            "aggregate",
            "group_by",
            "order_by",
            "limit",
            "offset",
            "distinct",
            "ask",
            "optional_inner_filter",
            "limit_offset_batch_straddle",
            "group_spans_batches",
        ] {
            assert!(
                seen.contains(must),
                "500 cases never produced {must}: {seen:?}"
            );
        }
    }

    #[test]
    fn sanitize_rejects_empty_bodies_and_strips_ask_modifiers() {
        let mut empty = QueryIr {
            ask: false,
            distinct: false,
            select: vec![],
            body: vec![],
            group_by: vec![],
            order_by: vec![],
            limit: None,
            offset: 0,
        };
        assert!(!empty.sanitize());
        let mut ask = QueryIr {
            ask: true,
            distinct: true,
            select: vec![SelectItem::Var("?x".into())],
            body: vec![Elem::Triple(
                "?x".into(),
                "a".into(),
                "clc:CorineArea".into(),
            )],
            group_by: vec![],
            order_by: vec![("?x".into(), false)],
            limit: Some(3),
            offset: 1,
        };
        assert!(ask.sanitize());
        assert_eq!(ask.render(), "ASK WHERE { ?x a clc:CorineArea . }");
    }
}
