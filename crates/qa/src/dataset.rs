//! Deterministic synthetic datasets loadable into *both* workflows.
//!
//! A [`DatasetSpec`] is a tiny, shrinkable description of a world: which
//! vector tables exist, how fine the zone grid is, and whether an
//! OPeNDAP-published LAI product rides along. [`DatasetSpec::build`]
//! produces the two engines under test over byte-identical data: the
//! virtual workflow (Ontop-style OBDA over tables + DAP), and a
//! [`SpatioTemporalStore`] loaded from that same workflow's
//! materialization — so any cross-engine disagreement is evaluator
//! behavior, never data skew.

use applab_core::{VirtualWorkflow, VirtualWorkflowBuilder};
use applab_dap::clock::Clock;
use applab_dap::transport::Transport;
use applab_data::paris::paris_extent;
use applab_data::{grids, mappings, World};
use applab_store::SpatioTemporalStore;
use std::sync::Arc;
use std::time::Duration;

/// A vector table of the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Table {
    Osm,
    Gadm,
    Corine,
    UrbanAtlas,
}

impl Table {
    pub const ALL: [Table; 4] = [Table::Osm, Table::Gadm, Table::Corine, Table::UrbanAtlas];

    pub fn key(self) -> &'static str {
        match self {
            Table::Osm => "osm",
            Table::Gadm => "gadm",
            Table::Corine => "corine",
            Table::UrbanAtlas => "urban_atlas",
        }
    }

    pub fn from_key(key: &str) -> Option<Table> {
        Table::ALL.into_iter().find(|t| t.key() == key)
    }
}

/// A shrinkable description of one synthetic dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// World / grid noise seed.
    pub seed: u64,
    /// Zone grid cells per axis (`World::generate`).
    pub cells: usize,
    /// LAI raster resolution (cells per axis).
    pub resolution: usize,
    /// Number of monthly timestamps (Jan 2017 onward).
    pub times: usize,
    /// Which vector tables are loaded.
    pub tables: Vec<Table>,
    /// Whether the LAI product is published over OPeNDAP.
    pub grid: bool,
}

impl DatasetSpec {
    /// The default harness dataset: every vocabulary present, small enough
    /// that a four-engine differential case runs in milliseconds.
    pub fn small(seed: u64) -> DatasetSpec {
        DatasetSpec {
            seed,
            cells: 5,
            resolution: 5,
            times: 2,
            tables: Table::ALL.to_vec(),
            grid: true,
        }
    }

    /// Epoch-second timestamps of the grid samples (15th of each month).
    pub fn grid_times(&self) -> Vec<i64> {
        let mut all = grids::GridSpec::monthly_2017(self.resolution, self.seed).times;
        all.truncate(self.times.max(1));
        all
    }

    pub fn world(&self) -> World {
        World::generate(self.seed, paris_extent(), self.cells)
    }

    /// A [`VirtualWorkflowBuilder`] loaded with this dataset, on an
    /// explicit transport and clock. The caller may still tweak resilience
    /// and staleness settings before sealing — the chaos smoke does.
    pub fn virtual_builder(
        &self,
        transport: Arc<dyn Transport>,
        clock: Arc<dyn Clock>,
    ) -> VirtualWorkflowBuilder {
        let world = self.world();
        let mut b = VirtualWorkflowBuilder::with_transport_and_clock(transport, clock);
        for table in &self.tables {
            let (source, doc) = match table {
                Table::Osm => (world.osm_table(), mappings::OSM_MAPPING),
                Table::Gadm => (world.gadm_table(), mappings::GADM_MAPPING),
                Table::Corine => (world.corine_table(), mappings::CORINE_MAPPING),
                Table::UrbanAtlas => (world.urban_atlas_table(), mappings::URBAN_ATLAS_MAPPING),
            };
            b.add_table(source);
            b.add_mappings(doc).expect("static mapping documents parse");
        }
        if self.grid {
            let mut lai = grids::lai_dataset(
                &world,
                &grids::GridSpec {
                    resolution: self.resolution.max(2),
                    times: self.grid_times(),
                    noise: 0.1,
                    seed: self.seed,
                },
            );
            lai.name = "lai_300m".into();
            b.publish(lai);
            b.add_opendap("lai_300m", "LAI", Duration::from_secs(600));
            b.add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
                .expect("generated LAI mapping parses");
        }
        b
    }

    /// Build both engines over identical data.
    pub fn build(&self) -> Result<Engines, String> {
        let b = self.virtual_builder(
            Arc::new(applab_dap::transport::Local::new()),
            Arc::new(applab_dap::clock::SystemClock::new()),
        );
        let vw = b.seal().map_err(|e| format!("seal: {e}"))?;
        let graph = vw.materialize().map_err(|e| format!("materialize: {e}"))?;
        let triples = graph.len();
        let store = SpatioTemporalStore::from_graph(&graph);
        Ok(Engines { store, vw, triples })
    }
}

/// The engines under differential test, built over one dataset.
pub struct Engines {
    /// Materialized workflow: GeoTriples → spatiotemporal store.
    pub store: SpatioTemporalStore,
    /// On-the-fly workflow: OBDA rewriting over tables + OPeNDAP.
    pub vw: VirtualWorkflow,
    /// Triple count of the materialized graph.
    pub triples: usize,
}

/// Differential check of the two *load* paths themselves: batch
/// GeoTriples processing of the vector tables must produce exactly the
/// triples the OBDA materialization produces for the same mappings.
pub fn check_load_paths(spec: &DatasetSpec) -> Result<(), String> {
    let mut vector_only = spec.clone();
    vector_only.grid = false;
    if vector_only.tables.is_empty() {
        return Ok(());
    }

    // Path A: batch GeoTriples.
    let world = vector_only.world();
    let mut graph = applab_rdf::Graph::new();
    for table in &vector_only.tables {
        let (source, doc) = match table {
            Table::Osm => (world.osm_table(), mappings::OSM_MAPPING),
            Table::Gadm => (world.gadm_table(), mappings::GADM_MAPPING),
            Table::Corine => (world.corine_table(), mappings::CORINE_MAPPING),
            Table::UrbanAtlas => (world.urban_atlas_table(), mappings::URBAN_ATLAS_MAPPING),
        };
        for m in applab_geotriples::parse_mappings(doc).map_err(|e| e.to_string())? {
            graph.extend_from(&applab_geotriples::process(&m, &source));
        }
    }

    // Path B: OBDA materialization.
    let engines = vector_only.build()?;
    let materialized = engines
        .vw
        .materialize()
        .map_err(|e| format!("materialize: {e}"))?;

    let mut a: Vec<String> = graph.iter().map(|t| format!("{t:?}")).collect();
    let mut b: Vec<String> = materialized.iter().map(|t| format!("{t:?}")).collect();
    a.sort();
    b.sort();
    if a != b {
        let only_a: Vec<&String> = a.iter().filter(|t| !b.contains(t)).take(3).collect();
        let only_b: Vec<&String> = b.iter().filter(|t| !a.contains(t)).take(3).collect();
        return Err(format!(
            "load paths disagree: {} vs {} triples; only-geotriples {only_a:?}; only-obda {only_b:?}",
            a.len(),
            b.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_identical_data_in_both_engines() {
        let engines = DatasetSpec::small(3).build().unwrap();
        assert!(engines.triples > 100, "tiny world still has data");
        assert_eq!(engines.store.len(), engines.triples);
        // Spot-check one query against both.
        let q = "SELECT ?s WHERE { ?s a clc:CorineArea }";
        let parsed = applab_sparql::parse_query(q).unwrap();
        let from_store = applab_sparql::evaluate(&engines.store, &parsed).unwrap();
        let from_vw = engines
            .vw
            .query_with(q, &applab_sparql::EvalOptions::sequential())
            .unwrap();
        assert_eq!(from_store.len(), from_vw.len());
    }

    #[test]
    fn load_paths_agree() {
        check_load_paths(&DatasetSpec::small(5)).unwrap();
    }

    #[test]
    fn table_keys_round_trip() {
        for t in Table::ALL {
            assert_eq!(Table::from_key(t.key()), Some(t));
        }
        assert_eq!(Table::from_key("nope"), None);
    }
}
