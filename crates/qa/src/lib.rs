//! Generative differential testing for the Copernicus App Lab stack.
//!
//! The paper's core claim is that the materialized workflow (GeoTriples →
//! spatiotemporal store) and the virtual workflow (OBDA over tables +
//! OPeNDAP) answer the *same* GeoSPARQL questions over the same data.
//! This crate makes that claim machine-checkable at scale:
//!
//! * [`gen`] — a seeded generator of valid GeoSPARQL queries over the
//!   workspace vocabularies, replayable byte-identically from a case seed;
//! * [`dataset`] — shrinkable synthetic datasets loaded into *both*
//!   workflows from one materialization, so data is identical by
//!   construction;
//! * [`harness`] — the differential oracle: reference evaluator,
//!   hash-join pipeline (sequential and parallel), and virtual workflow,
//!   diffed as canonical multisets ([`canon`]) through the JSON wire
//!   format;
//! * [`metamorphic`] — oracle-free invariants (pattern reordering,
//!   FILTER-conjunct splitting, LIMIT monotonicity, bbox-shrink
//!   containment);
//! * [`mod@shrink`] — greedy reduction of a failing case to a minimal one;
//! * [`corpus`] — the persisted `qa/corpus/*.ron` regression corpus.
//!
//! Entry points: `exp_qa` (in `applab-bench`) for budgeted fuzzing runs,
//! and `tests/qa_corpus.rs` at the workspace root for the pinned corpus.

#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod canon;
pub mod corpus;
pub mod dataset;
pub mod gen;
pub mod harness;
pub mod metamorphic;
pub mod shrink;

pub use canon::{canonical_term, canonicalize, diff, is_multiset_subset, Canon};
pub use corpus::{load_dir, CorpusCase};
pub use dataset::{check_load_paths, DatasetSpec, Engines, Table};
pub use gen::{case_seed, generate, QueryIr};
pub use harness::{Harness, Verdict, ENGINES, HARNESS_BATCH_WINDOWS, PLANNED_ENGINES};
pub use shrink::{shrink, Shrunk};
