//! The replayable regression corpus.
//!
//! Every disagreement the harness ever finds is shrunk and persisted as a
//! `qa/corpus/*.ron` file; `tests/qa_corpus.rs` replays every checked-in
//! case through all engines forever. The format is a small RON-style
//! record (hand-rolled — the workspace vendors no RON crate) that is
//! stable, diff-friendly, and survives a `to_ron`/`from_ron` round trip
//! byte-identically.

use crate::dataset::{DatasetSpec, Table};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One persisted case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// Short snake-case identifier (usually the file stem).
    pub name: String,
    /// The generator case seed that produced the query originally
    /// (0 for handwritten cases).
    pub seed: u64,
    pub dataset: DatasetSpec,
    /// Rendered SPARQL text (exactly what the engines receive).
    pub query: String,
    /// What the case pins down, for humans.
    pub note: String,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

impl CorpusCase {
    pub fn to_ron(&self) -> String {
        let tables: Vec<String> = self
            .dataset
            .tables
            .iter()
            .map(|t| format!("\"{}\"", t.key()))
            .collect();
        let mut s = String::new();
        let _ = writeln!(s, "QaCase(");
        let _ = writeln!(s, "    name: \"{}\",", escape(&self.name));
        let _ = writeln!(s, "    seed: {},", self.seed);
        let _ = writeln!(
            s,
            "    dataset: (seed: {}, cells: {}, resolution: {}, times: {}, tables: [{}], grid: {}),",
            self.dataset.seed,
            self.dataset.cells,
            self.dataset.resolution,
            self.dataset.times,
            tables.join(", "),
            self.dataset.grid
        );
        let _ = writeln!(s, "    query: \"{}\",", escape(&self.query));
        let _ = writeln!(s, "    note: \"{}\",", escape(&self.note));
        s.push_str(")\n");
        s
    }

    pub fn from_ron(text: &str) -> Result<CorpusCase, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.expect_ident("QaCase")?;
        p.expect(b'(')?;
        let mut name = None;
        let mut seed = None;
        let mut dataset = None;
        let mut query = None;
        let mut note = None;
        loop {
            p.skip_ws();
            if p.eat(b')') {
                break;
            }
            let key = p.ident()?;
            p.expect(b':')?;
            match key.as_str() {
                "name" => name = Some(p.string()?),
                "seed" => seed = Some(p.u64()?),
                "dataset" => dataset = Some(p.dataset()?),
                "query" => query = Some(p.string()?),
                "note" => note = Some(p.string()?),
                other => return Err(format!("unknown QaCase field `{other}`")),
            }
            p.skip_ws();
            p.eat(b',');
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("trailing input after QaCase(...)".to_string());
        }
        Ok(CorpusCase {
            name: name.ok_or("missing field `name`")?,
            seed: seed.ok_or("missing field `seed`")?,
            dataset: dataset.ok_or("missing field `dataset`")?,
            query: query.ok_or("missing field `query`")?,
            note: note.ok_or("missing field `note`")?,
        })
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected identifier at byte {start}"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn expect_ident(&mut self, want: &str) -> Result<(), String> {
        let got = self.ident()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected `{want}`, found `{got}`"))
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad integer: {e}"))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.ident()?.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("expected bool, found `{other}`")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err("unterminated string".to_string());
            }
            let b = self.bytes[self.pos];
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    if self.pos >= self.bytes.len() {
                        return Err("dangling escape".to_string());
                    }
                    let e = self.bytes[self.pos];
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn dataset(&mut self) -> Result<DatasetSpec, String> {
        self.expect(b'(')?;
        let mut spec = DatasetSpec {
            seed: 0,
            cells: 2,
            resolution: 2,
            times: 1,
            tables: Vec::new(),
            grid: false,
        };
        loop {
            self.skip_ws();
            if self.eat(b')') {
                break;
            }
            let key = self.ident()?;
            self.expect(b':')?;
            match key.as_str() {
                "seed" => spec.seed = self.u64()?,
                "cells" => spec.cells = self.u64()? as usize,
                "resolution" => spec.resolution = self.u64()? as usize,
                "times" => spec.times = self.u64()? as usize,
                "grid" => spec.grid = self.bool()?,
                "tables" => {
                    self.expect(b'[')?;
                    loop {
                        self.skip_ws();
                        if self.eat(b']') {
                            break;
                        }
                        let key = self.string()?;
                        let table = Table::from_key(&key)
                            .ok_or_else(|| format!("unknown table `{key}`"))?;
                        spec.tables.push(table);
                        self.skip_ws();
                        self.eat(b',');
                    }
                }
                other => return Err(format!("unknown dataset field `{other}`")),
            }
            self.skip_ws();
            self.eat(b',');
        }
        Ok(spec)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Load every `*.ron` case under `dir`, sorted by file name. Unreadable
/// or unparsable files are hard errors — a corrupt corpus must fail CI,
/// not silently skip.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ron"))
        .collect();
    entries.sort();
    let mut out = Vec::new();
    for path in entries {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let case =
            CorpusCase::from_ron(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CorpusCase {
        CorpusCase {
            name: "optional_filter_unbound".into(),
            seed: 42,
            dataset: DatasetSpec {
                seed: 7,
                cells: 3,
                resolution: 2,
                times: 1,
                tables: vec![Table::Osm, Table::Corine],
                grid: true,
            },
            query: "SELECT ?s WHERE { ?s a clc:CorineArea . FILTER(?x = \"a\\\\b\") }".into(),
            note: "quote \" backslash \\ newline \n tab \t unicode é😀".into(),
        }
    }

    #[test]
    fn ron_round_trip_is_lossless() {
        let case = sample();
        let text = case.to_ron();
        let back = CorpusCase::from_ron(&text).unwrap();
        assert_eq!(case, back);
        // And the writer is a fixed point.
        assert_eq!(back.to_ron(), text);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "QaCase",
            "QaCase(name: \"x\")",
            "QaCase(name: \"x\", seed: 1, dataset: (), query: \"q\", note: \"n\", bogus: 3)",
            "QaCase(name: \"x\", seed: 1, dataset: (tables: [\"nope\"]), query: \"q\", note: \"n\")",
            "QaCase(name: \"unterminated, seed: 1)",
            "QaCase(name: \"x\", seed: 1, dataset: (), query: \"q\", note: \"n\") trailing",
        ] {
            assert!(CorpusCase::from_ron(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn generated_cases_round_trip_through_ron() {
        use crate::gen::{case_seed, generate};
        let spec = DatasetSpec::small(1);
        for i in 0..100 {
            let seed = case_seed(5, i);
            let ir = generate(seed, &spec);
            let case = CorpusCase {
                name: format!("case_{i}"),
                seed,
                dataset: spec.clone(),
                query: ir.render(),
                note: "round-trip property".into(),
            };
            let back = CorpusCase::from_ron(&case.to_ron()).unwrap();
            assert_eq!(case, back, "case {i}");
        }
    }
}
