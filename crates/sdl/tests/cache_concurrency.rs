//! `SubsetCache` under concurrency: `evict_expired` interleaved with
//! `get_or_fetch` callers, including the stale-grace degraded path.
//!
//! Eviction is housekeeping — correctness must never depend on when (or
//! whether) it runs, even while other threads fetch, hit, refresh and
//! stale-serve the same keys.

use applab_array::{NdArray, Variable};
use applab_dap::clock::ManualClock;
use applab_dap::DapError;
use applab_sdl::SubsetCache;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A one-cell variable tagged with `value`, so tests can tell entries
/// apart.
fn tagged(value: f64) -> Vec<Variable> {
    vec![Variable::new(
        "v",
        vec!["i".to_string()],
        NdArray::from_vec(vec![1], vec![value]).expect("static shape"),
    )]
}

fn tag_of(vars: &[Variable]) -> f64 {
    vars[0].data.data()[0]
}

#[test]
fn eviction_races_concurrent_fetchers() {
    let clock = ManualClock::new();
    let cache = SubsetCache::new(Duration::from_secs(10), clock.clone());
    let stop = AtomicBool::new(false);
    const WORKERS: usize = 8;
    const ITERS: usize = 2000;
    const KEYS: usize = 4;

    std::thread::scope(|s| {
        let cache = &cache;
        let stop = &stop;
        let evictor = s.spawn(move || {
            let mut sweeps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                cache.evict_expired();
                sweeps += 1;
                std::thread::yield_now();
            }
            sweeps
        });
        let advancer = {
            let clock = clock.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    clock.advance(Duration::from_secs(3));
                    std::thread::yield_now();
                }
            })
        };
        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                s.spawn(move || {
                    for i in 0..ITERS {
                        let k = (w + i) % KEYS;
                        let key = format!("k{k}");
                        let vars = cache
                            .get_or_fetch(&key, || Ok(tagged(k as f64)))
                            .expect("fetch never fails here");
                        // Whatever the eviction/expiry interleaving, the
                        // caller always gets the full, correct value.
                        assert_eq!(tag_of(&vars), k as f64);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        stop.store(true, Ordering::Relaxed);
        let sweeps = evictor.join().expect("evictor");
        advancer.join().expect("advancer");
        assert!(sweeps > 0, "eviction must actually have interleaved");
    });
    // Push the clock safely past the window: a final sweep leaves nothing
    // behind.
    clock.advance(Duration::from_secs(60));
    cache.evict_expired();
    assert!(cache.is_empty());
}

#[test]
fn stale_grace_survives_concurrent_eviction() {
    let clock = ManualClock::new();
    let cache = SubsetCache::new(Duration::from_secs(10), clock.clone())
        .with_stale_grace(Duration::from_secs(1000));
    cache.get_or_fetch("k", || Ok(tagged(7.0))).expect("seed");
    // Expired, but inside the grace window; the upstream is down.
    clock.advance(Duration::from_secs(11));
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let cache = &cache;
        let stop = &stop;
        let evictor = s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cache.evict_expired();
                std::thread::yield_now();
            }
        });
        let workers: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let scope = applab_obs::degrade::Scope::begin();
                    for _ in 0..500 {
                        let (vars, degraded) = cache
                            .get_or_fetch_degraded("k", || {
                                Err(DapError::Transport("upstream down".into()))
                            })
                            .expect("inside grace the stale entry is served");
                        assert!(degraded, "stale serves must be flagged");
                        assert_eq!(tag_of(&vars), 7.0, "stale value stays intact");
                    }
                    // Degradation is visible on the serving thread.
                    assert!(scope.degraded());
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        stop.store(true, Ordering::Relaxed);
        evictor.join().expect("evictor");
    });
    assert!(cache.stale_serves() >= 8 * 500);

    // Past window + grace the entry is gone for good: eviction drops it
    // and the failure finally propagates, typed.
    clock.advance(Duration::from_secs(1001));
    cache.evict_expired();
    assert!(cache.is_empty());
    let err = cache
        .get_or_fetch_degraded("k", || Err(DapError::Transport("upstream down".into())))
        .expect_err("no stale entry left");
    assert_eq!(err, DapError::Transport("upstream down".into()));

    // And a healthy upstream repopulates the cache as usual.
    let (vars, degraded) = cache
        .get_or_fetch_degraded("k", || Ok(tagged(9.0)))
        .expect("healthy refetch");
    assert!(!degraded);
    assert_eq!(tag_of(&vars), 9.0);
}

#[test]
fn refresh_races_stale_serves_without_torn_values() {
    // One key flips between refreshable and down while eviction runs:
    // every observed value must be one of the two complete generations,
    // never empty and never an error while a grace copy exists.
    let clock = ManualClock::new();
    let cache = SubsetCache::new(Duration::from_secs(10), clock.clone())
        .with_stale_grace(Duration::from_secs(1000));
    cache.get_or_fetch("k", || Ok(tagged(1.0))).expect("seed");
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let cache = &cache;
        let stop = &stop;
        let clock_ref = &clock;
        let evictor = s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cache.evict_expired();
                std::thread::yield_now();
            }
        });
        let workers: Vec<_> = (0..6)
            .map(|w| {
                s.spawn(move || {
                    for i in 0..400 {
                        // Even workers refresh successfully (generation 2),
                        // odd workers hit a down upstream.
                        let healthy = w % 2 == 0;
                        let out = cache.get_or_fetch_degraded("k", || {
                            if healthy {
                                Ok(tagged(2.0))
                            } else {
                                Err(DapError::Transport("down".into()))
                            }
                        });
                        let (vars, _) = out.expect("a cached generation always exists");
                        let tag = tag_of(&vars);
                        assert!(tag == 1.0 || tag == 2.0, "torn value: {tag}");
                        if i % 50 == 0 {
                            clock_ref.advance(Duration::from_secs(11));
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        stop.store(true, Ordering::Relaxed);
        evictor.join().expect("evictor");
    });
}
