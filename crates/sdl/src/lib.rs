//! The Streaming Data Library (SDL).
//!
//! Reproduces RAMANI's SDL (Sections 3.1 and 3.3): a client library that
//! "communicates with the OPeNDAP server and receives Copernicus services
//! data as streams", exposes datasets "so their temporal and spatial
//! characteristics are exposed in a queryable manner", and serves the
//! Maps-API request methods: *getMetadata, getDerivedData, getMap,
//! getAnimation, getTransect, getPoint, getArea, getVerticalProfile,
//! getSpectralProfile, getMapSwipe, getTimeseriesProfile*.
//!
//! The RAMANI Cloud Analytics layer ("on-the-fly spatial and temporal
//! aggregations such that downstream services may request for derived
//! variables ... such as a long-term (moving) average (summer-time) or
//! spatial central tendency (city-average)") is [`analytics`]; Kubernetes
//! is replaced by a crossbeam worker pool ([`pool`]).
//!
//! Viewport requests emit `sdl.viewport` spans and the subset cache
//! reports instance-labeled `applab_sdl_cache_*` counters to the
//! `applab-obs` global registry.
#![cfg_attr(
    not(test),
    warn(clippy::print_stdout, clippy::print_stderr, clippy::unwrap_used)
)]

pub mod analytics;
pub mod cache;
pub mod pool;
pub mod sdl;

pub use cache::{BboxFetcher, SubsetCache, TiledFetcher};
pub use pool::{PoolPanics, WorkerPool};
pub use sdl::{Sdl, SdlError};
