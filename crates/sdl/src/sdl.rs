//! The SDL request methods.
//!
//! Section 3.3: "Once data has been discovered, it can be consumed in the
//! VISual Maps-API using any of the following data request-methods:
//! getMetadata, getDerivedData, getMap, getAnimation, getTransect,
//! getPoint, getArea, getVerticalProfile, getSpectralProfile (in case of
//! multi-spectral EO-data), getMapSwipe, and getTimeseriesProfile."
//! Every method here is one of those, snake-cased.

use crate::analytics::{self, CentralTendency, TimeSeries};
use crate::cache::SubsetCache;
use crate::pool::run_parallel;
use applab_array::time::TimeAxis;
use applab_array::{AttrValue, NdArray, Range, Variable};
use applab_dap::clock::Clock;
use applab_dap::das::Das;
use applab_dap::dds::Dds;
use applab_dap::{Constraint, DapClient, DapError};
use applab_geo::{Coord, Envelope};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// SDL error.
#[derive(Debug)]
pub enum SdlError {
    Dap(DapError),
    BadRequest(String),
}

impl fmt::Display for SdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdlError::Dap(e) => write!(f, "DAP error: {e}"),
            SdlError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for SdlError {}

impl From<DapError> for SdlError {
    fn from(e: DapError) -> Self {
        SdlError::Dap(e)
    }
}

/// Cached per-dataset structure: DDS, DAS and decoded coordinate axes.
struct DatasetInfo {
    dds: Dds,
    das: Das,
    /// Coordinate name → values.
    coords: HashMap<String, Vec<f64>>,
    /// Decoded time axis values in epoch seconds (when a `time` coordinate
    /// exists).
    times: Vec<i64>,
}

/// A derived-data request (the RAMANI Cloud Analytics layer).
#[derive(Debug, Clone)]
pub enum Derivation {
    /// Long-term (moving) average of the point time series, window ±k.
    MovingAverage { k: usize },
    /// Moving average restricted to the given months ("summer-time").
    SeasonalMovingAverage { k: usize, months: Vec<u32> },
    /// Anomaly of the point time series against its long-term mean.
    Anomaly,
    /// Spatial central tendency over a region at one time ("city-average").
    SpatialAggregate {
        envelope: Envelope,
        how: CentralTendency,
    },
}

/// A derived-data result.
#[derive(Debug, Clone, PartialEq)]
pub enum DerivedData {
    Series(TimeSeries),
    Scalar(f64),
}

/// The metadata bundle getMetadata returns.
#[derive(Debug, Clone)]
pub struct Metadata {
    pub dds: Dds,
    pub das: Das,
    /// Time coverage (epoch seconds), when a time axis exists.
    pub time_coverage: Option<(i64, i64)>,
    /// Spatial extent from the lat/lon axes.
    pub extent: Option<Envelope>,
}

/// The Streaming Data Library.
pub struct Sdl {
    client: Arc<DapClient>,
    info_cache: RwLock<HashMap<String, Arc<DatasetInfo>>>,
    data_cache: SubsetCache,
    workers: usize,
}

impl Sdl {
    /// Create an SDL over a DAP client with a data-cache window `w`.
    pub fn new(client: Arc<DapClient>, window: Duration, clock: Arc<dyn Clock>) -> Self {
        Sdl {
            client,
            info_cache: RwLock::new(HashMap::new()),
            data_cache: SubsetCache::new(window, clock),
            workers: 4,
        }
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enable serve-stale on the data cache: when a refetch fails
    /// transiently and the old subset expired less than `grace` ago, the
    /// stale subset is served (marked degraded through
    /// [`applab_obs::degrade`]) instead of failing the request.
    pub fn with_stale_grace(mut self, grace: Duration) -> Self {
        self.data_cache = self.data_cache.with_stale_grace(grace);
        self
    }

    /// Cache statistics (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.data_cache.hits(), self.data_cache.misses())
    }

    fn info(&self, dataset: &str) -> Result<Arc<DatasetInfo>, SdlError> {
        if let Some(info) = self.info_cache.read().get(dataset) {
            return Ok(info.clone());
        }
        let dds = self.client.get_dds(dataset)?;
        let das = self.client.get_das(dataset)?;
        // Fetch every 1-D variable that names its own dimension (CF
        // coordinate variables).
        let mut coords = HashMap::new();
        for v in &dds.variables {
            if v.dims.len() == 1 && v.dims[0].0 == v.name {
                let fetched = self
                    .client
                    .get_data(dataset, &Constraint::variable(v.name.clone(), vec![]))?;
                if let Some(var) = fetched.first() {
                    coords.insert(v.name.clone(), var.data.data().to_vec());
                }
            }
        }
        // Decode time.
        let times = match coords.get("time") {
            Some(values) => {
                let units = das
                    .get("time")
                    .and_then(|attrs| attrs.get("units"))
                    .and_then(|a| match a {
                        AttrValue::Text(t) => Some(t.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| "seconds since 1970-01-01".to_string());
                let axis = TimeAxis::parse(&units)
                    .map_err(|e| SdlError::BadRequest(format!("time axis: {e}")))?;
                values.iter().map(|&v| axis.decode(v)).collect()
            }
            None => Vec::new(),
        };
        let info = Arc::new(DatasetInfo {
            dds,
            das,
            coords,
            times,
        });
        self.info_cache
            .write()
            .insert(dataset.to_string(), info.clone());
        Ok(info)
    }

    fn nearest(values: &[f64], target: f64) -> Option<usize> {
        values
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - target)
                    .abs()
                    .partial_cmp(&(*b - target).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    fn nearest_time(info: &DatasetInfo, t: i64) -> Result<usize, SdlError> {
        if info.times.is_empty() {
            return Err(SdlError::BadRequest("dataset has no time axis".into()));
        }
        Ok(info
            .times
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| (v - t).abs())
            .map(|(i, _)| i)
            .expect("non-empty"))
    }

    fn axis<'a>(info: &'a DatasetInfo, name: &str) -> Result<&'a [f64], SdlError> {
        info.coords
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| SdlError::BadRequest(format!("dataset has no {name} axis")))
    }

    /// Fetch a constrained subset through the windowed cache.
    fn fetch(
        &self,
        dataset: &str,
        constraint: &Constraint,
    ) -> Result<Arc<Vec<Variable>>, SdlError> {
        let key = format!("{dataset}?{}", constraint.to_query_string());
        self.data_cache
            .get_or_fetch(&key, || self.client.get_data(dataset, constraint))
            .map_err(SdlError::from)
    }

    /// Build the full slab for `variable`, fixing named dims to indexes and
    /// leaving `vary` at full extent.
    fn slab_for(
        &self,
        info: &DatasetInfo,
        variable: &str,
        fixed: &HashMap<&str, usize>,
        vary: &[&str],
    ) -> Result<Vec<Range>, SdlError> {
        let var = info
            .dds
            .variable(variable)
            .ok_or_else(|| SdlError::Dap(DapError::NoSuchVariable(variable.to_string())))?;
        var.dims
            .iter()
            .map(|(dim, len)| {
                if let Some(&i) = fixed.get(dim.as_str()) {
                    Ok(Range::index(i))
                } else if vary.contains(&dim.as_str()) {
                    Ok(Range::all(*len))
                } else {
                    Err(SdlError::BadRequest(format!(
                        "dimension {dim} of {variable} neither fixed nor varying"
                    )))
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // The Maps-API request methods.
    // ------------------------------------------------------------------

    /// `getMetadata`.
    pub fn get_metadata(&self, dataset: &str) -> Result<Metadata, SdlError> {
        let info = self.info(dataset)?;
        let time_coverage = match (info.times.first(), info.times.last()) {
            (Some(&a), Some(&b)) => Some((a, b)),
            _ => None,
        };
        let extent = match (info.coords.get("lat"), info.coords.get("lon")) {
            (Some(lats), Some(lons)) => {
                match (lats.first(), lats.last(), lons.first(), lons.last()) {
                    (Some(&la0), Some(&la1), Some(&lo0), Some(&lo1)) => {
                        Some(Envelope::new(lo0, la0, lo1, la1))
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        Ok(Metadata {
            dds: info.dds.clone(),
            das: info.das.clone(),
            time_coverage,
            extent,
        })
    }

    /// `getPoint`: the value nearest to (lon, lat) at the time nearest `t`.
    pub fn get_point(
        &self,
        dataset: &str,
        variable: &str,
        at: Coord,
        t: i64,
    ) -> Result<f64, SdlError> {
        let info = self.info(dataset)?;
        let ti = Self::nearest_time(&info, t)?;
        let la = Self::nearest(Self::axis(&info, "lat")?, at.y)
            .ok_or_else(|| SdlError::BadRequest("empty lat axis".into()))?;
        let lo = Self::nearest(Self::axis(&info, "lon")?, at.x)
            .ok_or_else(|| SdlError::BadRequest("empty lon axis".into()))?;
        let fixed = HashMap::from([("time", ti), ("lat", la), ("lon", lo)]);
        let slab = self.slab_for(&info, variable, &fixed, &[])?;
        let vars = self.fetch(dataset, &Constraint::variable(variable, slab))?;
        Ok(vars[0].data.data()[0])
    }

    /// `getArea`: the subset covering `envelope` at the time nearest `t`,
    /// returned as a 2-D (lat, lon) array.
    pub fn get_area(
        &self,
        dataset: &str,
        variable: &str,
        envelope: &Envelope,
        t: i64,
    ) -> Result<NdArray, SdlError> {
        let info = self.info(dataset)?;
        let ti = Self::nearest_time(&info, t)?;
        let lat_range = index_range(Self::axis(&info, "lat")?, envelope.min_y, envelope.max_y)
            .ok_or_else(|| SdlError::BadRequest("area selects no latitudes".into()))?;
        let lon_range = index_range(Self::axis(&info, "lon")?, envelope.min_x, envelope.max_x)
            .ok_or_else(|| SdlError::BadRequest("area selects no longitudes".into()))?;
        let constraint =
            Constraint::variable(variable, vec![Range::index(ti), lat_range, lon_range]);
        let vars = self.fetch(dataset, &constraint)?;
        let data = &vars[0].data;
        // Drop the singleton time axis.
        let shape = data.shape();
        NdArray::from_vec(vec![shape[1], shape[2]], data.data().to_vec())
            .map_err(|e| SdlError::BadRequest(e.to_string()))
    }

    /// `getTimeseriesProfile`: the full time series at the grid cell
    /// nearest (lon, lat).
    pub fn get_timeseries_profile(
        &self,
        dataset: &str,
        variable: &str,
        at: Coord,
    ) -> Result<TimeSeries, SdlError> {
        let info = self.info(dataset)?;
        if info.times.is_empty() {
            return Err(SdlError::BadRequest("dataset has no time axis".into()));
        }
        let la = Self::nearest(Self::axis(&info, "lat")?, at.y)
            .ok_or_else(|| SdlError::BadRequest("empty lat axis".into()))?;
        let lo = Self::nearest(Self::axis(&info, "lon")?, at.x)
            .ok_or_else(|| SdlError::BadRequest("empty lon axis".into()))?;
        let fixed = HashMap::from([("lat", la), ("lon", lo)]);
        let slab = self.slab_for(&info, variable, &fixed, &["time"])?;
        let vars = self.fetch(dataset, &Constraint::variable(variable, slab))?;
        Ok(info
            .times
            .iter()
            .zip(vars[0].data.data())
            .map(|(&t, &v)| (t, v))
            .collect())
    }

    /// `getTransect`: `samples` values along the segment from `from` to
    /// `to` at the time nearest `t`.
    pub fn get_transect(
        &self,
        dataset: &str,
        variable: &str,
        from: Coord,
        to: Coord,
        t: i64,
        samples: usize,
    ) -> Result<Vec<(Coord, f64)>, SdlError> {
        if samples < 2 {
            return Err(SdlError::BadRequest("transect needs >= 2 samples".into()));
        }
        let mut out = Vec::with_capacity(samples);
        for i in 0..samples {
            let f = i as f64 / (samples - 1) as f64;
            let p = Coord::new(from.x + f * (to.x - from.x), from.y + f * (to.y - from.y));
            let v = self.get_point(dataset, variable, p, t)?;
            out.push((p, v));
        }
        Ok(out)
    }

    /// `getMap`: a `rows`×`cols` display grid over `envelope` at the time
    /// nearest `t` (nearest-neighbour resampling).
    pub fn get_map(
        &self,
        dataset: &str,
        variable: &str,
        envelope: &Envelope,
        t: i64,
        rows: usize,
        cols: usize,
    ) -> Result<NdArray, SdlError> {
        let area = self.get_area(dataset, variable, envelope, t)?;
        Ok(analytics::resample_nearest(&area, rows, cols))
    }

    /// `getAnimation`: one map per requested time, rendered in parallel on
    /// the worker pool.
    pub fn get_animation(
        &self,
        dataset: &str,
        variable: &str,
        envelope: &Envelope,
        times: &[i64],
        rows: usize,
        cols: usize,
    ) -> Result<Vec<NdArray>, SdlError> {
        let frames = run_parallel(self.workers, times.to_vec(), |t| {
            self.get_map(dataset, variable, envelope, t, rows, cols)
        });
        frames.into_iter().collect()
    }

    /// `getMapSwipe`: two co-registered maps (left/right of the swipe).
    #[allow(clippy::too_many_arguments)]
    pub fn get_map_swipe(
        &self,
        left: (&str, &str),
        right: (&str, &str),
        envelope: &Envelope,
        t: i64,
        rows: usize,
        cols: usize,
    ) -> Result<(NdArray, NdArray), SdlError> {
        let a = self.get_map(left.0, left.1, envelope, t, rows, cols)?;
        let b = self.get_map(right.0, right.1, envelope, t, rows, cols)?;
        Ok((a, b))
    }

    /// `getVerticalProfile`: the values along the `level` dimension at one
    /// location/time.
    pub fn get_vertical_profile(
        &self,
        dataset: &str,
        variable: &str,
        at: Coord,
        t: i64,
    ) -> Result<Vec<(f64, f64)>, SdlError> {
        self.get_profile(dataset, variable, "level", at, t)
    }

    /// `getSpectralProfile`: the values along the `band` dimension
    /// ("in case of multi-spectral EO-data").
    pub fn get_spectral_profile(
        &self,
        dataset: &str,
        variable: &str,
        at: Coord,
        t: i64,
    ) -> Result<Vec<(f64, f64)>, SdlError> {
        self.get_profile(dataset, variable, "band", at, t)
    }

    fn get_profile(
        &self,
        dataset: &str,
        variable: &str,
        dim: &str,
        at: Coord,
        t: i64,
    ) -> Result<Vec<(f64, f64)>, SdlError> {
        let info = self.info(dataset)?;
        // The profile dimension must exist on the variable.
        let var = info
            .dds
            .variable(variable)
            .ok_or_else(|| SdlError::Dap(DapError::NoSuchVariable(variable.to_string())))?;
        if !var.dims.iter().any(|(d, _)| d == dim) {
            return Err(SdlError::BadRequest(format!(
                "variable {variable} has no {dim} dimension"
            )));
        }
        let la = Self::nearest(Self::axis(&info, "lat")?, at.y)
            .ok_or_else(|| SdlError::BadRequest("empty lat axis".into()))?;
        let lo = Self::nearest(Self::axis(&info, "lon")?, at.x)
            .ok_or_else(|| SdlError::BadRequest("empty lon axis".into()))?;
        let mut fixed = HashMap::from([("lat", la), ("lon", lo)]);
        if !info.times.is_empty() {
            fixed.insert("time", Self::nearest_time(&info, t)?);
        }
        let slab = self.slab_for(&info, variable, &fixed, &[dim])?;
        let vars = self.fetch(dataset, &Constraint::variable(variable, slab))?;
        let coord_values: Vec<f64> = match info.coords.get(dim) {
            Some(v) => v.clone(),
            None => (0..vars[0].data.len()).map(|i| i as f64).collect(),
        };
        Ok(coord_values
            .into_iter()
            .zip(vars[0].data.data().iter().copied())
            .collect())
    }

    /// `getDerivedData`: run a RAMANI Cloud Analytics derivation.
    pub fn get_derived_data(
        &self,
        dataset: &str,
        variable: &str,
        at: Coord,
        derivation: &Derivation,
        t: i64,
    ) -> Result<DerivedData, SdlError> {
        match derivation {
            Derivation::MovingAverage { k } => {
                let series = self.get_timeseries_profile(dataset, variable, at)?;
                Ok(DerivedData::Series(analytics::moving_average(&series, *k)))
            }
            Derivation::SeasonalMovingAverage { k, months } => {
                let series = self.get_timeseries_profile(dataset, variable, at)?;
                let filtered = analytics::filter_months(&series, months);
                Ok(DerivedData::Series(analytics::moving_average(
                    &filtered, *k,
                )))
            }
            Derivation::Anomaly => {
                let series = self.get_timeseries_profile(dataset, variable, at)?;
                Ok(DerivedData::Series(analytics::anomalies(&series)))
            }
            Derivation::SpatialAggregate { envelope, how } => {
                let area = self.get_area(dataset, variable, envelope, t)?;
                Ok(DerivedData::Scalar(analytics::spatial_aggregate(
                    &area, *how,
                )))
            }
        }
    }
}

fn index_range(values: &[f64], lo: f64, hi: f64) -> Option<Range> {
    let start = values.iter().position(|&v| v >= lo)?;
    let stop = values.iter().rposition(|&v| v <= hi)?;
    if stop < start {
        return None;
    }
    Some(Range::new(start, 1, stop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_dap::clock::ManualClock;
    use applab_dap::server::grid_dataset;
    use applab_dap::transport::Local;
    use applab_dap::DapServer;

    fn sdl() -> Sdl {
        let server = DapServer::new();
        let times: Vec<f64> = (0..12).map(|m| (m * 30 * 86_400) as f64).collect();
        let lats: Vec<f64> = (0..20).map(|i| 48.0 + i as f64 * 0.05).collect();
        let lons: Vec<f64> = (0..20).map(|i| 2.0 + i as f64 * 0.05).collect();
        // Value = month + lat index/100 + lon index/10000 for checkable math.
        server.publish(grid_dataset("lai", &times, &lats, &lons, |t, la, lo| {
            t as f64 + la as f64 / 100.0 + lo as f64 / 10_000.0
        }));
        let client = Arc::new(DapClient::new(Arc::new(server), Arc::new(Local::new())));
        Sdl::new(client, Duration::from_secs(600), ManualClock::new())
    }

    #[test]
    fn metadata() {
        let s = sdl();
        let m = s.get_metadata("lai").unwrap();
        assert_eq!(m.dds.dataset, "lai");
        assert!(m.das.contains_key("NC_GLOBAL"));
        let (t0, t1) = m.time_coverage.unwrap();
        assert_eq!(t0, 0);
        assert_eq!(t1, 11 * 30 * 86_400);
        let e = m.extent.unwrap();
        assert!((e.min_x - 2.0).abs() < 1e-9);
        assert!((e.max_y - 48.95).abs() < 1e-9);
    }

    #[test]
    fn point_requests() {
        let s = sdl();
        // Exactly on grid node (lat idx 2, lon idx 4), month 1.
        let v = s
            .get_point("lai", "LAI", Coord::new(2.2, 48.1), 30 * 86_400)
            .unwrap();
        assert!((v - (1.0 + 0.02 + 0.0004)).abs() < 1e-9);
        // Nearest snapping.
        let v2 = s
            .get_point("lai", "LAI", Coord::new(2.201, 48.099), 29 * 86_400)
            .unwrap();
        assert_eq!(v, v2);
        assert!(s
            .get_point("missing", "LAI", Coord::new(0.0, 0.0), 0)
            .is_err());
    }

    #[test]
    fn area_and_map() {
        let s = sdl();
        let env = Envelope::new(2.1, 48.1, 2.3, 48.3);
        let area = s.get_area("lai", "LAI", &env, 0).unwrap();
        assert_eq!(area.shape(), &[5, 5]); // 48.1..48.3 and 2.1..2.3 in 0.05 steps
        let map = s.get_map("lai", "LAI", &env, 0, 10, 8).unwrap();
        assert_eq!(map.shape(), &[10, 8]);
        // Out-of-domain area errors.
        assert!(s
            .get_area("lai", "LAI", &Envelope::new(50.0, 50.0, 51.0, 51.0), 0)
            .is_err());
    }

    #[test]
    fn timeseries_and_derived() {
        let s = sdl();
        let at = Coord::new(2.0, 48.0);
        let series = s.get_timeseries_profile("lai", "LAI", at).unwrap();
        assert_eq!(series.len(), 12);
        assert_eq!(series[0].1, 0.0);
        assert_eq!(series[11].1, 11.0);

        match s
            .get_derived_data("lai", "LAI", at, &Derivation::MovingAverage { k: 1 }, 0)
            .unwrap()
        {
            DerivedData::Series(ma) => {
                assert_eq!(ma.len(), 12);
                assert_eq!(ma[1].1, 1.0); // (0+1+2)/3
            }
            other => panic!("{other:?}"),
        }
        match s
            .get_derived_data("lai", "LAI", at, &Derivation::Anomaly, 0)
            .unwrap()
        {
            DerivedData::Series(an) => {
                let sum: f64 = an.iter().map(|(_, v)| v).sum();
                assert!(sum.abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
        match s
            .get_derived_data(
                "lai",
                "LAI",
                at,
                &Derivation::SpatialAggregate {
                    envelope: Envelope::new(2.0, 48.0, 2.1, 48.1),
                    how: CentralTendency::Max,
                },
                0,
            )
            .unwrap()
        {
            DerivedData::Scalar(v) => assert!((v - 0.0202).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transect_samples_line() {
        let s = sdl();
        let t = s
            .get_transect(
                "lai",
                "LAI",
                Coord::new(2.0, 48.0),
                Coord::new(2.95, 48.95),
                0,
                5,
            )
            .unwrap();
        assert_eq!(t.len(), 5);
        // Values increase along the diagonal.
        assert!(t.windows(2).all(|w| w[1].1 >= w[0].1));
        assert!(s
            .get_transect(
                "lai",
                "LAI",
                Coord::new(2.0, 48.0),
                Coord::new(2.1, 48.1),
                0,
                1
            )
            .is_err());
    }

    #[test]
    fn animation_parallel() {
        let s = sdl();
        let env = Envelope::new(2.0, 48.0, 2.5, 48.5);
        let times: Vec<i64> = (0..6).map(|m| m * 30 * 86_400).collect();
        let frames = s.get_animation("lai", "LAI", &env, &times, 4, 4).unwrap();
        assert_eq!(frames.len(), 6);
        // Later frames have larger values (value = month + ...).
        assert!(frames[5].mean() > frames[0].mean());
    }

    #[test]
    fn map_swipe() {
        let s = sdl();
        let env = Envelope::new(2.0, 48.0, 2.5, 48.5);
        let (a, b) = s
            .get_map_swipe(("lai", "LAI"), ("lai", "LAI"), &env, 0, 4, 4)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn caching_dedupes_identical_requests() {
        let s = sdl();
        let at = Coord::new(2.2, 48.2);
        s.get_point("lai", "LAI", at, 0).unwrap();
        s.get_point("lai", "LAI", at, 0).unwrap();
        s.get_point("lai", "LAI", at, 0).unwrap();
        let (hits, misses) = s.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn profile_over_band_dimension() {
        // A multi-spectral dataset: (band, lat, lon).
        let server = DapServer::new();
        let mut ds = applab_array::Dataset::new("multispectral");
        ds.add_dim("band", 4).add_dim("lat", 2).add_dim("lon", 2);
        ds.add_variable(applab_array::Variable::new(
            "band",
            vec!["band".into()],
            NdArray::vector(vec![490.0, 560.0, 665.0, 842.0]),
        ))
        .unwrap();
        ds.add_variable(applab_array::Variable::new(
            "lat",
            vec!["lat".into()],
            NdArray::vector(vec![48.0, 48.5]),
        ))
        .unwrap();
        ds.add_variable(applab_array::Variable::new(
            "lon",
            vec!["lon".into()],
            NdArray::vector(vec![2.0, 2.5]),
        ))
        .unwrap();
        let mut data = NdArray::zeros(vec![4, 2, 2]);
        for b in 0..4 {
            data.set(&[b, 0, 0], b as f64 * 10.0).unwrap();
        }
        ds.add_variable(applab_array::Variable::new(
            "reflectance",
            vec!["band".into(), "lat".into(), "lon".into()],
            data,
        ))
        .unwrap();
        server.publish(ds);
        let client = Arc::new(DapClient::new(Arc::new(server), Arc::new(Local::new())));
        let s = Sdl::new(client, Duration::ZERO, ManualClock::new());
        let profile = s
            .get_spectral_profile("multispectral", "reflectance", Coord::new(2.0, 48.0), 0)
            .unwrap();
        assert_eq!(profile.len(), 4);
        assert_eq!(profile[0], (490.0, 0.0));
        assert_eq!(profile[3], (842.0, 30.0));
        // No vertical levels in this dataset.
        assert!(s
            .get_vertical_profile("multispectral", "reflectance", Coord::new(2.0, 48.0), 0)
            .is_err());
    }
}
