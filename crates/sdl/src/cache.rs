//! Subset caching.
//!
//! Two lessons from the paper are reproduced here:
//!
//! * Section 3.2's time-windowed cache: "results of an OPeNDAP call get
//!   cached ... if another, identical OPeNDAP call needs to be performed
//!   within this time window, the cached results can be used directly"
//!   ([`SubsetCache`]).
//! * Section 5's cache-friendliness argument: "OPeNDAP allows for the
//!   caching of datasets by serialization based on internal array indices.
//!   This increases cache-hits for recurrent requests of a specific subpart
//!   of the dataset ... e.g., in a mobile application scenario, where the
//!   viewport ... \[has\] modest panning and zooming interaction", versus a
//!   WCS that only takes bounding boxes. [`TiledFetcher`] snaps viewports
//!   to index-aligned tiles; [`BboxFetcher`] is the WCS-style baseline that
//!   caches raw bounding boxes. Bench B7 compares their hit rates.

use applab_array::{Range, Variable};
use applab_dap::clock::Clock;
use applab_dap::{Constraint, DapClient, DapError};
use applab_geo::tile::TileGrid;
use applab_geo::Envelope;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// An entry: insertion time plus the cached subset.
type CacheEntry = (Duration, Arc<Vec<Variable>>);

/// A keyed cache whose entries expire `window` after insertion.
///
/// Hit/miss counts live in the `applab-obs` global registry as
/// instance-labeled `applab_sdl_cache_{hits,misses}_total` counters; the
/// [`hits`](Self::hits)/[`misses`](Self::misses) getters are thin reads
/// over this cache's own handles.
///
/// With a non-zero [`stale grace`](Self::with_stale_grace) the cache also
/// degrades gracefully: when a refresh fails on a *transient* upstream
/// fault and the old entry expired less than `grace` ago, the stale copy
/// is served instead of the error — counted as
/// `applab_sdl_cache_stale_served_total` and marked through
/// [`applab_obs::degrade`] so the service can tag the whole answer as
/// degraded.
pub struct SubsetCache {
    window: Duration,
    /// How long past `window` an entry may still be served when a refresh
    /// fails. Zero (the default) disables serve-stale.
    grace: Duration,
    clock: Arc<dyn Clock>,
    entries: RwLock<HashMap<String, CacheEntry>>,
    hits: Arc<applab_obs::Counter>,
    misses: Arc<applab_obs::Counter>,
    stale: Arc<applab_obs::Counter>,
}

impl SubsetCache {
    pub fn new(window: Duration, clock: Arc<dyn Clock>) -> Self {
        let instance = applab_obs::next_instance_id().to_string();
        let labels = [("instance", instance.as_str())];
        SubsetCache {
            window,
            grace: Duration::ZERO,
            clock,
            entries: RwLock::new(HashMap::new()),
            hits: applab_obs::global().counter_with("applab_sdl_cache_hits_total", &labels),
            misses: applab_obs::global().counter_with("applab_sdl_cache_misses_total", &labels),
            stale: applab_obs::global()
                .counter_with("applab_sdl_cache_stale_served_total", &labels),
        }
    }

    /// Enable serve-stale: expired entries stay usable for `grace` beyond
    /// the freshness window when a refresh fails transiently.
    pub fn with_stale_grace(mut self, grace: Duration) -> Self {
        self.grace = grace;
        self
    }

    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Stale entries served in place of a failed refresh so far.
    pub fn stale_serves(&self) -> u64 {
        self.stale.get()
    }

    /// Look up `key`; on miss (or expiry) call `fetch` and cache the result.
    pub fn get_or_fetch(
        &self,
        key: &str,
        fetch: impl FnOnce() -> Result<Vec<Variable>, DapError>,
    ) -> Result<Arc<Vec<Variable>>, DapError> {
        self.get_or_fetch_degraded(key, fetch)
            .map(|(value, _)| value)
    }

    /// Like [`get_or_fetch`](Self::get_or_fetch), but also reports whether
    /// the value is a stale entry served because the refresh failed
    /// (`true` = degraded).
    ///
    /// Stale serving only applies to transient faults
    /// ([`DapError::is_retryable`]) and [`DapError::Unavailable`]; a
    /// permanent request error (unknown dataset, bad constraint) always
    /// propagates, since stale data would mask a real catalog change.
    pub fn get_or_fetch_degraded(
        &self,
        key: &str,
        fetch: impl FnOnce() -> Result<Vec<Variable>, DapError>,
    ) -> Result<(Arc<Vec<Variable>>, bool), DapError> {
        let now = self.clock.now();
        if self.window > Duration::ZERO {
            let entries = self.entries.read();
            if let Some((at, value)) = entries.get(key) {
                if now.saturating_sub(*at) < self.window {
                    self.hits.inc();
                    applab_obs::querystats::cache_hit();
                    return Ok((value.clone(), false));
                }
            }
        }
        self.misses.inc();
        applab_obs::querystats::cache_miss();
        match fetch() {
            Ok(value) => {
                let value = Arc::new(value);
                if self.window > Duration::ZERO {
                    self.entries
                        .write()
                        .insert(key.to_string(), (now, value.clone()));
                }
                Ok((value, false))
            }
            Err(e) => {
                let transient = e.is_retryable() || matches!(e, DapError::Unavailable { .. });
                if transient && self.grace > Duration::ZERO && self.window > Duration::ZERO {
                    let entries = self.entries.read();
                    if let Some((at, value)) = entries.get(key) {
                        if now.saturating_sub(*at) < self.window + self.grace {
                            self.stale.inc();
                            applab_obs::querystats::cache_hit();
                            applab_obs::degrade::mark(key);
                            return Ok((value.clone(), true));
                        }
                    }
                }
                Err(e)
            }
        }
    }

    /// Drop entries past `window + grace` (housekeeping; correctness never
    /// depends on it). Entries inside the stale-grace period survive — they
    /// are still a valid degraded answer if the upstream goes down.
    pub fn evict_expired(&self) {
        let now = self.clock.now();
        let keep = self.window + self.grace;
        self.entries
            .write()
            .retain(|_, (at, _)| now.saturating_sub(*at) < keep);
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Inclusive index range of sorted `values` within `[lo, hi]`.
fn index_range(values: &[f64], lo: f64, hi: f64) -> Option<Range> {
    let start = values.iter().position(|&v| v >= lo)?;
    let stop = values.iter().rposition(|&v| v <= hi)?;
    if stop < start {
        return None;
    }
    Some(Range::new(start, 1, stop))
}

/// Shared base for the two viewport fetchers: knows the dataset's lat/lon
/// coordinate arrays so envelopes can be translated to index ranges.
struct GridInfo {
    client: Arc<DapClient>,
    dataset: String,
    variable: String,
    lats: Vec<f64>,
    lons: Vec<f64>,
}

impl GridInfo {
    fn open(client: Arc<DapClient>, dataset: &str, variable: &str) -> Result<Self, DapError> {
        let coords = client.get_data(dataset, &Constraint::parse("lat,lon").expect("static"))?;
        let lats = coords
            .iter()
            .find(|v| v.name == "lat")
            .ok_or_else(|| DapError::NoSuchVariable("lat".into()))?
            .data
            .data()
            .to_vec();
        let lons = coords
            .iter()
            .find(|v| v.name == "lon")
            .ok_or_else(|| DapError::NoSuchVariable("lon".into()))?
            .data
            .data()
            .to_vec();
        Ok(GridInfo {
            client,
            dataset: dataset.to_string(),
            variable: variable.to_string(),
            lats,
            lons,
        })
    }

    /// Fetch the (time_idx, lat-range, lon-range) subset for an envelope.
    fn fetch_envelope(&self, env: &Envelope, time_idx: usize) -> Result<Vec<Variable>, DapError> {
        let lat_range = index_range(&self.lats, env.min_y, env.max_y)
            .ok_or_else(|| DapError::Constraint("viewport selects no latitudes".into()))?;
        let lon_range = index_range(&self.lons, env.min_x, env.max_x)
            .ok_or_else(|| DapError::Constraint("viewport selects no longitudes".into()))?;
        let constraint = Constraint::variable(
            self.variable.clone(),
            vec![Range::index(time_idx), lat_range, lon_range],
        );
        self.client.get_data(&self.dataset, &constraint)
    }

    fn domain(&self) -> Envelope {
        Envelope::new(
            self.lons.first().copied().unwrap_or(-180.0),
            self.lats.first().copied().unwrap_or(-90.0),
            self.lons.last().copied().unwrap_or(180.0),
            self.lats.last().copied().unwrap_or(90.0),
        )
    }
}

/// Statistics from serving one viewport request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FetchStats {
    /// Cache units (tiles or bboxes) the request decomposed into.
    pub requests: usize,
    /// How many were answered from cache.
    pub cache_hits: usize,
}

/// DAP-style fetcher: viewports snap to index-aligned tiles of a fixed
/// grid, so recurring and overlapping viewports share cache entries.
pub struct TiledFetcher {
    info: GridInfo,
    grid: TileGrid,
    zoom: u8,
    cache: SubsetCache,
}

impl TiledFetcher {
    pub fn open(
        client: Arc<DapClient>,
        dataset: &str,
        variable: &str,
        zoom: u8,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, DapError> {
        let info = GridInfo::open(client, dataset, variable)?;
        let grid = TileGrid::new(info.domain());
        Ok(TiledFetcher {
            info,
            grid,
            zoom,
            // Session-length cache: the viewport workload is interactive.
            cache: SubsetCache::new(Duration::from_secs(3600), clock),
        })
    }

    /// Serve a viewport: fetch every covering tile (from cache when
    /// possible).
    pub fn fetch_viewport(
        &self,
        viewport: &Envelope,
        time_idx: usize,
    ) -> Result<FetchStats, DapError> {
        applab_obs::counter!("applab_sdl_tiled_viewports_total").inc();
        let mut span = applab_obs::span("sdl.viewport");
        span.record("fetcher", "tiled");
        let tiles = self.grid.covering(viewport, self.zoom);
        let mut stats = FetchStats {
            requests: tiles.len(),
            cache_hits: 0,
        };
        for tile in tiles {
            let key = format!(
                "{}:{}:{}/{}/{}@{}",
                self.info.dataset, self.info.variable, tile.zoom, tile.col, tile.row, time_idx
            );
            let before = self.cache.hits();
            let env = self.grid.tile_envelope(tile);
            self.cache.get_or_fetch(&key, || {
                match self.info.fetch_envelope(&env, time_idx) {
                    Ok(vars) => Ok(vars),
                    // A tile fully outside the data extent caches empty.
                    Err(DapError::Constraint(_)) => Ok(Vec::new()),
                    Err(e) => Err(e),
                }
            })?;
            if self.cache.hits() > before {
                stats.cache_hits += 1;
            }
        }
        span.record("requests", stats.requests);
        span.record("cache_hits", stats.cache_hits);
        Ok(stats)
    }
}

/// WCS-style fetcher: each distinct bounding box is its own cache entry
/// ("when using the Web Coverage Service, there is limited possibility to
/// obtain client-specific parts of the datasets (one is limited to, for
/// example, a bounding-box)").
pub struct BboxFetcher {
    info: GridInfo,
    cache: SubsetCache,
}

impl BboxFetcher {
    pub fn open(
        client: Arc<DapClient>,
        dataset: &str,
        variable: &str,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, DapError> {
        let info = GridInfo::open(client, dataset, variable)?;
        Ok(BboxFetcher {
            info,
            cache: SubsetCache::new(Duration::from_secs(3600), clock),
        })
    }

    pub fn fetch_viewport(
        &self,
        viewport: &Envelope,
        time_idx: usize,
    ) -> Result<FetchStats, DapError> {
        applab_obs::counter!("applab_sdl_bbox_viewports_total").inc();
        let mut span = applab_obs::span("sdl.viewport");
        span.record("fetcher", "bbox");
        let key = format!(
            "{}:{}:{:.6}/{:.6}/{:.6}/{:.6}@{}",
            self.info.dataset,
            self.info.variable,
            viewport.min_x,
            viewport.min_y,
            viewport.max_x,
            viewport.max_y,
            time_idx
        );
        let before = self.cache.hits();
        self.cache.get_or_fetch(&key, || {
            match self.info.fetch_envelope(viewport, time_idx) {
                Ok(vars) => Ok(vars),
                Err(DapError::Constraint(_)) => Ok(Vec::new()),
                Err(e) => Err(e),
            }
        })?;
        let stats = FetchStats {
            requests: 1,
            cache_hits: (self.cache.hits() - before) as usize,
        };
        span.record("requests", stats.requests);
        span.record("cache_hits", stats.cache_hits);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_dap::clock::ManualClock;
    use applab_dap::server::grid_dataset;
    use applab_dap::transport::Local;
    use applab_dap::DapServer;

    fn client() -> Arc<DapClient> {
        let server = DapServer::new();
        let lats: Vec<f64> = (0..100).map(|i| 40.0 + i as f64 * 0.1).collect();
        let lons: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        server.publish(grid_dataset(
            "lai",
            &[0.0, 1.0],
            &lats,
            &lons,
            |t, la, lo| (t + la + lo) as f64,
        ));
        Arc::new(DapClient::new(Arc::new(server), Arc::new(Local::new())))
    }

    #[test]
    fn window_expiry() {
        let clock = ManualClock::new();
        let cache = SubsetCache::new(Duration::from_secs(600), clock.clone());
        let mut calls = 0;
        for _ in 0..3 {
            cache
                .get_or_fetch("k", || {
                    calls += 1;
                    Ok(vec![])
                })
                .unwrap();
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 2);
        clock.advance(Duration::from_secs(601));
        cache
            .get_or_fetch("k", || {
                calls += 1;
                Ok(vec![])
            })
            .unwrap();
        assert_eq!(calls, 2);
        cache.evict_expired();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_window_disables_caching() {
        let clock = ManualClock::new();
        let cache = SubsetCache::new(Duration::ZERO, clock);
        let mut calls = 0;
        for _ in 0..3 {
            cache
                .get_or_fetch("k", || {
                    calls += 1;
                    Ok(vec![])
                })
                .unwrap();
        }
        assert_eq!(calls, 3);
        assert!(cache.is_empty());
    }

    #[test]
    fn errors_are_not_cached() {
        let clock = ManualClock::new();
        let cache = SubsetCache::new(Duration::from_secs(600), clock);
        let r = cache.get_or_fetch("k", || Err(DapError::NoSuchDataset("x".into())));
        assert!(r.is_err());
        let mut called = false;
        cache
            .get_or_fetch("k", || {
                called = true;
                Ok(vec![])
            })
            .unwrap();
        assert!(called);
    }

    #[test]
    fn stale_grace_serves_expired_entry_on_transient_failure() {
        let clock = ManualClock::new();
        let cache = SubsetCache::new(Duration::from_secs(600), clock.clone())
            .with_stale_grace(Duration::from_secs(3600));
        cache.get_or_fetch("k", || Ok(vec![])).unwrap();
        clock.advance(Duration::from_secs(601));
        // Refresh fails transiently inside the grace window: stale serve.
        let scope = applab_obs::degrade::Scope::begin();
        let (value, degraded) = cache
            .get_or_fetch_degraded("k", || Err(DapError::Transport("down".into())))
            .unwrap();
        assert!(degraded);
        assert!(value.is_empty());
        assert!(scope.degraded(), "stale serve must mark the degrade scope");
        assert_eq!(cache.stale_serves(), 1);
        // Past window + grace: the error propagates.
        clock.advance(Duration::from_secs(3601));
        let r = cache.get_or_fetch_degraded("k", || Err(DapError::Transport("down".into())));
        assert!(r.is_err());
    }

    #[test]
    fn permanent_errors_never_serve_stale() {
        let clock = ManualClock::new();
        let cache = SubsetCache::new(Duration::from_secs(600), clock.clone())
            .with_stale_grace(Duration::from_secs(3600));
        cache.get_or_fetch("k", || Ok(vec![])).unwrap();
        clock.advance(Duration::from_secs(601));
        let r = cache.get_or_fetch_degraded("k", || Err(DapError::NoSuchDataset("k".into())));
        assert_eq!(r.unwrap_err(), DapError::NoSuchDataset("k".into()));
        assert_eq!(cache.stale_serves(), 0);
    }

    #[test]
    fn eviction_keeps_grace_entries() {
        let clock = ManualClock::new();
        let cache = SubsetCache::new(Duration::from_secs(600), clock.clone())
            .with_stale_grace(Duration::from_secs(3600));
        cache.get_or_fetch("k", || Ok(vec![])).unwrap();
        clock.advance(Duration::from_secs(601));
        cache.evict_expired();
        assert_eq!(cache.len(), 1, "entry inside grace survives eviction");
        clock.advance(Duration::from_secs(3600));
        cache.evict_expired();
        assert!(cache.is_empty(), "entry past window + grace is dropped");
    }

    #[test]
    fn tiled_fetcher_reuses_tiles_under_panning() {
        let clock = ManualClock::new();
        let f = TiledFetcher::open(client(), "lai", "LAI", 4, clock).unwrap();
        // First viewport: all misses.
        let v1 = Envelope::new(2.0, 44.0, 4.0, 46.0);
        let s1 = f.fetch_viewport(&v1, 0).unwrap();
        assert!(s1.requests > 0);
        assert_eq!(s1.cache_hits, 0);
        // Pan slightly: most tiles recur.
        let v2 = Envelope::new(2.3, 44.2, 4.3, 46.2);
        let s2 = f.fetch_viewport(&v2, 0).unwrap();
        assert!(s2.cache_hits > 0, "panning should hit cached tiles: {s2:?}");
        // Identical viewport: all hits.
        let s3 = f.fetch_viewport(&v2, 0).unwrap();
        assert_eq!(s3.cache_hits, s3.requests);
    }

    #[test]
    fn bbox_fetcher_misses_under_panning() {
        let clock = ManualClock::new();
        let f = BboxFetcher::open(client(), "lai", "LAI", clock).unwrap();
        let v1 = Envelope::new(2.0, 44.0, 4.0, 46.0);
        assert_eq!(f.fetch_viewport(&v1, 0).unwrap().cache_hits, 0);
        // Slightly different box: miss.
        let v2 = Envelope::new(2.01, 44.0, 4.01, 46.0);
        assert_eq!(f.fetch_viewport(&v2, 0).unwrap().cache_hits, 0);
        // Exact repeat: hit.
        assert_eq!(f.fetch_viewport(&v2, 0).unwrap().cache_hits, 1);
    }

    #[test]
    fn different_time_indexes_do_not_share() {
        let clock = ManualClock::new();
        let f = TiledFetcher::open(client(), "lai", "LAI", 3, clock).unwrap();
        let v = Envelope::new(2.0, 44.0, 4.0, 46.0);
        f.fetch_viewport(&v, 0).unwrap();
        let s = f.fetch_viewport(&v, 1).unwrap();
        assert_eq!(s.cache_hits, 0);
    }
}
