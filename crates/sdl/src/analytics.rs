//! RAMANI Cloud Analytics: on-the-fly temporal and spatial aggregations.
//!
//! These are the "derived variables" of Section 3.1: moving averages over
//! time (optionally restricted to a season, "summer-time"), spatial central
//! tendency over a region ("city-average"), and anomalies against a
//! long-term mean.

use applab_array::NdArray;

/// A time series of (epoch seconds, value) samples, time-ordered.
pub type TimeSeries = Vec<(i64, f64)>;

/// Centered moving average with window `k` samples on each side, NaN-aware.
pub fn moving_average(series: &TimeSeries, k: usize) -> TimeSeries {
    let n = series.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(k);
        let hi = (i + k).min(n - 1);
        let window = &series[lo..=hi];
        let (sum, count) = window
            .iter()
            .filter(|(_, v)| !v.is_nan())
            .fold((0.0, 0usize), |(s, c), (_, v)| (s + v, c + 1));
        let avg = if count == 0 {
            f64::NAN
        } else {
            sum / count as f64
        };
        out.push((series[i].0, avg));
    }
    out
}

/// Keep only samples whose month (UTC) is in `months` (1-based) — the
/// "summer-time" restriction.
pub fn filter_months(series: &TimeSeries, months: &[u32]) -> TimeSeries {
    series
        .iter()
        .copied()
        .filter(|(t, _)| {
            let days = t.div_euclid(86_400);
            let (_, m, _) = civil_from_days(days);
            months.contains(&m)
        })
        .collect()
}

/// Long-term mean of a series, NaN-aware.
pub fn long_term_mean(series: &TimeSeries) -> f64 {
    let (sum, count) = series
        .iter()
        .filter(|(_, v)| !v.is_nan())
        .fold((0.0, 0usize), |(s, c), (_, v)| (s + v, c + 1));
    if count == 0 {
        f64::NAN
    } else {
        sum / count as f64
    }
}

/// Anomaly series: each value minus the long-term mean.
pub fn anomalies(series: &TimeSeries) -> TimeSeries {
    let mean = long_term_mean(series);
    series.iter().map(|&(t, v)| (t, v - mean)).collect()
}

/// Spatial central tendency over a 2-D (or higher) subset — the
/// "city-average".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CentralTendency {
    Mean,
    Median,
    Min,
    Max,
}

/// Reduce an array subset to one number.
pub fn spatial_aggregate(data: &NdArray, how: CentralTendency) -> f64 {
    match how {
        CentralTendency::Mean => data.mean(),
        CentralTendency::Min => data.min(),
        CentralTendency::Max => data.max(),
        CentralTendency::Median => {
            let mut vals: Vec<f64> = data
                .data()
                .iter()
                .copied()
                .filter(|v| !v.is_nan())
                .collect();
            if vals.is_empty() {
                return f64::NAN;
            }
            vals.sort_by(f64::total_cmp);
            let mid = vals.len() / 2;
            if vals.len() % 2 == 1 {
                vals[mid]
            } else {
                (vals[mid - 1] + vals[mid]) / 2.0
            }
        }
    }
}

/// Resample a 2-D array to `(rows, cols)` by nearest neighbour — the
/// getMap display path.
pub fn resample_nearest(data: &NdArray, rows: usize, cols: usize) -> NdArray {
    assert_eq!(data.ndim(), 2, "resample_nearest expects a 2-D array");
    let (src_rows, src_cols) = (data.shape()[0], data.shape()[1]);
    let mut out = NdArray::zeros(vec![rows, cols]);
    for r in 0..rows {
        for c in 0..cols {
            let sr = ((r as f64 + 0.5) / rows as f64 * src_rows as f64) as usize;
            let sc = ((c as f64 + 0.5) / cols as f64 * src_cols as f64) as usize;
            let v = data
                .get(&[sr.min(src_rows - 1), sc.min(src_cols - 1)])
                .expect("in bounds");
            out.set(&[r, c], v).expect("in bounds");
        }
    }
    out
}

// Proleptic Gregorian conversion (same as applab-rdf::datetime; this crate
// does not depend on the RDF model).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        (0..10).map(|i| (i as i64 * 86_400, i as f64)).collect()
    }

    #[test]
    fn moving_average_smooths() {
        let ma = moving_average(&series(), 1);
        assert_eq!(ma.len(), 10);
        assert_eq!(ma[0].1, 0.5); // (0+1)/2
        assert_eq!(ma[5].1, 5.0); // (4+5+6)/3
        assert_eq!(ma[9].1, 8.5); // (8+9)/2
    }

    #[test]
    fn moving_average_skips_nan() {
        let mut s = series();
        s[5].1 = f64::NAN;
        let ma = moving_average(&s, 1);
        assert_eq!(ma[5].1, 5.0); // (4+6)/2
        let all_nan: TimeSeries = vec![(0, f64::NAN)];
        assert!(moving_average(&all_nan, 2)[0].1.is_nan());
    }

    #[test]
    fn summer_filter() {
        // Daily samples over 2017.
        let start = 17_167i64 * 86_400; // 2017-01-01
        let s: TimeSeries = (0..365).map(|d| (start + d * 86_400, d as f64)).collect();
        let summer = filter_months(&s, &[6, 7, 8]);
        assert_eq!(summer.len(), 30 + 31 + 31);
    }

    #[test]
    fn anomalies_sum_to_zero() {
        let a = anomalies(&series());
        let total: f64 = a.iter().map(|(_, v)| v).sum();
        assert!(total.abs() < 1e-9);
    }

    #[test]
    fn central_tendencies() {
        let data = NdArray::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, f64::NAN]).unwrap();
        assert_eq!(spatial_aggregate(&data, CentralTendency::Mean), 3.0);
        assert_eq!(spatial_aggregate(&data, CentralTendency::Median), 3.0);
        assert_eq!(spatial_aggregate(&data, CentralTendency::Min), 1.0);
        assert_eq!(spatial_aggregate(&data, CentralTendency::Max), 5.0);
        let even = NdArray::vector(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(spatial_aggregate(&even, CentralTendency::Median), 2.5);
    }

    #[test]
    fn resampling() {
        let data = NdArray::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let up = resample_nearest(&data, 4, 4);
        assert_eq!(up.shape(), &[4, 4]);
        assert_eq!(up.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(up.get(&[3, 3]).unwrap(), 4.0);
        let down = resample_nearest(&up, 1, 1);
        assert_eq!(down.len(), 1);
    }
}
