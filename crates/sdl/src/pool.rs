//! A crossbeam worker pool.
//!
//! The paper runs the RAMANI Cloud Analytics containers under Kubernetes
//! ("we used Kubernetes for managing the containerized applications across
//! multiple hosts"); at laptop scale the equivalent is a fixed pool of
//! worker threads draining a job queue. The pool is also reused by the
//! GeoTriples parallel mapping processor's consumers.

use crossbeam::channel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Run `jobs` on `workers` threads, preserving input order in the output.
pub fn run_parallel<T, R, F>(workers: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1);
    if workers == 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    let n = jobs.len();
    let (job_tx, job_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    for (i, job) in jobs.into_iter().enumerate() {
        job_tx.send((i, job)).expect("queue open");
    }
    drop(job_tx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, job)) = job_rx.recv() {
                    let _ = res_tx.send((i, f(job)));
                }
            });
        }
        drop(res_tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((i, r)) = res_rx.recv() {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("every job ran")).collect()
    })
}

/// The error [`WorkerPool::shutdown`] reports when jobs panicked: the
/// jobs were isolated (their panics did not strand a worker or poison the
/// queue) but their work was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolPanics {
    /// Number of submitted jobs that panicked.
    pub jobs: u64,
}

impl std::fmt::Display for PoolPanics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} pool job(s) panicked", self.jobs)
    }
}

impl std::error::Error for PoolPanics {}

/// A long-lived pool for fire-and-forget jobs (the "deployment,
/// maintenance, and scaling" part: jobs submitted while the pool runs).
///
/// A panicking job no longer kills its worker thread: panics are caught,
/// counted (`applab_sdl_pool_panicked_jobs_total`), and surfaced when the
/// pool [shuts down](Self::shutdown); the worker keeps draining the queue.
pub struct WorkerPool {
    job_tx: Option<channel::Sender<Box<dyn FnOnce() + Send>>>,
    handles: Vec<JoinHandle<()>>,
    panicked: Arc<AtomicU64>,
}

impl WorkerPool {
    pub fn new(workers: usize) -> Self {
        let (job_tx, job_rx) = channel::unbounded::<Box<dyn FnOnce() + Send>>();
        let panicked = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = job_rx.clone();
                let panicked = panicked.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // AssertUnwindSafe: the job is FnOnce + Send and is
                        // consumed here; nothing of it survives the unwind.
                        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                            panicked.fetch_add(1, Ordering::Relaxed);
                            applab_obs::counter!("applab_sdl_pool_panicked_jobs_total").inc();
                            // The pool serves the DAP fetch path; ops
                            // dashboards watch the dap-prefixed series.
                            applab_obs::counter!("applab_dap_worker_panics_total").inc();
                        }
                    }
                })
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            handles,
            panicked,
        }
    }

    /// Submit a job. Panics if the pool is already shut down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.job_tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Jobs that panicked so far.
    pub fn panicked_jobs(&self) -> u64 {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Wait for all submitted jobs to finish and stop the workers.
    /// Reports how many jobs panicked along the way, if any.
    pub fn shutdown(mut self) -> Result<(), PoolPanics> {
        self.job_tx.take(); // close the queue
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        match self.panicked.load(Ordering::Relaxed) {
            0 => Ok(()),
            jobs => Err(PoolPanics { jobs }),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.job_tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = run_parallel(4, jobs.clone(), |x| x * 2);
        assert_eq!(out, jobs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_single_worker() {
        let out = run_parallel(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn run_parallel_empty() {
        let out: Vec<u64> = run_parallel(4, Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_runs_submitted_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::new(4);
        for _ in 0..50 {
            let c = counter.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown().expect("no panicking jobs");
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panicking_jobs_are_isolated_and_reported() {
        let counter = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::new(2);
        for i in 0..20 {
            let c = counter.clone();
            pool.submit(move || {
                if i % 5 == 0 {
                    panic!("job {i} exploded");
                }
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Workers survive the panics and drain every job.
        let err = pool.shutdown().expect_err("panics must be surfaced");
        assert_eq!(err, PoolPanics { jobs: 4 });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panicked_jobs_counter_is_live() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("boom"));
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        // A job *after* the panic still runs on the same worker.
        pool.submit(move || {
            d.store(1, Ordering::SeqCst);
        });
        while done.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.panicked_jobs(), 1);
        assert!(pool.shutdown().is_err());
    }

    /// Caught worker panics are visible in the global registry *live*
    /// (not only at shutdown): the ops counter increments as soon as
    /// the panic is caught.
    #[test]
    fn worker_panics_increment_the_global_counter() {
        // The global registry is shared across tests in this binary:
        // assert on the delta, not the absolute value.
        let counter = applab_obs::global().counter("applab_dap_worker_panics_total");
        let before = counter.get();
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("boom"));
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        pool.submit(move || {
            d.store(1, Ordering::SeqCst);
        });
        while done.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(counter.get(), before + 1);
        assert!(pool.shutdown().is_err());
    }

    #[test]
    fn pool_drop_is_graceful() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..10 {
                let c = counter.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropped without explicit shutdown.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
