//! Dataset cataloguing and discovery.
//!
//! Section 5 of the paper: "we designed an extension to the community
//! vocabulary schema.org, appropriate for annotating EO data in general and
//! Copernicus data in particular, by extending the class Dataset with
//! subclasses and properties which cover the EO dataset metadata defined in
//! the specification OGC 17-003". The goal (Section 1) is that a search
//! engine can answer: *"Is there a land cover dataset produced by the
//! European Environmental Agency covering the area of Torino, Italy?"*
//!
//! * [`schema_org`] — the `schema:Dataset` + EO-extension model, with
//!   JSON-LD and RDF serializations;
//! * [`index`] — a keyword + spatial + facet search index answering the
//!   motivating query locally.
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod index;
pub mod schema_org;

pub use index::{CatalogIndex, SearchQuery};
pub use schema_org::{EoDataset, EoExtension};
