//! Dataset search.
//!
//! A small inverted-index + spatial-filter search engine over catalogued
//! datasets — the local stand-in for Google Dataset Search consuming the
//! schema.org annotations. It answers the paper's motivating question:
//! "Is there a land cover dataset produced by the European Environmental
//! Agency covering the area of Torino, Italy?"

use crate::schema_org::EoDataset;
use applab_geo::{Coord, Envelope};
use std::collections::{HashMap, HashSet};

/// A search request.
#[derive(Debug, Clone, Default)]
pub struct SearchQuery {
    /// Free-text terms matched against name, description and keywords.
    pub text: Vec<String>,
    /// Substring match against the creator organization.
    pub creator: Option<String>,
    /// A location the dataset must cover.
    pub covering: Option<Coord>,
    /// An area the dataset must intersect.
    pub intersecting: Option<Envelope>,
    /// Product-type facet (EO extension).
    pub product_type: Option<String>,
    /// Maximum ground resolution in metres (finer or equal).
    pub max_resolution_m: Option<f64>,
}

impl SearchQuery {
    pub fn text(terms: &[&str]) -> Self {
        SearchQuery {
            text: terms.iter().map(|t| t.to_lowercase()).collect(),
            ..SearchQuery::default()
        }
    }

    pub fn creator(mut self, c: &str) -> Self {
        self.creator = Some(c.to_lowercase());
        self
    }

    pub fn covering(mut self, c: Coord) -> Self {
        self.covering = Some(c);
        self
    }

    pub fn intersecting(mut self, e: Envelope) -> Self {
        self.intersecting = Some(e);
        self
    }

    pub fn product_type(mut self, t: &str) -> Self {
        self.product_type = Some(t.to_lowercase());
        self
    }
}

/// A scored hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    pub id: String,
    pub score: f64,
}

/// The catalog index.
#[derive(Debug, Default)]
pub struct CatalogIndex {
    datasets: Vec<EoDataset>,
    by_id: HashMap<String, usize>,
    /// token → dataset indexes.
    inverted: HashMap<String, Vec<usize>>,
}

fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

impl CatalogIndex {
    pub fn new() -> Self {
        CatalogIndex::default()
    }

    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Register (or replace) a dataset annotation.
    pub fn add(&mut self, dataset: EoDataset) {
        if let Some(&i) = self.by_id.get(&dataset.id) {
            // Replace: rebuild is simplest and catalogs are small.
            self.datasets[i] = dataset;
            self.rebuild();
            return;
        }
        let idx = self.datasets.len();
        self.by_id.insert(dataset.id.clone(), idx);
        self.index_tokens(&dataset, idx);
        self.datasets.push(dataset);
    }

    fn rebuild(&mut self) {
        self.inverted.clear();
        self.by_id.clear();
        for (i, d) in self.datasets.iter().enumerate() {
            self.by_id.insert(d.id.clone(), i);
        }
        let datasets = std::mem::take(&mut self.datasets);
        for (i, d) in datasets.iter().enumerate() {
            self.index_tokens(d, i);
        }
        self.datasets = datasets;
    }

    fn index_tokens(&mut self, d: &EoDataset, idx: usize) {
        let mut tokens: HashSet<String> = HashSet::new();
        tokens.extend(tokenize(&d.name));
        tokens.extend(tokenize(&d.description));
        for k in &d.keywords {
            tokens.extend(tokenize(k));
        }
        if let Some(t) = &d.eo.product_type {
            tokens.extend(tokenize(t));
        }
        for t in tokens {
            self.inverted.entry(t).or_default().push(idx);
        }
    }

    pub fn get(&self, id: &str) -> Option<&EoDataset> {
        self.by_id.get(id).map(|&i| &self.datasets[i])
    }

    /// Run a search; hits are sorted by descending score (fraction of text
    /// terms matched; facet filters are hard constraints).
    pub fn search(&self, query: &SearchQuery) -> Vec<Hit> {
        let candidates: Vec<usize> = if query.text.is_empty() {
            (0..self.datasets.len()).collect()
        } else {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for term in &query.text {
                if let Some(ids) = self.inverted.get(term) {
                    for &i in ids {
                        *counts.entry(i).or_insert(0) += 1;
                    }
                }
            }
            counts.keys().copied().collect()
        };

        let mut hits: Vec<Hit> = candidates
            .into_iter()
            .filter_map(|i| {
                let d = &self.datasets[i];
                // Facets.
                if let Some(c) = &query.creator {
                    if !d.creator.to_lowercase().contains(c) {
                        return None;
                    }
                }
                if let Some(p) = &query.covering {
                    if !d.spatial_coverage.is_some_and(|e| e.contains_coord(*p)) {
                        return None;
                    }
                }
                if let Some(env) = &query.intersecting {
                    if !d.spatial_coverage.is_some_and(|e| e.intersects(env)) {
                        return None;
                    }
                }
                if let Some(t) = &query.product_type {
                    if d.eo
                        .product_type
                        .as_ref()
                        .is_none_or(|pt| !pt.to_lowercase().contains(t))
                    {
                        return None;
                    }
                }
                if let Some(max) = query.max_resolution_m {
                    if d.eo.resolution_m.is_none_or(|r| r > max) {
                        return None;
                    }
                }
                // Score: matched text fraction (1.0 for facet-only queries).
                let score = if query.text.is_empty() {
                    1.0
                } else {
                    let matched = query
                        .text
                        .iter()
                        .filter(|t| self.inverted.get(*t).is_some_and(|ids| ids.contains(&i)))
                        .count();
                    if matched == 0 {
                        return None;
                    }
                    matched as f64 / query.text.len() as f64
                };
                Some(Hit {
                    id: d.id.clone(),
                    score,
                })
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_org::{corine_annotation, EoExtension};

    fn lai_annotation() -> EoDataset {
        EoDataset {
            id: "http://data.example.org/datasets/cgls-lai-300m".into(),
            name: "Copernicus Global Land LAI 300m".into(),
            description: "Leaf area index time series from PROBA-V".into(),
            keywords: vec!["LAI".into(), "vegetation".into(), "global land".into()],
            creator: "VITO".into(),
            license: None,
            url: None,
            spatial_coverage: Some(Envelope::new(-180.0, -60.0, 180.0, 80.0)),
            temporal_coverage: None,
            eo: EoExtension {
                platform: Some("PROBA-V".into()),
                product_type: Some("LAI".into()),
                resolution_m: Some(300.0),
                ..EoExtension::default()
            },
        }
    }

    fn index() -> CatalogIndex {
        let mut idx = CatalogIndex::new();
        idx.add(corine_annotation());
        idx.add(lai_annotation());
        idx
    }

    /// The motivating query of the paper's introduction.
    #[test]
    fn torino_land_cover_question() {
        let idx = index();
        let torino = Coord::new(7.68, 45.07);
        let q = SearchQuery::text(&["land", "cover"])
            .creator("european environment")
            .covering(torino);
        let hits = idx.search(&q);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].id.contains("corine"));
        assert_eq!(hits[0].score, 1.0);
    }

    #[test]
    fn spatial_facet_excludes() {
        let idx = index();
        // Somewhere in the Pacific — outside CORINE's Europe coverage. The
        // global LAI dataset still matches "land" (keyword "global land"),
        // with a partial-text score.
        let q = SearchQuery::text(&["land", "cover"]).covering(Coord::new(-150.0, 0.0));
        let hits = idx.search(&q);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].id.contains("lai"));
        assert!(hits[0].score < 1.0);
        // Restricting by product type removes it.
        let q = SearchQuery::text(&["land", "cover"])
            .covering(Coord::new(-150.0, 0.0))
            .product_type("land cover");
        assert!(idx.search(&q).is_empty());
        // The global LAI dataset covers it.
        let q = SearchQuery::text(&["lai"]).covering(Coord::new(-150.0, 0.0));
        assert_eq!(idx.search(&q).len(), 1);
    }

    #[test]
    fn partial_text_scores_lower() {
        let idx = index();
        let q = SearchQuery::text(&["vegetation", "nonexistentterm"]);
        let hits = idx.search(&q);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].score < 1.0);
    }

    #[test]
    fn facet_only_search() {
        let idx = index();
        let q = SearchQuery::default().product_type("lai");
        let hits = idx.search(&q);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].id.contains("lai"));
        let q = SearchQuery {
            max_resolution_m: Some(150.0),
            ..SearchQuery::default()
        };
        let hits = idx.search(&q);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].id.contains("corine"));
    }

    #[test]
    fn replace_reindexes() {
        let mut idx = index();
        let mut updated = lai_annotation();
        updated.keywords.push("replaced".into());
        idx.add(updated);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.search(&SearchQuery::text(&["replaced"])).len(), 1);
    }

    #[test]
    fn empty_catalog() {
        let idx = CatalogIndex::new();
        assert!(idx.is_empty());
        assert!(idx.search(&SearchQuery::text(&["anything"])).is_empty());
        assert!(idx.get("http://nope").is_none());
    }
}
