//! The schema.org `Dataset` annotation with the EO extension.
//!
//! The EO extension fields follow OGC 17-003 (EO product metadata in
//! GeoJSON(-LD)): platform, instrument, processing level, product type,
//! acquisition window — "extending the class Dataset with subclasses and
//! properties, which cover the EO dataset metadata defined in the
//! specification OGC 17-003".

use applab_geo::Envelope;
use applab_rdf::{vocab, Graph, Literal, NamedNode, Resource, Term};

/// The EO-specific extension properties (OGC 17-003 subset).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EoExtension {
    /// Satellite / mission (e.g. "PROBA-V", "Sentinel-2").
    pub platform: Option<String>,
    /// Sensing instrument.
    pub instrument: Option<String>,
    /// EO processing level ("L0" raw ... "L3"/"L4" products).
    pub processing_level: Option<String>,
    /// Product type (e.g. "LAI", "NDVI", "land cover").
    pub product_type: Option<String>,
    /// Ground sampling distance in metres.
    pub resolution_m: Option<f64>,
}

/// A catalogued dataset: the schema.org core plus the EO extension.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EoDataset {
    /// Stable identifier (IRI).
    pub id: String,
    pub name: String,
    pub description: String,
    pub keywords: Vec<String>,
    /// Producing organization (e.g. "European Environment Agency").
    pub creator: String,
    pub license: Option<String>,
    pub url: Option<String>,
    /// Spatial coverage.
    pub spatial_coverage: Option<Envelope>,
    /// Temporal coverage (epoch seconds).
    pub temporal_coverage: Option<(i64, i64)>,
    pub eo: EoExtension,
}

/// The EO extension namespace.
pub const EO_NS: &str = "http://www.app-lab.eu/schema-eo/";

impl EoDataset {
    /// JSON-LD annotation of the dataset, as embedded in a web page for
    /// dataset search ("the on-page markup allows search engines to
    /// understand information included in web pages").
    pub fn to_json_ld(&self) -> String {
        let mut fields: Vec<String> = vec![
            "\"@context\": \"https://schema.org/\"".to_string(),
            "\"@type\": [\"Dataset\", \"eo:EarthObservationDataset\"]".to_string(),
            format!("\"@id\": {}", json_str(&self.id)),
            format!("\"name\": {}", json_str(&self.name)),
            format!("\"description\": {}", json_str(&self.description)),
        ];
        let kw = self
            .keywords
            .iter()
            .map(|k| json_str(k))
            .collect::<Vec<_>>()
            .join(", ");
        fields.push(format!("\"keywords\": [{kw}]"));
        fields.push(format!(
            "\"creator\": {{\"@type\": \"Organization\", \"name\": {}}}",
            json_str(&self.creator)
        ));
        if let Some(l) = &self.license {
            fields.push(format!("\"license\": {}", json_str(l)));
        }
        if let Some(u) = &self.url {
            fields.push(format!("\"url\": {}", json_str(u)));
        }
        if let Some(e) = &self.spatial_coverage {
            fields.push(format!(
                "\"spatialCoverage\": {{\"@type\": \"Place\", \"geo\": {{\"@type\": \"GeoShape\", \"box\": \"{} {} {} {}\"}}}}",
                e.min_y, e.min_x, e.max_y, e.max_x
            ));
        }
        if let Some((start, end)) = self.temporal_coverage {
            fields.push(format!(
                "\"temporalCoverage\": \"{}/{}\"",
                applab_rdf::datetime::format_date(start),
                applab_rdf::datetime::format_date(end)
            ));
        }
        if let Some(p) = &self.eo.platform {
            fields.push(format!("\"eo:platform\": {}", json_str(p)));
        }
        if let Some(i) = &self.eo.instrument {
            fields.push(format!("\"eo:instrument\": {}", json_str(i)));
        }
        if let Some(l) = &self.eo.processing_level {
            fields.push(format!("\"eo:processingLevel\": {}", json_str(l)));
        }
        if let Some(t) = &self.eo.product_type {
            fields.push(format!("\"eo:productType\": {}", json_str(t)));
        }
        if let Some(r) = self.eo.resolution_m {
            fields.push(format!("\"eo:resolution\": {r}"));
        }
        let mut out = String::from("{\n  ");
        out.push_str(&fields.join(",\n  "));
        out.push_str("\n}\n");
        out
    }

    /// RDF annotation (the same content as triples, for the linked-data
    /// side of the catalog).
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new();
        let id = Resource::named(&*self.id);
        let eo_class = format!("{EO_NS}EarthObservationDataset");
        g.add(
            id.clone(),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::schema::DATASET),
        );
        g.add(
            id.clone(),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(eo_class),
        );
        g.add(
            id.clone(),
            NamedNode::new(vocab::schema::NAME),
            Literal::string(&*self.name),
        );
        g.add(
            id.clone(),
            NamedNode::new(vocab::schema::DESCRIPTION),
            Literal::string(&*self.description),
        );
        for k in &self.keywords {
            g.add(
                id.clone(),
                NamedNode::new(vocab::schema::KEYWORDS),
                Literal::string(k.clone()),
            );
        }
        g.add(
            id.clone(),
            NamedNode::new(vocab::schema::CREATOR),
            Literal::string(&*self.creator),
        );
        if let Some(l) = &self.license {
            g.add(
                id.clone(),
                NamedNode::new(vocab::schema::LICENSE),
                Literal::string(l.clone()),
            );
        }
        if let Some(u) = &self.url {
            g.add(
                id.clone(),
                NamedNode::new(vocab::schema::URL),
                Literal::string(u.clone()),
            );
        }
        if let Some(e) = &self.spatial_coverage {
            let wkt = format!(
                "POLYGON (({} {}, {} {}, {} {}, {} {}, {} {}))",
                e.min_x,
                e.min_y,
                e.max_x,
                e.min_y,
                e.max_x,
                e.max_y,
                e.min_x,
                e.max_y,
                e.min_x,
                e.min_y
            );
            g.add(
                id.clone(),
                NamedNode::new(vocab::schema::SPATIAL_COVERAGE),
                Literal::wkt(wkt),
            );
        }
        if let Some((start, end)) = self.temporal_coverage {
            g.add(
                id.clone(),
                NamedNode::new(format!("{EO_NS}coverageStart")),
                Literal::datetime(start),
            );
            g.add(
                id.clone(),
                NamedNode::new(format!("{EO_NS}coverageEnd")),
                Literal::datetime(end),
            );
        }
        for (field, value) in [
            ("platform", &self.eo.platform),
            ("instrument", &self.eo.instrument),
            ("processingLevel", &self.eo.processing_level),
            ("productType", &self.eo.product_type),
        ] {
            if let Some(v) = value {
                g.add(
                    id.clone(),
                    NamedNode::new(format!("{EO_NS}{field}")),
                    Literal::string(v.clone()),
                );
            }
        }
        if let Some(r) = self.eo.resolution_m {
            g.add(
                id,
                NamedNode::new(format!("{EO_NS}resolution")),
                Literal::double(r),
            );
        }
        g
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The CORINE land cover dataset annotation used across examples/tests.
pub fn corine_annotation() -> EoDataset {
    EoDataset {
        id: "http://data.example.org/datasets/corine-land-cover-2012".into(),
        name: "CORINE Land Cover 2012".into(),
        description: "Pan-European land cover and land use inventory with 44 thematic classes"
            .into(),
        keywords: vec![
            "land cover".into(),
            "land use".into(),
            "CORINE".into(),
            "pan-european".into(),
        ],
        creator: "European Environment Agency".into(),
        license: Some("https://creativecommons.org/licenses/by/4.0/".into()),
        url: Some("https://land.copernicus.eu/pan-european/corine-land-cover".into()),
        // Covers Europe.
        spatial_coverage: Some(Envelope::new(-25.0, 34.0, 45.0, 72.0)),
        temporal_coverage: Some((1_325_376_000, 1_356_998_400)), // 2012
        eo: EoExtension {
            platform: Some("Sentinel-2 / Landsat".into()),
            instrument: None,
            processing_level: Some("L3".into()),
            product_type: Some("land cover".into()),
            resolution_m: Some(100.0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_ld_is_valid_json_with_eo_fields() {
        let ds = corine_annotation();
        let doc = ds.to_json_ld();
        let parsed = applab_geotriples::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            parsed.get("@context").and_then(|v| v.as_str()),
            Some("https://schema.org/")
        );
        assert_eq!(
            parsed.get("name").and_then(|v| v.as_str()),
            Some("CORINE Land Cover 2012")
        );
        assert_eq!(
            parsed.get("eo:productType").and_then(|v| v.as_str()),
            Some("land cover")
        );
        assert!(doc.contains("spatialCoverage"));
        assert!(doc.contains("2012-01-01/2012-12-31") || doc.contains("temporalCoverage"));
    }

    #[test]
    fn rdf_annotation() {
        let ds = corine_annotation();
        let g = ds.to_graph();
        let id = Resource::named(&*ds.id);
        assert!(g
            .matching(
                Some(&id),
                Some(&NamedNode::new(vocab::rdf::TYPE)),
                Some(&Term::named(vocab::schema::DATASET))
            )
            .next()
            .is_some());
        // 4 keywords.
        assert_eq!(
            g.matching(
                Some(&id),
                Some(&NamedNode::new(vocab::schema::KEYWORDS)),
                None
            )
            .count(),
            4
        );
        // Spatial coverage is a parsable WKT literal.
        let cov = g
            .object_of(&id, &NamedNode::new(vocab::schema::SPATIAL_COVERAGE))
            .unwrap();
        assert!(cov.as_literal().unwrap().as_geometry().is_some());
    }

    #[test]
    fn minimal_dataset_serializes() {
        let ds = EoDataset {
            id: "http://x/d".into(),
            name: "D".into(),
            ..EoDataset::default()
        };
        assert!(applab_geotriples::json::parse(&ds.to_json_ld()).is_ok());
        assert!(ds.to_graph().len() >= 3);
    }
}
