//! The "greenness of Paris" case-study fixture (Section 4).
//!
//! A fixed-seed world over the Paris region with the Bois de Boulogne
//! pinned at its (approximate) real footprint, plus the monthly 2017 LAI
//! product over it.

use crate::grids::{lai_dataset, GridSpec};
use crate::world::{Poi, PoiKind, World, Zone};
use applab_array::Dataset;
use applab_geo::{Envelope, Polygon};

/// The Paris case-study fixture.
#[derive(Debug, Clone)]
pub struct ParisFixture {
    pub world: World,
    /// Monthly 2017 LAI over the region.
    pub lai: Dataset,
}

/// The approximate Bois de Boulogne footprint used by Listing 1 tests.
pub fn bois_de_boulogne() -> Polygon {
    Polygon::rect(2.21, 48.85, 2.27, 48.88)
}

/// The Paris region extent.
pub fn paris_extent() -> Envelope {
    Envelope::new(2.0, 48.7, 2.6, 49.0)
}

impl ParisFixture {
    /// Generate the fixture. `cells` controls vector density and
    /// `resolution` the LAI grid (use small values in unit tests).
    pub fn generate(seed: u64, cells: usize, resolution: usize) -> ParisFixture {
        let mut world = World::generate(seed, paris_extent(), cells);
        // Pin the Bois de Boulogne: overwrite the covering land-cover cells
        // with green urban and add the named park POI.
        let bois = bois_de_boulogne();
        let bois_env = bois.envelope();
        for area in &mut world.land_cover {
            if bois_env.contains_envelope(&area.polygon.envelope()) {
                area.clc_code = Zone::GreenUrban.clc_code();
            }
        }
        for area in &mut world.urban_atlas {
            if bois_env.contains_envelope(&area.polygon.envelope()) {
                area.ua_code = Zone::GreenUrban.ua_code();
            }
        }
        // Replace any generated park overlapping the footprint, then add
        // the real one.
        world
            .pois
            .retain(|p| !(p.kind == PoiKind::Park && bois_env.intersects(&p.polygon.envelope())));
        world.pois.push(Poi {
            id: world.pois.len(),
            name: "Bois de Boulogne".into(),
            kind: PoiKind::Park,
            polygon: bois,
        });
        let lai = lai_dataset(&world, &GridSpec::monthly_2017(resolution, seed));
        ParisFixture { world, lai }
    }

    /// The default fixture used across examples and integration tests.
    pub fn default_fixture() -> ParisFixture {
        ParisFixture::generate(2019, 24, 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_geo::{algorithms, Coord, Geometry};

    #[test]
    fn bois_de_boulogne_present_and_green() {
        let f = ParisFixture::generate(7, 16, 16);
        let bois: Vec<&Poi> = f
            .world
            .pois
            .iter()
            .filter(|p| p.name == "Bois de Boulogne")
            .collect();
        assert_eq!(bois.len(), 1);
        // Its interior is green urban land cover.
        let index = f.world.land_cover_index();
        let c = algorithms::centroid(&Geometry::Polygon(bois[0].polygon.clone())).unwrap();
        assert_eq!(f.world.zone_at(&index, c), Some(141));
    }

    #[test]
    fn lai_over_bois_exceeds_city_mean_in_summer() {
        let f = ParisFixture::generate(11, 20, 40);
        let lai = &f.lai.variable("LAI").unwrap().data;
        let lats = f.lai.coordinate("lat").unwrap().data.data().to_vec();
        let lons = f.lai.coordinate("lon").unwrap().data.data().to_vec();
        let bois = bois_de_boulogne();
        let (mut inside, mut outside) = (Vec::new(), Vec::new());
        for (la, &lat) in lats.iter().enumerate() {
            for (lo, &lon) in lons.iter().enumerate() {
                let v = lai.get(&[6, la, lo]).unwrap(); // July
                if v.is_nan() {
                    continue;
                }
                if algorithms::polygon_covers_point(&bois, Coord::new(lon, lat)) {
                    inside.push(v);
                } else {
                    outside.push(v);
                }
            }
        }
        assert!(!inside.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&inside) > mean(&outside),
            "{} vs {}",
            mean(&inside),
            mean(&outside)
        );
    }

    #[test]
    fn fixture_is_deterministic() {
        let a = ParisFixture::generate(3, 12, 12);
        let b = ParisFixture::generate(3, 12, 12);
        assert_eq!(a.world.pois.len(), b.world.pois.len());
        assert_eq!(
            a.lai.variable("LAI").unwrap().data,
            b.lai.variable("LAI").unwrap().data
        );
    }
}
