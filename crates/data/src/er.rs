//! Entity-resolution workloads for the interlinking benches.
//!
//! Produces two RDF graphs describing the same places with perturbed names
//! and positions (as when interlinking CORINE areas with OpenStreetMap),
//! plus the ground-truth match set for recall measurements.

use applab_rdf::{vocab, Graph, Literal, NamedNode, Resource, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated workload: two graphs plus ground truth (left IRI, right IRI).
#[derive(Debug, Clone)]
pub struct ErWorkload {
    pub left: Graph,
    pub right: Graph,
    pub truth: Vec<(String, String)>,
}

const PLACE_WORDS: &[&str] = &[
    "parc",
    "jardin",
    "bois",
    "square",
    "place",
    "promenade",
    "esplanade",
    "butte",
];
const NAME_WORDS: &[&str] = &[
    "saint", "martin", "victor", "hugo", "royal", "nord", "sud", "grand", "petit", "vert", "fleur",
    "roi", "reine", "pont", "mont",
];

fn place_name(rng: &mut StdRng, i: usize) -> String {
    format!(
        "{} {} {} {}",
        PLACE_WORDS[rng.gen_range(0..PLACE_WORDS.len())],
        NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())],
        NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())],
        i
    )
}

/// Introduce a typo: swap two adjacent characters.
fn perturb_name(rng: &mut StdRng, name: &str) -> String {
    let mut chars: Vec<char> = name.chars().collect();
    if chars.len() >= 4 {
        let i = rng.gen_range(0..chars.len() - 1);
        chars.swap(i, i + 1);
    }
    chars.into_iter().collect()
}

fn add_place(graph: &mut Graph, iri: &str, name: &str, x: f64, y: f64) {
    let s = Resource::named(iri);
    let g = Resource::named(format!("{iri}/geom"));
    graph.add(
        s.clone(),
        NamedNode::new(vocab::rdf::TYPE),
        Term::named(vocab::osm::POI),
    );
    graph.add(
        s.clone(),
        NamedNode::new(vocab::osm::HAS_NAME),
        Literal::string(name),
    );
    graph.add(
        s,
        NamedNode::new(vocab::geo::HAS_GEOMETRY),
        Term::named(format!("{iri}/geom")),
    );
    graph.add(
        g,
        NamedNode::new(vocab::geo::AS_WKT),
        Literal::wkt(format!("POINT ({x} {y})")),
    );
}

/// Generate a workload of `n` true matches plus `n/2` distractors per side.
pub fn workload(seed: u64, n: usize) -> ErWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut left = Graph::new();
    let mut right = Graph::new();
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let name = place_name(&mut rng, i);
        let x = rng.gen_range(2.0..2.6);
        let y = rng.gen_range(48.7..49.0);
        let li = format!("http://left.example.org/place/{i}");
        let ri = format!("http://right.example.org/place/{i}");
        add_place(&mut left, &li, &name, x, y);
        let typo = perturb_name(&mut rng, &name);
        add_place(
            &mut right,
            &ri,
            &typo,
            x + rng.gen_range(-0.002..0.002),
            y + rng.gen_range(-0.002..0.002),
        );
        truth.push((li, ri));
    }
    // Distractors: unmatched entities on both sides.
    for i in 0..n / 2 {
        let name = place_name(&mut rng, n + i);
        add_place(
            &mut left,
            &format!("http://left.example.org/only/{i}"),
            &name,
            rng.gen_range(2.0..2.6),
            rng.gen_range(48.7..49.0),
        );
        let name = place_name(&mut rng, 2 * n + i);
        add_place(
            &mut right,
            &format!("http://right.example.org/only/{i}"),
            &name,
            rng.gen_range(2.0..2.6),
            rng.gen_range(48.7..49.0),
        );
    }
    ErWorkload { left, right, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_determinism() {
        let w = workload(5, 20);
        assert_eq!(w.truth.len(), 20);
        // 30 entities per side, 4 triples each.
        assert_eq!(w.left.len(), 30 * 4);
        assert_eq!(w.right.len(), 30 * 4);
        let w2 = workload(5, 20);
        assert_eq!(w.truth, w2.truth);
        assert_eq!(w.left.len(), w2.left.len());
    }

    #[test]
    fn perturbation_is_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let name = "parc saint martin 4";
        let typo = perturb_name(&mut rng, name);
        assert_eq!(name.len(), typo.len());
        // Levenshtein distance ≤ 2 (one adjacent swap).
        let d = applab_link::similarity::levenshtein(name, &typo);
        assert!(d <= 2);
    }

    #[test]
    fn workload_is_linkable() {
        use applab_link::{discover_links, Comparison, Entity, LinkRule};
        let w = workload(9, 30);
        let left = Entity::all_from_graph(&w.left);
        let right = Entity::all_from_graph(&w.right);
        // Entities include the geometry nodes as subjects; filter to POIs
        // (those with names).
        let left: Vec<Entity> = left.into_iter().filter(|e| e.name.is_some()).collect();
        let right: Vec<Entity> = right.into_iter().filter(|e| e.name.is_some()).collect();
        let rule = LinkRule::same_as(
            vec![
                (Comparison::NameLevenshtein, 0.6),
                (Comparison::SpatialProximity { max_distance: 0.05 }, 0.4),
            ],
            0.8,
        );
        let result = discover_links(&left, &right, &rule);
        // Recall over ground truth should be high.
        let found: std::collections::HashSet<(String, String)> = result
            .links
            .iter()
            .map(|l| {
                (
                    l.left.as_named().unwrap().as_str().to_string(),
                    l.right.as_named().unwrap().as_str().to_string(),
                )
            })
            .collect();
        let recall = w
            .truth
            .iter()
            .filter(|(a, b)| found.contains(&(a.clone(), b.clone())))
            .count() as f64
            / w.truth.len() as f64;
        assert!(recall >= 0.8, "recall {recall}");
    }
}
