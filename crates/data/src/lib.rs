//! Synthetic Copernicus / OSM / GADM / CORINE / Urban Atlas data.
//!
//! The paper's datasets (Section 4) are real Copernicus products and open
//! geodata. This crate generates deterministic synthetic equivalents with
//! the same schemas and realistic statistical structure (DESIGN.md §2):
//!
//! * [`world`] — a synthetic city region: administrative units (GADM),
//!   CORINE land-cover areas, Urban Atlas areas, and OSM points of
//!   interest, all spatially consistent (parks sit on green land cover);
//! * [`grids`] — LAI/NDVI/Burnt-Area gridded products whose values depend
//!   on the underlying land cover plus seasonality and noise — so the
//!   paper's Figure 4 observation ("areas belonging to
//!   `clc:greenUrbanAreas` ... show higher LAI values over time than
//!   industrial areas") holds by construction *of the mechanism* (green
//!   pixels grow more leaf area), not by construction of the answer;
//! * [`paris`] — the fixed-seed "greenness of Paris" case-study fixture,
//!   including the Bois de Boulogne;
//! * [`er`] — dirty entity-resolution workloads for the interlinking
//!   benches;
//! * [`mappings`] — the GeoTriples mapping documents for all four vector
//!   datasets.
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod er;
pub mod grids;
pub mod mappings;
pub mod paris;
pub mod world;

pub use paris::ParisFixture;
pub use world::World;
