//! The synthetic world: administrative units, land cover, urban atlas
//! areas and points of interest over a city region.

use applab_geo::{Coord, Envelope, Geometry, Polygon, RTree};
use applab_geotriples::{Row, TabularSource, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A GADM-like administrative unit.
#[derive(Debug, Clone)]
pub struct AdminUnit {
    pub id: usize,
    pub name: String,
    pub level: u8,
    pub country: String,
    pub polygon: Polygon,
}

/// A CORINE-like land cover area.
#[derive(Debug, Clone)]
pub struct LandCoverArea {
    pub id: usize,
    /// Level-3 CLC code (111 ... 523).
    pub clc_code: u16,
    pub polygon: Polygon,
}

/// An Urban-Atlas-like area.
#[derive(Debug, Clone)]
pub struct UrbanAtlasArea {
    pub id: usize,
    /// UA code (11100 ... 50000).
    pub ua_code: u32,
    pub population: u32,
    pub polygon: Polygon,
}

/// The OSM POI kinds the case study uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoiKind {
    Park,
    Forest,
    Industrial,
}

impl PoiKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            PoiKind::Park => "park",
            PoiKind::Forest => "forest",
            PoiKind::Industrial => "industrial",
        }
    }
}

/// An OSM-like point of interest (with area geometry, like OSM landuse
/// polygons).
#[derive(Debug, Clone)]
pub struct Poi {
    pub id: usize,
    pub name: String,
    pub kind: PoiKind,
    pub polygon: Polygon,
}

/// The synthetic world.
#[derive(Debug, Clone)]
pub struct World {
    pub extent: Envelope,
    pub admin_units: Vec<AdminUnit>,
    pub land_cover: Vec<LandCoverArea>,
    pub urban_atlas: Vec<UrbanAtlasArea>,
    pub pois: Vec<Poi>,
}

/// The land-cover palette: zone kind → (CLC code, UA code, base LAI).
/// Base LAI is the long-term summer mean for pixels of that class; grids.rs
/// applies seasonality and noise on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zone {
    UrbanFabric,
    Industrial,
    GreenUrban,
    Forest,
    Agriculture,
    Water,
}

impl Zone {
    pub fn clc_code(&self) -> u16 {
        match self {
            Zone::UrbanFabric => 112, // discontinuous urban fabric
            Zone::Industrial => 121,  // industrial or commercial units
            Zone::GreenUrban => 141,  // green urban areas
            Zone::Forest => 311,      // broad-leaved forest
            Zone::Agriculture => 211, // non-irrigated arable land
            Zone::Water => 512,       // water bodies
        }
    }

    pub fn ua_code(&self) -> u32 {
        match self {
            Zone::UrbanFabric => 11210,
            Zone::Industrial => 12100,
            Zone::GreenUrban => 14100,
            Zone::Forest => 31000,
            Zone::Agriculture => 21000,
            Zone::Water => 50000,
        }
    }

    /// Long-term peak (summer) LAI for this class.
    pub fn base_lai(&self) -> f64 {
        match self {
            Zone::UrbanFabric => 0.8,
            Zone::Industrial => 0.3,
            Zone::GreenUrban => 3.2,
            Zone::Forest => 5.0,
            Zone::Agriculture => 2.6,
            Zone::Water => 0.0,
        }
    }
}

impl World {
    /// Generate a world over `extent`: a `cells`×`cells` grid of zones.
    /// Deterministic in `seed`.
    pub fn generate(seed: u64, extent: Envelope, cells: usize) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let cells = cells.max(2);
        let dx = extent.width() / cells as f64;
        let dy = extent.height() / cells as f64;
        let center = extent.center();

        // Admin units: quarters of the extent at level 1, the grid cells at
        // level 2 (arrondissement-like).
        let mut admin_units = Vec::new();
        let mut id = 0usize;
        for qy in 0..2 {
            for qx in 0..2 {
                let min_x = extent.min_x + qx as f64 * extent.width() / 2.0;
                let min_y = extent.min_y + qy as f64 * extent.height() / 2.0;
                admin_units.push(AdminUnit {
                    id,
                    name: format!("District {}", id + 1),
                    level: 1,
                    country: "FRA".into(),
                    polygon: Polygon::rect(
                        min_x,
                        min_y,
                        min_x + extent.width() / 2.0,
                        min_y + extent.height() / 2.0,
                    ),
                });
                id += 1;
            }
        }
        let arr = cells.min(20); // arrondissement grid is coarser
        let adx = extent.width() / arr as f64;
        let ady = extent.height() / arr as f64;
        for ay in 0..arr {
            for ax in 0..arr {
                let min_x = extent.min_x + ax as f64 * adx;
                let min_y = extent.min_y + ay as f64 * ady;
                admin_units.push(AdminUnit {
                    id,
                    name: format!("Arrondissement {}", ay * arr + ax + 1),
                    level: 2,
                    country: "FRA".into(),
                    polygon: Polygon::rect(min_x, min_y, min_x + adx, min_y + ady),
                });
                id += 1;
            }
        }

        // Zones per grid cell: urban core in the middle, industry on the
        // east edge, a river band, forests outside, some parks sprinkled.
        let mut land_cover = Vec::new();
        let mut urban_atlas = Vec::new();
        let mut pois = Vec::new();
        let mut park_counter = 0usize;
        for gy in 0..cells {
            for gx in 0..cells {
                let min_x = extent.min_x + gx as f64 * dx;
                let min_y = extent.min_y + gy as f64 * dy;
                let cell = Polygon::rect(min_x, min_y, min_x + dx, min_y + dy);
                let c = Coord::new(min_x + dx / 2.0, min_y + dy / 2.0);
                let r =
                    ((c.x - center.x) / extent.width()).hypot((c.y - center.y) / extent.height());

                let zone = if (c.y - center.y).abs() < extent.height() * 0.03
                    && c.x > center.x - extent.width() * 0.3
                {
                    Zone::Water // the river
                } else if r < 0.18 {
                    if rng.gen_bool(0.12) {
                        Zone::GreenUrban
                    } else {
                        Zone::UrbanFabric
                    }
                } else if c.x > extent.min_x + extent.width() * 0.8 && r < 0.45 {
                    if rng.gen_bool(0.7) {
                        Zone::Industrial
                    } else {
                        Zone::UrbanFabric
                    }
                } else if r < 0.35 {
                    match rng.gen_range(0..10) {
                        0..=1 => Zone::GreenUrban,
                        2 => Zone::Industrial,
                        _ => Zone::UrbanFabric,
                    }
                } else if rng.gen_bool(0.4) {
                    Zone::Forest
                } else {
                    Zone::Agriculture
                };

                let lc_id = land_cover.len();
                land_cover.push(LandCoverArea {
                    id: lc_id,
                    clc_code: zone.clc_code(),
                    polygon: cell.clone(),
                });
                urban_atlas.push(UrbanAtlasArea {
                    id: lc_id,
                    ua_code: zone.ua_code(),
                    population: match zone {
                        Zone::UrbanFabric => rng.gen_range(2_000..20_000),
                        Zone::Industrial => rng.gen_range(0..500),
                        _ => rng.gen_range(0..2_000),
                    },
                    polygon: cell.clone(),
                });
                match zone {
                    Zone::GreenUrban => {
                        park_counter += 1;
                        pois.push(Poi {
                            id: pois.len(),
                            name: format!("Parc {park_counter}"),
                            kind: PoiKind::Park,
                            polygon: cell,
                        });
                    }
                    Zone::Forest if rng.gen_bool(0.25) => {
                        pois.push(Poi {
                            id: pois.len(),
                            name: format!("Forêt {}", pois.len() + 1),
                            kind: PoiKind::Forest,
                            polygon: cell,
                        });
                    }
                    Zone::Industrial if rng.gen_bool(0.3) => {
                        pois.push(Poi {
                            id: pois.len(),
                            name: format!("Zone industrielle {}", pois.len() + 1),
                            kind: PoiKind::Industrial,
                            polygon: cell,
                        });
                    }
                    _ => {}
                }
            }
        }

        World {
            extent,
            admin_units,
            land_cover,
            urban_atlas,
            pois,
        }
    }

    /// An R-tree over the land-cover areas, used by the grid generators.
    pub fn land_cover_index(&self) -> RTree<usize> {
        RTree::bulk_load(
            self.land_cover
                .iter()
                .map(|a| (a.polygon.envelope(), a.id))
                .collect(),
        )
    }

    /// The zone kind at a coordinate (by CLC code of the covering area).
    pub fn zone_at(&self, index: &RTree<usize>, c: Coord) -> Option<u16> {
        for &id in index.query_point(c) {
            let area = &self.land_cover[id];
            if applab_geo::algorithms::polygon_covers_point(&area.polygon, c) {
                return Some(area.clc_code);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Tabular exports (GeoTriples inputs).
    // ------------------------------------------------------------------

    pub fn gadm_table(&self) -> TabularSource {
        let rows = self
            .admin_units
            .iter()
            .map(|u| {
                let mut r = Row::new();
                r.insert("id".into(), Value::Number(u.id as f64));
                r.insert("name".into(), Value::Text(u.name.clone()));
                r.insert("level".into(), Value::Number(u.level as f64));
                r.insert("country".into(), Value::Text(u.country.clone()));
                r.insert(
                    "geometry".into(),
                    Value::Geometry(Geometry::Polygon(u.polygon.clone())),
                );
                r
            })
            .collect();
        TabularSource {
            name: "gadm".into(),
            rows,
        }
    }

    pub fn corine_table(&self) -> TabularSource {
        let rows = self
            .land_cover
            .iter()
            .map(|a| {
                let mut r = Row::new();
                r.insert("id".into(), Value::Number(a.id as f64));
                r.insert("code".into(), Value::Number(a.clc_code as f64));
                let class_iri = applab_rdf::ontology::clc_class_iri(a.clc_code)
                    .expect("generated codes are in the nomenclature");
                r.insert("class".into(), Value::Text(class_iri.as_str().to_string()));
                r.insert(
                    "geometry".into(),
                    Value::Geometry(Geometry::Polygon(a.polygon.clone())),
                );
                r
            })
            .collect();
        TabularSource {
            name: "corine".into(),
            rows,
        }
    }

    pub fn urban_atlas_table(&self) -> TabularSource {
        let rows = self
            .urban_atlas
            .iter()
            .map(|a| {
                let mut r = Row::new();
                r.insert("id".into(), Value::Number(a.id as f64));
                r.insert("code".into(), Value::Number(a.ua_code as f64));
                let class_iri = applab_rdf::ontology::ua_class_iri(a.ua_code)
                    .expect("generated codes are in the nomenclature");
                r.insert("class".into(), Value::Text(class_iri.as_str().to_string()));
                r.insert("population".into(), Value::Number(a.population as f64));
                r.insert(
                    "geometry".into(),
                    Value::Geometry(Geometry::Polygon(a.polygon.clone())),
                );
                r
            })
            .collect();
        TabularSource {
            name: "urban_atlas".into(),
            rows,
        }
    }

    pub fn osm_table(&self) -> TabularSource {
        let rows = self
            .pois
            .iter()
            .map(|p| {
                let mut r = Row::new();
                r.insert("id".into(), Value::Number(p.id as f64));
                r.insert("name".into(), Value::Text(p.name.clone()));
                r.insert("kind".into(), Value::Text(p.kind.as_str().to_string()));
                r.insert(
                    "geometry".into(),
                    Value::Geometry(Geometry::Polygon(p.polygon.clone())),
                );
                r
            })
            .collect();
        TabularSource {
            name: "osm".into(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(42, Envelope::new(2.0, 48.7, 2.6, 49.0), 24)
    }

    #[test]
    fn deterministic() {
        let a = World::generate(7, Envelope::new(0.0, 0.0, 1.0, 1.0), 10);
        let b = World::generate(7, Envelope::new(0.0, 0.0, 1.0, 1.0), 10);
        assert_eq!(a.land_cover.len(), b.land_cover.len());
        assert_eq!(
            a.land_cover.iter().map(|x| x.clc_code).collect::<Vec<_>>(),
            b.land_cover.iter().map(|x| x.clc_code).collect::<Vec<_>>()
        );
        let c = World::generate(8, Envelope::new(0.0, 0.0, 1.0, 1.0), 10);
        assert_ne!(
            a.land_cover.iter().map(|x| x.clc_code).collect::<Vec<_>>(),
            c.land_cover.iter().map(|x| x.clc_code).collect::<Vec<_>>()
        );
    }

    #[test]
    fn covers_extent_with_valid_codes() {
        let w = world();
        assert_eq!(w.land_cover.len(), 24 * 24);
        for a in &w.land_cover {
            assert!(
                applab_rdf::ontology::clc_class_iri(a.clc_code).is_some(),
                "bad code {}",
                a.clc_code
            );
        }
        for a in &w.urban_atlas {
            assert!(applab_rdf::ontology::ua_class_iri(a.ua_code).is_some());
        }
        // Urban core exists and industry is present.
        let kinds: std::collections::HashSet<u16> =
            w.land_cover.iter().map(|a| a.clc_code).collect();
        assert!(kinds.contains(&112));
        assert!(kinds.contains(&121));
        assert!(kinds.contains(&141));
    }

    #[test]
    fn pois_sit_on_matching_land_cover() {
        let w = world();
        let index = w.land_cover_index();
        assert!(!w.pois.is_empty());
        for p in w.pois.iter().filter(|p| p.kind == PoiKind::Park) {
            let c =
                applab_geo::algorithms::centroid(&Geometry::Polygon(p.polygon.clone())).unwrap();
            assert_eq!(
                w.zone_at(&index, c),
                Some(141),
                "park {} not on 141",
                p.name
            );
        }
    }

    #[test]
    fn zone_lookup_outside_is_none() {
        let w = world();
        let index = w.land_cover_index();
        assert_eq!(w.zone_at(&index, Coord::new(-10.0, -10.0)), None);
    }

    #[test]
    fn tabular_exports() {
        let w = world();
        assert_eq!(w.gadm_table().rows.len(), w.admin_units.len());
        assert_eq!(w.corine_table().rows.len(), w.land_cover.len());
        assert_eq!(w.urban_atlas_table().rows.len(), w.urban_atlas.len());
        assert_eq!(w.osm_table().rows.len(), w.pois.len());
        // Geometry columns present everywhere.
        for t in [
            w.gadm_table(),
            w.corine_table(),
            w.urban_atlas_table(),
            w.osm_table(),
        ] {
            assert!(t
                .rows
                .iter()
                .all(|r| matches!(r.get("geometry"), Some(Value::Geometry(_)))));
        }
    }
}
