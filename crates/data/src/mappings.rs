//! GeoTriples mapping documents for the synthetic vector datasets.
//!
//! These encode the ontologies of Section 4 (Figures 2 and 3 plus the
//! CORINE, Urban Atlas and OSM ontologies) as transformation targets.

/// OSM POIs → `osm:` (the `osm:poiType osm:park` shape Listing 1 queries).
pub const OSM_MAPPING: &str = r#"
mappingId osm_pois
target osm:poi_{id} a osm:PointOfInterest ;
       osm:poiType osm:{kind} ;
       osm:hasName {name}^^xsd:string ;
       geo:hasGeometry osm:geom_{id} .
       osm:geom_{id} geo:asWKT {geometry}^^geo:wktLiteral .
source SELECT * FROM osm
"#;

/// GADM units → `gadm:` (Figure 3).
pub const GADM_MAPPING: &str = r#"
mappingId gadm_units
target gadm:unit_{id} a gadm:AdministrativeUnit ;
       gadm:hasName {name}^^xsd:string ;
       gadm:hasLevel {level}^^xsd:integer ;
       gadm:hasCountry {country}^^xsd:string ;
       geo:hasGeometry gadm:geom_{id} .
       gadm:geom_{id} geo:asWKT {geometry}^^geo:wktLiteral .
source SELECT * FROM gadm
"#;

/// CORINE areas → `clc:` (the CorineArea/hasCorineValue shape of
/// Section 4).
pub const CORINE_MAPPING: &str = r#"
mappingId corine_areas
target clc:area_{id} a clc:CorineArea ;
       clc:hasCorineValue <{class}> ;
       clc:hasCode {code}^^xsd:integer ;
       geo:hasGeometry clc:geom_{id} .
       clc:geom_{id} geo:asWKT {geometry}^^geo:wktLiteral .
source SELECT * FROM corine
"#;

/// Urban Atlas areas → `ua:`.
pub const URBAN_ATLAS_MAPPING: &str = r#"
mappingId ua_areas
target ua:area_{id} a ua:UrbanAtlasArea ;
       ua:hasClass <{class}> ;
       ua:hasPopulation {population}^^xsd:integer ;
       geo:hasGeometry ua:geom_{id} .
       ua:geom_{id} geo:asWKT {geometry}^^geo:wktLiteral .
source SELECT * FROM urban_atlas
"#;

/// Listing 2 of the paper, for a server-published dataset name.
pub fn opendap_lai_mapping(dataset: &str, window_minutes: u64) -> String {
    format!(
        r#"
mappingId opendap_mapping
target lai:{{id}} rdf:type lai:Observation .
       lai:{{id}} lai:hasLai {{LAI}}^^xsd:float ;
       time:hasTime {{ts}}^^xsd:dateTime .
       lai:{{id}} geo:hasGeometry _:g_{{id}} .
       _:g_{{id}} geo:asWKT {{loc}}^^geo:wktLiteral .
source SELECT id, LAI, ts, loc FROM (ordered opendap url:https://analytics.ramani.ujuizi.com/thredds/dodsC/{dataset}/readdods/LAI/, {window_minutes}) WHERE LAI > 0
"#
    )
}

#[cfg(test)]
mod tests {
    use applab_geotriples::parse_mappings;

    #[test]
    fn all_mappings_parse() {
        for doc in [
            super::OSM_MAPPING,
            super::GADM_MAPPING,
            super::CORINE_MAPPING,
            super::URBAN_ATLAS_MAPPING,
        ] {
            let ms = parse_mappings(doc).expect(doc);
            assert_eq!(ms.len(), 1);
            assert!(ms[0].target.len() >= 4);
        }
        let lai = super::opendap_lai_mapping("lai_300m", 10);
        let ms = parse_mappings(&lai).unwrap();
        assert!(ms[0].source.contains("opendap"));
    }
}
