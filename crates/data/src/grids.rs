//! Gridded product generators: LAI, NDVI and Burnt Area.
//!
//! Values are driven by the world's land cover: each pixel's class gives a
//! base level (see [`crate::world::Zone::base_lai`]), modulated by a
//! northern-hemisphere seasonal cycle peaking in summer, plus Gaussian
//! noise. This reproduces the *mechanism* behind Figure 4's observation
//! (green urban areas show higher LAI over time than industrial areas).

use crate::world::World;
use applab_array::{Dataset, NdArray, Variable};
use applab_geo::Coord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Northern-hemisphere seasonal factor for a month (1–12): ~0.25 in deep
/// winter, 1.0 at the July peak.
pub fn seasonal_factor(month: u32) -> f64 {
    let phase = (month as f64 - 7.0) / 12.0 * std::f64::consts::TAU;
    0.625 + 0.375 * phase.cos()
}

/// Configuration of a gridded product.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Grid cells per axis.
    pub resolution: usize,
    /// Sample timestamps, epoch seconds (e.g. monthly).
    pub times: Vec<i64>,
    /// Noise standard deviation.
    pub noise: f64,
    pub seed: u64,
}

impl GridSpec {
    /// Monthly timestamps for a year (the 15th of each month of 2017).
    pub fn monthly_2017(resolution: usize, seed: u64) -> GridSpec {
        let times = (1..=12)
            .map(|m| applab_array::time::days_from_civil(2017, m, 15) * 86_400)
            .collect();
        GridSpec {
            resolution,
            times,
            noise: 0.15,
            seed,
        }
    }
}

fn month_of(t: i64) -> u32 {
    // Proleptic Gregorian month (same algorithm family as elsewhere).
    let z = t.div_euclid(86_400) + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    (if mp < 10 { mp + 3 } else { mp - 9 }) as u32
}

/// Gaussian sample via Box–Muller (rand's distributions module is not part
/// of the offline feature set we rely on).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn grid_skeleton(name: &str, world: &World, spec: &GridSpec) -> (Dataset, Vec<f64>, Vec<f64>) {
    let n = spec.resolution;
    let lats: Vec<f64> = (0..n)
        .map(|i| world.extent.min_y + (i as f64 + 0.5) / n as f64 * world.extent.height())
        .collect();
    let lons: Vec<f64> = (0..n)
        .map(|i| world.extent.min_x + (i as f64 + 0.5) / n as f64 * world.extent.width())
        .collect();
    let mut ds = Dataset::new(name);
    ds.add_dim("time", spec.times.len())
        .add_dim("lat", n)
        .add_dim("lon", n);
    ds.set_attr("Conventions", "CF-1.6, ACDD-1.3");
    ds.set_attr("title", name);
    ds.set_attr("institution", "VITO (synthetic reproduction)");
    ds.set_attr("product_version", "v1");
    ds.add_variable(
        Variable::new(
            "time",
            vec!["time".into()],
            NdArray::vector(spec.times.iter().map(|&t| t as f64).collect()),
        )
        .with_attr("units", "seconds since 1970-01-01"),
    )
    .expect("time axis");
    ds.add_variable(
        Variable::new("lat", vec!["lat".into()], NdArray::vector(lats.clone()))
            .with_attr("units", "degrees_north"),
    )
    .expect("lat axis");
    ds.add_variable(
        Variable::new("lon", vec!["lon".into()], NdArray::vector(lons.clone()))
            .with_attr("units", "degrees_east"),
    )
    .expect("lon axis");
    (ds, lats, lons)
}

/// Base (peak) LAI by CLC level-3 code.
pub fn base_lai_for_code(code: u16) -> f64 {
    match code {
        111 | 112 => 0.8,
        121..=133 => 0.3,
        141 | 142 => 3.2,
        211..=244 => 2.6,
        311..=324 => 5.0,
        331..=335 => 0.2,
        411..=423 => 1.5,
        511..=523 => 0.0,
        _ => 1.0,
    }
}

/// Generate the LAI product over a world.
pub fn lai_dataset(world: &World, spec: &GridSpec) -> Dataset {
    let (mut ds, lats, lons) = grid_skeleton("lai_300m", world, spec);
    let index = world.land_cover_index();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.resolution;
    let mut data = NdArray::zeros(vec![spec.times.len(), n, n]);
    for (ti, &t) in spec.times.iter().enumerate() {
        let season = seasonal_factor(month_of(t));
        for (la, &lat) in lats.iter().enumerate() {
            for (lo, &lon) in lons.iter().enumerate() {
                let base = world
                    .zone_at(&index, Coord::new(lon, lat))
                    .map(base_lai_for_code)
                    .unwrap_or(f64::NAN);
                let v = if base.is_nan() {
                    f64::NAN
                } else {
                    (base * season + gaussian(&mut rng) * spec.noise).max(0.0)
                };
                data.set(&[ti, la, lo], v).expect("in bounds");
            }
        }
    }
    ds.add_variable(
        Variable::new("LAI", vec!["time".into(), "lat".into(), "lon".into()], data)
            .with_attr("units", "m2/m2")
            .with_attr("long_name", "leaf area index")
            .with_attr("standard_name", "leaf_area_index"),
    )
    .expect("LAI variable");
    ds
}

/// Generate the NDVI product (a squashed transform of the LAI mechanism).
pub fn ndvi_dataset(world: &World, spec: &GridSpec) -> Dataset {
    let (mut ds, lats, lons) = grid_skeleton("ndvi_300m", world, spec);
    let index = world.land_cover_index();
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(1));
    let n = spec.resolution;
    let mut data = NdArray::zeros(vec![spec.times.len(), n, n]);
    for (ti, &t) in spec.times.iter().enumerate() {
        let season = seasonal_factor(month_of(t));
        for (la, &lat) in lats.iter().enumerate() {
            for (lo, &lon) in lons.iter().enumerate() {
                let base = world
                    .zone_at(&index, Coord::new(lon, lat))
                    .map(base_lai_for_code)
                    .unwrap_or(f64::NAN);
                let v = if base.is_nan() {
                    f64::NAN
                } else {
                    // NDVI saturates: 1 - exp(-k·LAI).
                    let lai = (base * season).max(0.0);
                    ((1.0 - (-0.7 * lai).exp()) + gaussian(&mut rng) * spec.noise * 0.2)
                        .clamp(-1.0, 1.0)
                };
                data.set(&[ti, la, lo], v).expect("in bounds");
            }
        }
    }
    ds.add_variable(
        Variable::new(
            "NDVI",
            vec!["time".into(), "lat".into(), "lon".into()],
            data,
        )
        .with_attr("units", "1")
        .with_attr("long_name", "normalized difference vegetation index"),
    )
    .expect("NDVI variable");
    ds
}

/// Generate the Burnt Area product: mostly zero, with a few burnt patches
/// in dry months over vegetated classes.
pub fn burnt_area_dataset(world: &World, spec: &GridSpec) -> Dataset {
    let (mut ds, lats, lons) = grid_skeleton("ba_300m", world, spec);
    let index = world.land_cover_index();
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(2));
    let n = spec.resolution;
    let mut data = NdArray::zeros(vec![spec.times.len(), n, n]);
    for (ti, &t) in spec.times.iter().enumerate() {
        let month = month_of(t);
        let dry = (7..=9).contains(&month);
        for (la, &lat) in lats.iter().enumerate() {
            for (lo, &lon) in lons.iter().enumerate() {
                let code = world.zone_at(&index, Coord::new(lon, lat));
                let flammable = matches!(code, Some(c) if (200..400).contains(&c));
                let v = if code.is_none() {
                    f64::NAN
                } else if dry && flammable && rng.gen_bool(0.01) {
                    1.0
                } else {
                    0.0
                };
                data.set(&[ti, la, lo], v).expect("in bounds");
            }
        }
    }
    ds.add_variable(
        Variable::new("BA", vec!["time".into(), "lat".into(), "lon".into()], data)
            .with_attr("units", "1")
            .with_attr("long_name", "burnt area flag"),
    )
    .expect("BA variable");
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_geo::Envelope;

    fn world() -> World {
        World::generate(42, Envelope::new(2.0, 48.7, 2.6, 49.0), 16)
    }

    #[test]
    fn seasonal_cycle_peaks_in_summer() {
        assert!(seasonal_factor(7) > seasonal_factor(4));
        assert!(seasonal_factor(7) > seasonal_factor(1));
        assert!((seasonal_factor(7) - 1.0).abs() < 1e-9);
        assert!((seasonal_factor(1) - 0.25).abs() < 0.01);
    }

    #[test]
    fn lai_respects_land_cover_ordering() {
        let w = world();
        let spec = GridSpec::monthly_2017(32, 1);
        let ds = lai_dataset(&w, &spec);
        let lai = ds.variable("LAI").unwrap();
        let index = w.land_cover_index();
        let lats = ds.coordinate("lat").unwrap().data.data().to_vec();
        let lons = ds.coordinate("lon").unwrap().data.data().to_vec();
        // July (index 6): average green-urban pixels vs industrial pixels.
        let (mut green, mut industrial) = (Vec::new(), Vec::new());
        for (la, &lat) in lats.iter().enumerate() {
            for (lo, &lon) in lons.iter().enumerate() {
                let v = lai.data.get(&[6, la, lo]).unwrap();
                match w.zone_at(&index, Coord::new(lon, lat)) {
                    Some(141) => green.push(v),
                    Some(121) => industrial.push(v),
                    _ => {}
                }
            }
        }
        assert!(!green.is_empty() && !industrial.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&green) > mean(&industrial) + 1.0,
            "green {} vs industrial {}",
            mean(&green),
            mean(&industrial)
        );
    }

    #[test]
    fn lai_seasonality_visible() {
        let w = world();
        let ds = lai_dataset(&w, &GridSpec::monthly_2017(24, 2));
        let lai = &ds.variable("LAI").unwrap().data;
        let month_mean = |m: usize| {
            lai.slice(&[
                applab_array::Range::index(m),
                applab_array::Range::all(24),
                applab_array::Range::all(24),
            ])
            .unwrap()
            .mean()
        };
        assert!(month_mean(6) > month_mean(0) * 1.5); // July ≫ January
    }

    #[test]
    fn ndvi_bounded() {
        let w = world();
        let ds = ndvi_dataset(&w, &GridSpec::monthly_2017(16, 3));
        let ndvi = &ds.variable("NDVI").unwrap().data;
        for &v in ndvi.data() {
            if !v.is_nan() {
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn burnt_area_sparse_and_seasonal() {
        let w = world();
        let ds = burnt_area_dataset(&w, &GridSpec::monthly_2017(32, 4));
        let ba = &ds.variable("BA").unwrap().data;
        let count_burnt = |m: usize| {
            ba.slice(&[
                applab_array::Range::index(m),
                applab_array::Range::all(32),
                applab_array::Range::all(32),
            ])
            .unwrap()
            .data()
            .iter()
            .filter(|&&v| v == 1.0)
            .count()
        };
        let summer: usize = (6..9).map(count_burnt).sum();
        let winter: usize = (0..3).map(count_burnt).sum();
        assert!(summer > 0);
        assert_eq!(winter, 0);
        // Sparse: far fewer than 1% of all pixels per average month.
        assert!(summer < 32 * 32 / 10);
    }

    #[test]
    fn datasets_are_drs_and_acdd_reasonable() {
        let w = world();
        let ds = lai_dataset(&w, &GridSpec::monthly_2017(8, 5));
        let report = applab_array::acdd::check_completeness(&ds);
        // Not perfect, but the basics are present.
        assert!(report.score > 0.3, "score {}", report.score);
        assert!(!report
            .missing_highly_recommended
            .contains(&"title".to_string()));
        let violations = applab_dap::drs::validate("cgls.land.lai.300m.v1.2017-01-15", &ds);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let w = world();
        let a = lai_dataset(&w, &GridSpec::monthly_2017(8, 9));
        let b = lai_dataset(&w, &GridSpec::monthly_2017(8, 9));
        assert_eq!(
            a.variable("LAI").unwrap().data,
            b.variable("LAI").unwrap().data
        );
    }
}
