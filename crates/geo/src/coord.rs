//! Planar coordinates and axis-aligned bounding envelopes.

use serde::{Deserialize, Serialize};

/// A 2-D coordinate. In the Copernicus setting `x` is longitude (degrees
/// east) and `y` is latitude (degrees north), but nothing in this crate
/// assumes a particular CRS: all algorithms are planar, which is how the
/// paper's stack treats GeoSPARQL WGS84 literals as well.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    pub x: f64,
    pub y: f64,
}

impl Coord {
    pub const fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Euclidean distance to another coordinate.
    pub fn distance(&self, other: &Coord) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance (avoids the square root in hot loops).
    pub fn distance_sq(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Exact equality of both ordinates (no tolerance).
    pub fn coincides(&self, other: &Coord) -> bool {
        self.x == other.x && self.y == other.y
    }
}

impl From<(f64, f64)> for Coord {
    fn from((x, y): (f64, f64)) -> Self {
        Coord::new(x, y)
    }
}

/// An axis-aligned bounding box. `Envelope::EMPTY` is the identity of
/// [`Envelope::union`]; it contains nothing and intersects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Envelope {
    /// The empty envelope (inverted bounds).
    pub const EMPTY: Envelope = Envelope {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Envelope {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Envelope of a single coordinate.
    pub fn of_coord(c: Coord) -> Self {
        Envelope::new(c.x, c.y, c.x, c.y)
    }

    /// Envelope of a coordinate slice; `EMPTY` for an empty slice.
    pub fn of_coords(coords: &[Coord]) -> Self {
        let mut e = Envelope::EMPTY;
        for c in coords {
            e.expand_coord(*c);
        }
        e
    }

    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    pub fn center(&self) -> Coord {
        Coord::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Grow in place to cover `c`.
    pub fn expand_coord(&mut self, c: Coord) {
        self.min_x = self.min_x.min(c.x);
        self.min_y = self.min_y.min(c.y);
        self.max_x = self.max_x.max(c.x);
        self.max_y = self.max_y.max(c.y);
    }

    /// Grow in place to cover `other`.
    pub fn expand(&mut self, other: &Envelope) {
        if other.is_empty() {
            return;
        }
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// The smallest envelope covering both inputs.
    pub fn union(&self, other: &Envelope) -> Envelope {
        let mut e = *self;
        e.expand(other);
        e
    }

    /// Grow the envelope by `margin` on every side.
    pub fn buffered(&self, margin: f64) -> Envelope {
        if self.is_empty() {
            return *self;
        }
        Envelope::new(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
    }

    /// Closed-interval intersection test. Empty envelopes intersect nothing.
    pub fn intersects(&self, other: &Envelope) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// True if `other` lies entirely inside (or on the border of) `self`.
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.min_x <= other.min_x
            && self.max_x >= other.max_x
            && self.min_y <= other.min_y
            && self.max_y >= other.max_y
    }

    pub fn contains_coord(&self, c: Coord) -> bool {
        !self.is_empty()
            && c.x >= self.min_x
            && c.x <= self.max_x
            && c.y >= self.min_y
            && c.y <= self.max_y
    }

    /// The overlapping region, or `EMPTY` when disjoint.
    pub fn intersection(&self, other: &Envelope) -> Envelope {
        if !self.intersects(other) {
            return Envelope::EMPTY;
        }
        Envelope::new(
            self.min_x.max(other.min_x),
            self.min_y.max(other.min_y),
            self.max_x.min(other.max_x),
            self.max_y.min(other.max_y),
        )
    }

    /// Minimum distance between two envelopes (0 when they intersect).
    pub fn distance(&self, other: &Envelope) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let dx = if other.min_x > self.max_x {
            other.min_x - self.max_x
        } else if self.min_x > other.max_x {
            self.min_x - other.max_x
        } else {
            0.0
        };
        let dy = if other.min_y > self.max_y {
            other.min_y - self.max_y
        } else if self.min_y > other.max_y {
            self.min_y - other.max_y
        } else {
            0.0
        };
        dx.hypot(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_envelope_properties() {
        let e = Envelope::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.width(), 0.0);
        assert_eq!(e.area(), 0.0);
        assert!(!e.intersects(&Envelope::new(0.0, 0.0, 1.0, 1.0)));
        assert!(!e.contains_coord(Coord::new(0.0, 0.0)));
    }

    #[test]
    fn union_identity() {
        let a = Envelope::new(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.union(&Envelope::EMPTY), a);
        let mut e = Envelope::EMPTY;
        e.expand(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn intersection_and_distance() {
        let a = Envelope::new(0.0, 0.0, 2.0, 2.0);
        let b = Envelope::new(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Envelope::new(1.0, 1.0, 2.0, 2.0));
        assert_eq!(a.distance(&b), 0.0);

        let c = Envelope::new(5.0, 2.0, 6.0, 3.0);
        assert!(!a.intersects(&c));
        assert_eq!(a.distance(&c), 3.0);

        let d = Envelope::new(5.0, 6.0, 7.0, 8.0);
        assert!((a.distance(&d) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let a = Envelope::new(0.0, 0.0, 10.0, 10.0);
        let b = Envelope::new(2.0, 2.0, 3.0, 3.0);
        assert!(a.contains_envelope(&b));
        assert!(!b.contains_envelope(&a));
        assert!(a.contains_envelope(&a));
        assert!(a.contains_coord(Coord::new(10.0, 10.0)));
        assert!(!a.contains_coord(Coord::new(10.1, 10.0)));
    }

    #[test]
    fn of_coords_covers_all() {
        let coords = [
            Coord::new(2.0, 48.0),
            Coord::new(2.5, 48.9),
            Coord::new(2.2, 48.5),
        ];
        let e = Envelope::of_coords(&coords);
        for c in coords {
            assert!(e.contains_coord(c));
        }
        assert_eq!(e, Envelope::new(2.0, 48.0, 2.5, 48.9));
    }

    #[test]
    fn buffered_grows() {
        let a = Envelope::new(0.0, 0.0, 1.0, 1.0).buffered(0.5);
        assert_eq!(a, Envelope::new(-0.5, -0.5, 1.5, 1.5));
        assert!(Envelope::EMPTY.buffered(1.0).is_empty());
    }
}
