//! OGC Simple Features topological predicates.
//!
//! These are the `geof:sf*` functions of GeoSPARQL. The implementation is a
//! boolean decision kernel rather than a full DE-9IM matrix computation: each
//! predicate is decided from segment intersection tests, point-in-polygon
//! location, and dimension rules. This matches the behaviour required by the
//! App Lab workloads (which use `sfIntersects`, `sfWithin`, `sfContains`,
//! `sfTouches`, `sfCrosses`, `sfOverlaps`, `sfEquals`, `sfDisjoint`) on valid
//! geometries. Degenerate inputs (self-intersecting rings) are not rejected
//! but their results are unspecified, as in most production engines.

use crate::algorithms::{
    locate_in_polygon, locate_in_ring, polygon_covers_point, segments_intersect, RingPosition,
};
use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Polygon};

/// The named simple-features relations, used by the SPARQL layer to map
/// `geof:` function IRIs onto evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialRelation {
    Equals,
    Disjoint,
    Intersects,
    Touches,
    Within,
    Contains,
    Overlaps,
    Crosses,
}

impl SpatialRelation {
    /// Evaluate the relation between two geometries.
    pub fn evaluate(self, a: &Geometry, b: &Geometry) -> bool {
        match self {
            SpatialRelation::Equals => equals(a, b),
            SpatialRelation::Disjoint => disjoint(a, b),
            SpatialRelation::Intersects => intersects(a, b),
            SpatialRelation::Touches => touches(a, b),
            SpatialRelation::Within => within(a, b),
            SpatialRelation::Contains => contains(a, b),
            SpatialRelation::Overlaps => overlaps(a, b),
            SpatialRelation::Crosses => crosses(a, b),
        }
    }

    /// The GeoSPARQL function local name (e.g. `sfIntersects`).
    pub fn geof_name(self) -> &'static str {
        match self {
            SpatialRelation::Equals => "sfEquals",
            SpatialRelation::Disjoint => "sfDisjoint",
            SpatialRelation::Intersects => "sfIntersects",
            SpatialRelation::Touches => "sfTouches",
            SpatialRelation::Within => "sfWithin",
            SpatialRelation::Contains => "sfContains",
            SpatialRelation::Overlaps => "sfOverlaps",
            SpatialRelation::Crosses => "sfCrosses",
        }
    }

    pub fn from_geof_name(name: &str) -> Option<Self> {
        Some(match name {
            "sfEquals" => SpatialRelation::Equals,
            "sfDisjoint" => SpatialRelation::Disjoint,
            "sfIntersects" => SpatialRelation::Intersects,
            "sfTouches" => SpatialRelation::Touches,
            "sfWithin" => SpatialRelation::Within,
            "sfContains" => SpatialRelation::Contains,
            "sfOverlaps" => SpatialRelation::Overlaps,
            "sfCrosses" => SpatialRelation::Crosses,
            _ => return None,
        })
    }
}

/// How two primitive geometries meet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Meet {
    /// No common points.
    None,
    /// Common points exist only on both boundaries (or at endpoints).
    BoundaryOnly,
    /// Interiors share at least one point.
    Interior,
}

impl Meet {
    fn merge(self, other: Meet) -> Meet {
        use Meet::*;
        match (self, other) {
            (Interior, _) | (_, Interior) => Interior,
            (BoundaryOnly, _) | (_, BoundaryOnly) => BoundaryOnly,
            _ => None,
        }
    }

    fn any(self) -> bool {
        self != Meet::None
    }
}

/// `a` and `b` share at least one point.
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    meet(a, b).any()
}

/// `a` and `b` share no point.
pub fn disjoint(a: &Geometry, b: &Geometry) -> bool {
    !intersects(a, b)
}

/// `a` and `b` intersect, but only on their boundaries (no interior-interior
/// contact). Per the OGC definition, `touches` never holds for point/point.
pub fn touches(a: &Geometry, b: &Geometry) -> bool {
    if a.dimension() == 0 && b.dimension() == 0 {
        return false;
    }
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    meet(a, b) == Meet::BoundaryOnly
}

/// Every point of `a` lies in `b` (interior or boundary) and the interiors
/// intersect.
pub fn within(a: &Geometry, b: &Geometry) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    if !b.envelope().contains_envelope(&a.envelope()) {
        return false;
    }
    covered(a, b) && meet(a, b) == Meet::Interior
}

/// Inverse of [`within`].
pub fn contains(a: &Geometry, b: &Geometry) -> bool {
    within(b, a)
}

/// Geometries are spatially equal: each is within the other (point-set
/// equality, not coordinate-list equality).
pub fn equals(a: &Geometry, b: &Geometry) -> bool {
    if a.is_empty() && b.is_empty() {
        return true;
    }
    covered(a, b) && covered(b, a)
}

/// Same-dimension geometries whose interiors intersect but neither covers the
/// other.
pub fn overlaps(a: &Geometry, b: &Geometry) -> bool {
    if a.dimension() != b.dimension() {
        return false;
    }
    meet(a, b) == Meet::Interior && !covered(a, b) && !covered(b, a)
}

/// Interiors intersect, the intersection has lower dimension than the
/// higher-dimensional input, and neither covers the other. Defined for
/// mixed-dimension pairs and line/line.
pub fn crosses(a: &Geometry, b: &Geometry) -> bool {
    let (da, db) = (a.dimension(), b.dimension());
    if da == db && da != 1 {
        return false; // crosses is undefined for point/point and area/area
    }
    if meet(a, b) != Meet::Interior {
        return false;
    }
    if da == 1 && db == 1 {
        // Line/line: crosses iff they meet at interior points but do not run
        // together (no collinear interior overlap) — approximate with
        // "neither covered".
        return !covered(a, b) && !covered(b, a);
    }
    // Mixed dimensions: the lower-dimensional one must not be covered... it
    // must stick out of the other.
    let (lo, hi) = if da < db { (a, b) } else { (b, a) };
    !covered(lo, hi)
}

// ---------------------------------------------------------------------------
// Kernel: pairwise primitive meets and coverage.
// ---------------------------------------------------------------------------

fn meet(a: &Geometry, b: &Geometry) -> Meet {
    let mut acc = Meet::None;
    for pa in a.parts() {
        for pb in b.parts() {
            if !pa.envelope().intersects(&pb.envelope()) {
                continue;
            }
            acc = acc.merge(primitive_meet(&pa, &pb));
            if acc == Meet::Interior {
                return acc;
            }
        }
    }
    acc
}

fn primitive_meet(a: &Geometry, b: &Geometry) -> Meet {
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => {
            if p.coord().coincides(&q.coord()) {
                Meet::Interior
            } else {
                Meet::None
            }
        }
        (Point(p), LineString(l)) | (LineString(l), Point(p)) => point_line_meet(p.coord(), l),
        (Point(p), Polygon(poly)) | (Polygon(poly), Point(p)) => {
            match locate_in_polygon(p.coord(), poly) {
                RingPosition::Inside => Meet::Interior,
                RingPosition::Boundary => Meet::BoundaryOnly,
                RingPosition::Outside => Meet::None,
            }
        }
        (LineString(l1), LineString(l2)) => line_line_meet(l1, l2),
        (LineString(l), Polygon(p)) | (Polygon(p), LineString(l)) => line_polygon_meet(l, p),
        (Polygon(p1), Polygon(p2)) => polygon_polygon_meet(p1, p2),
        _ => Meet::None, // parts() never yields multis/collections
    }
}

fn point_line_meet(p: Coord, l: &LineString) -> Meet {
    if l.is_empty() {
        return Meet::None;
    }
    // Line boundary = its endpoints (for open lines).
    let closed = l.is_closed_ring() || (l.len() >= 2 && l.0.first() == l.0.last());
    if !closed && (p.coincides(l.0.first().unwrap()) || p.coincides(l.0.last().unwrap())) {
        return Meet::BoundaryOnly;
    }
    for (a, b) in l.segments() {
        if crate::algorithms::point_segment_distance(p, a, b) == 0.0 {
            return Meet::Interior;
        }
    }
    Meet::None
}

fn line_line_meet(l1: &LineString, l2: &LineString) -> Meet {
    let mut acc = Meet::None;
    let ends1 = line_endpoints(l1);
    let ends2 = line_endpoints(l2);
    for (a1, a2) in l1.segments() {
        for (b1, b2) in l2.segments() {
            if !segments_intersect(a1, a2, b1, b2) {
                continue;
            }
            // Decide if the contact is endpoint-only.
            let contact_at_end = |p: Coord| {
                ends1.iter().any(|e| e.coincides(&p)) || ends2.iter().any(|e| e.coincides(&p))
            };
            // Find a witness point of the intersection: try endpoints first.
            let candidates = [a1, a2, b1, b2];
            let mut endpoint_contact = false;
            let mut interior_contact = false;
            for c in candidates {
                let on_a = crate::algorithms::point_segment_distance(c, a1, a2) == 0.0;
                let on_b = crate::algorithms::point_segment_distance(c, b1, b2) == 0.0;
                if on_a && on_b {
                    if contact_at_end(c) {
                        endpoint_contact = true;
                    } else {
                        interior_contact = true;
                    }
                }
            }
            if !endpoint_contact && !interior_contact {
                // Proper crossing: intersection point is interior to both.
                interior_contact = true;
            }
            if interior_contact {
                return Meet::Interior;
            }
            if endpoint_contact {
                acc = acc.merge(Meet::BoundaryOnly);
            }
        }
    }
    acc
}

fn line_endpoints(l: &LineString) -> Vec<Coord> {
    if l.len() < 2 || l.0.first() == l.0.last() {
        Vec::new() // closed lines have an empty boundary
    } else {
        vec![*l.0.first().unwrap(), *l.0.last().unwrap()]
    }
}

fn line_polygon_meet(l: &LineString, p: &Polygon) -> Meet {
    let mut boundary = false;
    for &c in l.coords() {
        match locate_in_polygon(c, p) {
            RingPosition::Inside => return Meet::Interior,
            RingPosition::Boundary => boundary = true,
            RingPosition::Outside => {}
        }
    }
    // Check segment midpoints too: a segment can pass through the polygon
    // with both endpoints outside or on the boundary.
    for (a, b) in l.segments() {
        let mid = Coord::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
        match locate_in_polygon(mid, p) {
            RingPosition::Inside => return Meet::Interior,
            RingPosition::Boundary => boundary = true,
            RingPosition::Outside => {}
        }
        for ring in p.rings() {
            for (r1, r2) in ring.segments() {
                if segments_intersect(a, b, r1, r2) {
                    boundary = true;
                }
            }
        }
    }
    if boundary {
        Meet::BoundaryOnly
    } else {
        Meet::None
    }
}

fn polygon_polygon_meet(p1: &Polygon, p2: &Polygon) -> Meet {
    let mut boundary = false;
    // Vertex containment both ways.
    for &c in p1.exterior.coords() {
        match locate_in_polygon(c, p2) {
            RingPosition::Inside => return Meet::Interior,
            RingPosition::Boundary => boundary = true,
            RingPosition::Outside => {}
        }
    }
    for &c in p2.exterior.coords() {
        match locate_in_polygon(c, p1) {
            RingPosition::Inside => return Meet::Interior,
            RingPosition::Boundary => boundary = true,
            RingPosition::Outside => {}
        }
    }
    // Edge crossings: if boundaries cross (not just touch), interiors overlap.
    for r1 in p1.rings() {
        for (a1, a2) in r1.segments() {
            for r2 in p2.rings() {
                for (b1, b2) in r2.segments() {
                    if segments_intersect(a1, a2, b1, b2) {
                        boundary = true;
                        // Midpoint probes decide interior contact.
                        let mid1 = Coord::new((a1.x + a2.x) / 2.0, (a1.y + a2.y) / 2.0);
                        let mid2 = Coord::new((b1.x + b2.x) / 2.0, (b1.y + b2.y) / 2.0);
                        if locate_in_polygon(mid1, p2) == RingPosition::Inside
                            || locate_in_polygon(mid2, p1) == RingPosition::Inside
                        {
                            return Meet::Interior;
                        }
                    }
                }
            }
        }
    }
    // One polygon entirely inside the other (no edge contact at all)?
    if !boundary {
        if let Some(&c) = p1.exterior.coords().first() {
            if locate_in_polygon(c, p2) == RingPosition::Inside {
                return Meet::Interior;
            }
        }
        if let Some(&c) = p2.exterior.coords().first() {
            if locate_in_polygon(c, p1) == RingPosition::Inside {
                return Meet::Interior;
            }
        }
    }
    if boundary {
        Meet::BoundaryOnly
    } else {
        Meet::None
    }
}

/// Every point of `a` lies within `b` (interior or boundary) — the OGC
/// `covers(b, a)` relation, decided per primitive part.
fn covered(a: &Geometry, b: &Geometry) -> bool {
    if a.is_empty() {
        return false;
    }
    let b_parts = b.parts();
    a.parts().iter().all(|pa| primitive_covered(pa, &b_parts))
}

fn primitive_covered(a: &Geometry, b_parts: &[Geometry]) -> bool {
    use Geometry::*;
    match a {
        Point(p) => b_parts.iter().any(|pb| match pb {
            Point(q) => p.coord().coincides(&q.coord()),
            LineString(l) => l
                .segments()
                .any(|(s, e)| crate::algorithms::point_segment_distance(p.coord(), s, e) == 0.0),
            Polygon(poly) => polygon_covers_point(poly, p.coord()),
            _ => false,
        }),
        LineString(l) => {
            // Sample vertices and segment midpoints; each must be covered by
            // some part of b. Exact for convex parts, and a close
            // approximation elsewhere (documented module-level).
            sample_line(l).iter().all(|&c| {
                b_parts.iter().any(|pb| match pb {
                    Polygon(poly) => polygon_covers_point(poly, c),
                    LineString(l2) => l2
                        .segments()
                        .any(|(s, e)| crate::algorithms::point_segment_distance(c, s, e) < 1e-12),
                    _ => false,
                })
            })
        }
        Polygon(p) => {
            // All exterior samples covered AND no part of b's boundary passes
            // strictly through p (which would cut area out of it).
            let samples: Vec<Coord> = sample_line(&p.exterior);
            samples.iter().all(|&c| {
                b_parts.iter().any(|pb| match pb {
                    Polygon(poly) => polygon_covers_point(poly, c),
                    _ => false,
                })
            })
        }
        _ => false,
    }
}

fn sample_line(l: &LineString) -> Vec<Coord> {
    let mut out: Vec<Coord> = l.coords().to_vec();
    for (a, b) in l.segments() {
        out.push(Coord::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0));
    }
    out
}

/// Does a polygon's ring wind counter-clockwise?
pub fn ring_is_ccw(ring: &[Coord]) -> bool {
    crate::algorithms::signed_ring_area(ring) > 0.0
}

/// Point-in-ring re-export used by the store's spatial filters.
pub fn point_in_ring(p: Coord, ring: &[Coord]) -> bool {
    locate_in_ring(p, ring) != RingPosition::Outside
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Geometry {
        Geometry::rect(x0, y0, x1, y1)
    }

    fn line(coords: &[(f64, f64)]) -> Geometry {
        Geometry::LineString(LineString::new(
            coords.iter().map(|&(x, y)| Coord::new(x, y)).collect(),
        ))
    }

    #[test]
    fn point_point() {
        let a = Geometry::point(1.0, 1.0);
        let b = Geometry::point(1.0, 1.0);
        let c = Geometry::point(2.0, 1.0);
        assert!(intersects(&a, &b));
        assert!(equals(&a, &b));
        assert!(disjoint(&a, &c));
        assert!(!touches(&a, &b)); // touches undefined for point/point
    }

    #[test]
    fn point_in_polygon_relations() {
        let poly = rect(0.0, 0.0, 10.0, 10.0);
        let inside = Geometry::point(5.0, 5.0);
        let border = Geometry::point(10.0, 5.0);
        let outside = Geometry::point(15.0, 5.0);
        assert!(within(&inside, &poly));
        assert!(contains(&poly, &inside));
        assert!(intersects(&border, &poly));
        assert!(touches(&border, &poly));
        assert!(!within(&border, &poly)); // boundary point: no interior contact
        assert!(disjoint(&outside, &poly));
    }

    #[test]
    fn overlapping_rectangles() {
        let a = rect(0.0, 0.0, 4.0, 4.0);
        let b = rect(2.0, 2.0, 6.0, 6.0);
        assert!(intersects(&a, &b));
        assert!(overlaps(&a, &b));
        assert!(!within(&a, &b));
        assert!(!touches(&a, &b));
    }

    #[test]
    fn edge_touching_rectangles() {
        let a = rect(0.0, 0.0, 4.0, 4.0);
        let b = rect(4.0, 0.0, 8.0, 4.0);
        assert!(intersects(&a, &b));
        assert!(touches(&a, &b));
        assert!(!overlaps(&a, &b));
    }

    #[test]
    fn corner_touching_rectangles() {
        let a = rect(0.0, 0.0, 4.0, 4.0);
        let b = rect(4.0, 4.0, 8.0, 8.0);
        assert!(touches(&a, &b));
    }

    #[test]
    fn nested_rectangles() {
        let outer = rect(0.0, 0.0, 10.0, 10.0);
        let inner = rect(2.0, 2.0, 4.0, 4.0);
        assert!(within(&inner, &outer));
        assert!(contains(&outer, &inner));
        assert!(!overlaps(&inner, &outer));
        assert!(!touches(&inner, &outer));
    }

    #[test]
    fn hole_excludes_containment() {
        let mut p = Polygon::rect(0.0, 0.0, 10.0, 10.0);
        p.interiors.push(Polygon::rect(3.0, 3.0, 7.0, 7.0).exterior);
        let donut = Geometry::Polygon(p);
        let in_hole = Geometry::point(5.0, 5.0);
        assert!(disjoint(&in_hole, &donut));
        let in_ring = Geometry::point(1.0, 1.0);
        assert!(within(&in_ring, &donut));
    }

    #[test]
    fn line_crosses_polygon() {
        let poly = rect(0.0, 0.0, 10.0, 10.0);
        let l = line(&[(-5.0, 5.0), (15.0, 5.0)]);
        assert!(intersects(&l, &poly));
        assert!(crosses(&l, &poly));
        assert!(!within(&l, &poly));
    }

    #[test]
    fn line_within_polygon() {
        let poly = rect(0.0, 0.0, 10.0, 10.0);
        let l = line(&[(1.0, 1.0), (9.0, 9.0)]);
        assert!(within(&l, &poly));
        assert!(!crosses(&l, &poly));
    }

    #[test]
    fn line_touches_polygon_edge() {
        let poly = rect(0.0, 0.0, 10.0, 10.0);
        let l = line(&[(0.0, -5.0), (0.0, 15.0)]); // runs along the x=0 edge
        assert!(intersects(&l, &poly));
        assert!(touches(&l, &poly));
    }

    #[test]
    fn crossing_lines() {
        let a = line(&[(0.0, 0.0), (10.0, 10.0)]);
        let b = line(&[(0.0, 10.0), (10.0, 0.0)]);
        assert!(intersects(&a, &b));
        assert!(crosses(&a, &b));
        assert!(!touches(&a, &b));
    }

    #[test]
    fn endpoint_touching_lines() {
        let a = line(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = line(&[(5.0, 5.0), (10.0, 0.0)]);
        assert!(touches(&a, &b));
        assert!(!crosses(&a, &b));
    }

    #[test]
    fn equal_polygons_different_start() {
        let a = Geometry::Polygon(Polygon::from_exterior(vec![
            Coord::new(0.0, 0.0),
            Coord::new(4.0, 0.0),
            Coord::new(4.0, 4.0),
            Coord::new(0.0, 4.0),
            Coord::new(0.0, 0.0),
        ]));
        let b = Geometry::Polygon(Polygon::from_exterior(vec![
            Coord::new(4.0, 0.0),
            Coord::new(4.0, 4.0),
            Coord::new(0.0, 4.0),
            Coord::new(0.0, 0.0),
            Coord::new(4.0, 0.0),
        ]));
        assert!(equals(&a, &b));
    }

    #[test]
    fn multipolygon_relations() {
        let mp = Geometry::MultiPolygon(vec![
            Polygon::rect(0.0, 0.0, 2.0, 2.0),
            Polygon::rect(5.0, 5.0, 7.0, 7.0),
        ]);
        assert!(intersects(&mp, &Geometry::point(6.0, 6.0)));
        assert!(disjoint(&mp, &Geometry::point(3.5, 3.5)));
        assert!(contains(&mp, &Geometry::point(1.0, 1.0)));
    }

    #[test]
    fn relation_roundtrip_names() {
        for rel in [
            SpatialRelation::Equals,
            SpatialRelation::Disjoint,
            SpatialRelation::Intersects,
            SpatialRelation::Touches,
            SpatialRelation::Within,
            SpatialRelation::Contains,
            SpatialRelation::Overlaps,
            SpatialRelation::Crosses,
        ] {
            assert_eq!(SpatialRelation::from_geof_name(rel.geof_name()), Some(rel));
        }
        assert_eq!(SpatialRelation::from_geof_name("sfBogus"), None);
    }

    #[test]
    fn multipoint_vs_point_within() {
        let mp = Geometry::MultiPoint(vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)]);
        let poly = rect(0.0, 0.0, 5.0, 5.0);
        assert!(within(&mp, &poly));
    }
}
