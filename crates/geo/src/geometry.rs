//! The simple-features geometry model.

use crate::coord::{Coord, Envelope};
use serde::{Deserialize, Serialize};

/// A point geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point(pub Coord);

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        Point(Coord::new(x, y))
    }

    pub fn coord(&self) -> Coord {
        self.0
    }

    pub fn x(&self) -> f64 {
        self.0.x
    }

    pub fn y(&self) -> f64 {
        self.0.y
    }
}

/// An ordered sequence of coordinates. Used both for standalone linestrings
/// and for polygon rings (in which case the first and last coordinates must
/// coincide).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineString(pub Vec<Coord>);

impl LineString {
    pub fn new(coords: Vec<Coord>) -> Self {
        LineString(coords)
    }

    pub fn coords(&self) -> &[Coord] {
        &self.0
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the first and last coordinates coincide and the line has at
    /// least four coordinates (the minimum for a valid ring).
    pub fn is_closed_ring(&self) -> bool {
        self.0.len() >= 4 && self.0.first().unwrap().coincides(self.0.last().unwrap())
    }

    /// Iterator over consecutive coordinate pairs.
    pub fn segments(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.0.windows(2).map(|w| (w[0], w[1]))
    }

    pub fn envelope(&self) -> Envelope {
        Envelope::of_coords(&self.0)
    }
}

/// A polygon with one exterior ring and zero or more interior rings (holes).
/// Rings are stored as closed [`LineString`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    pub exterior: LineString,
    pub interiors: Vec<LineString>,
}

impl Polygon {
    pub fn new(exterior: LineString, interiors: Vec<LineString>) -> Self {
        Polygon {
            exterior,
            interiors,
        }
    }

    /// A polygon without holes.
    pub fn from_exterior(coords: Vec<Coord>) -> Self {
        Polygon::new(LineString::new(coords), Vec::new())
    }

    /// An axis-aligned rectangle polygon.
    pub fn rect(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Polygon::from_exterior(vec![
            Coord::new(min_x, min_y),
            Coord::new(max_x, min_y),
            Coord::new(max_x, max_y),
            Coord::new(min_x, max_y),
            Coord::new(min_x, min_y),
        ])
    }

    pub fn envelope(&self) -> Envelope {
        self.exterior.envelope()
    }

    /// All rings: the exterior first, then the interiors.
    pub fn rings(&self) -> impl Iterator<Item = &LineString> {
        std::iter::once(&self.exterior).chain(self.interiors.iter())
    }
}

/// Any simple-features geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    Point(Point),
    MultiPoint(Vec<Point>),
    LineString(LineString),
    MultiLineString(Vec<LineString>),
    Polygon(Polygon),
    MultiPolygon(Vec<Polygon>),
    GeometryCollection(Vec<Geometry>),
}

impl Geometry {
    pub fn point(x: f64, y: f64) -> Self {
        Geometry::Point(Point::new(x, y))
    }

    pub fn rect(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Geometry::Polygon(Polygon::rect(min_x, min_y, max_x, max_y))
    }

    /// The simple-features name (`Point`, `Polygon`, ...), as used in WKT.
    pub fn type_name(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "Point",
            Geometry::MultiPoint(_) => "MultiPoint",
            Geometry::LineString(_) => "LineString",
            Geometry::MultiLineString(_) => "MultiLineString",
            Geometry::Polygon(_) => "Polygon",
            Geometry::MultiPolygon(_) => "MultiPolygon",
            Geometry::GeometryCollection(_) => "GeometryCollection",
        }
    }

    /// Topological dimension: 0 for points, 1 for lines, 2 for areas.
    /// Collections report the maximum dimension of their members.
    pub fn dimension(&self) -> u8 {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => 0,
            Geometry::LineString(_) | Geometry::MultiLineString(_) => 1,
            Geometry::Polygon(_) | Geometry::MultiPolygon(_) => 2,
            Geometry::GeometryCollection(gs) => {
                gs.iter().map(Geometry::dimension).max().unwrap_or(0)
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        match self {
            Geometry::Point(_) => false,
            Geometry::MultiPoint(ps) => ps.is_empty(),
            Geometry::LineString(ls) => ls.is_empty(),
            Geometry::MultiLineString(ls) => ls.iter().all(LineString::is_empty),
            Geometry::Polygon(p) => p.exterior.is_empty(),
            Geometry::MultiPolygon(ps) => ps.iter().all(|p| p.exterior.is_empty()),
            Geometry::GeometryCollection(gs) => gs.iter().all(Geometry::is_empty),
        }
    }

    pub fn envelope(&self) -> Envelope {
        match self {
            Geometry::Point(p) => Envelope::of_coord(p.coord()),
            Geometry::MultiPoint(ps) => {
                let coords: Vec<Coord> = ps.iter().map(Point::coord).collect();
                Envelope::of_coords(&coords)
            }
            Geometry::LineString(ls) => ls.envelope(),
            Geometry::MultiLineString(ls) => {
                let mut e = Envelope::EMPTY;
                for l in ls {
                    e.expand(&l.envelope());
                }
                e
            }
            Geometry::Polygon(p) => p.envelope(),
            Geometry::MultiPolygon(ps) => {
                let mut e = Envelope::EMPTY;
                for p in ps {
                    e.expand(&p.envelope());
                }
                e
            }
            Geometry::GeometryCollection(gs) => {
                let mut e = Envelope::EMPTY;
                for g in gs {
                    e.expand(&g.envelope());
                }
                e
            }
        }
    }

    /// Every coordinate of the geometry, in definition order.
    pub fn coords(&self) -> Vec<Coord> {
        let mut out = Vec::new();
        self.collect_coords(&mut out);
        out
    }

    fn collect_coords(&self, out: &mut Vec<Coord>) {
        match self {
            Geometry::Point(p) => out.push(p.coord()),
            Geometry::MultiPoint(ps) => out.extend(ps.iter().map(Point::coord)),
            Geometry::LineString(ls) => out.extend_from_slice(&ls.0),
            Geometry::MultiLineString(ls) => {
                for l in ls {
                    out.extend_from_slice(&l.0);
                }
            }
            Geometry::Polygon(p) => {
                for r in p.rings() {
                    out.extend_from_slice(&r.0);
                }
            }
            Geometry::MultiPolygon(ps) => {
                for p in ps {
                    for r in p.rings() {
                        out.extend_from_slice(&r.0);
                    }
                }
            }
            Geometry::GeometryCollection(gs) => {
                for g in gs {
                    g.collect_coords(out);
                }
            }
        }
    }

    /// Decompose into primitive (non-multi, non-collection) parts.
    pub fn parts(&self) -> Vec<Geometry> {
        match self {
            Geometry::MultiPoint(ps) => ps.iter().copied().map(Geometry::Point).collect(),
            Geometry::MultiLineString(ls) => ls.iter().cloned().map(Geometry::LineString).collect(),
            Geometry::MultiPolygon(ps) => ps.iter().cloned().map(Geometry::Polygon).collect(),
            Geometry::GeometryCollection(gs) => gs.iter().flat_map(Geometry::parts).collect(),
            other => vec![other.clone()],
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::LineString(l)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_closed() {
        let p = Polygon::rect(0.0, 0.0, 1.0, 1.0);
        assert!(p.exterior.is_closed_ring());
        assert_eq!(p.envelope(), Envelope::new(0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn dimension_of_collection_is_max() {
        let g = Geometry::GeometryCollection(vec![
            Geometry::point(0.0, 0.0),
            Geometry::rect(0.0, 0.0, 1.0, 1.0),
        ]);
        assert_eq!(g.dimension(), 2);
    }

    #[test]
    fn parts_flattens_nested_collections() {
        let g = Geometry::GeometryCollection(vec![
            Geometry::MultiPoint(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]),
            Geometry::GeometryCollection(vec![Geometry::point(2.0, 2.0)]),
        ]);
        assert_eq!(g.parts().len(), 3);
    }

    #[test]
    fn envelope_of_multipolygon() {
        let g = Geometry::MultiPolygon(vec![
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(5.0, 5.0, 6.0, 7.0),
        ]);
        assert_eq!(g.envelope(), Envelope::new(0.0, 0.0, 6.0, 7.0));
    }

    #[test]
    fn emptiness() {
        assert!(Geometry::MultiPoint(vec![]).is_empty());
        assert!(!Geometry::point(1.0, 2.0).is_empty());
        assert!(Geometry::GeometryCollection(vec![]).is_empty());
    }

    #[test]
    fn segments_iteration() {
        let ls = LineString::new(vec![
            Coord::new(0.0, 0.0),
            Coord::new(1.0, 0.0),
            Coord::new(1.0, 1.0),
        ]);
        let segs: Vec<_> = ls.segments().collect();
        assert_eq!(segs.len(), 2);
        assert!(segs[0].0.coincides(&Coord::new(0.0, 0.0)));
        assert!(segs[1].1.coincides(&Coord::new(1.0, 1.0)));
    }
}
