//! An R-tree spatial index.
//!
//! Supports incremental insertion (quadratic-ish split with a linear seed
//! pick) and STR bulk loading. This is the index behind both the Strabon-like
//! store's geometry column and the OBDA engine's relational access path —
//! the asymmetry the Geographica reproduction (bench B2/B3) measures is
//! exactly "R-tree probe vs full scan".

use crate::coord::{Coord, Envelope};

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 4;

#[derive(Debug, Clone)]
struct Entry<T> {
    envelope: Envelope,
    item: T,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf {
        entries: Vec<Entry<T>>,
    },
    Inner {
        children: Vec<(Envelope, Box<Node<T>>)>,
    },
}

impl<T> Node<T> {
    fn envelope(&self) -> Envelope {
        match self {
            Node::Leaf { entries } => {
                let mut e = Envelope::EMPTY;
                for en in entries {
                    e.expand(&en.envelope);
                }
                e
            }
            Node::Inner { children } => {
                let mut e = Envelope::EMPTY;
                for (ce, _) in children {
                    e.expand(ce);
                }
                e
            }
        }
    }
}

/// An R-tree mapping envelopes to items of type `T`.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bulk load with Sort-Tile-Recursive packing. Much better tree quality
    /// than repeated insertion for static datasets (all App Lab datasets are
    /// bulk-loaded once).
    pub fn bulk_load(mut items: Vec<(Envelope, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return RTree::new();
        }
        // Sort by center-x, slice into vertical strips, sort each by center-y.
        items.sort_by(|a, b| {
            a.0.center()
                .x
                .partial_cmp(&b.0.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = len.div_ceil(strip_count);
        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        let mut items = items.into_iter().peekable();
        while items.peek().is_some() {
            let mut strip: Vec<(Envelope, T)> = Vec::with_capacity(per_strip);
            for _ in 0..per_strip {
                match items.next() {
                    Some(it) => strip.push(it),
                    None => break,
                }
            }
            strip.sort_by(|a, b| {
                a.0.center()
                    .y
                    .partial_cmp(&b.0.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut strip = strip.into_iter().peekable();
            while strip.peek().is_some() {
                let mut entries = Vec::with_capacity(MAX_ENTRIES);
                for _ in 0..MAX_ENTRIES {
                    match strip.next() {
                        Some((envelope, item)) => entries.push(Entry { envelope, item }),
                        None => break,
                    }
                }
                leaves.push(Node::Leaf { entries });
            }
        }
        // Pack upward.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            let mut children = Vec::with_capacity(MAX_ENTRIES);
            for node in level {
                children.push((node.envelope(), Box::new(node)));
                if children.len() == MAX_ENTRIES {
                    next.push(Node::Inner {
                        children: std::mem::take(&mut children),
                    });
                }
            }
            if !children.is_empty() {
                next.push(Node::Inner { children });
            }
            level = next;
        }
        RTree {
            root: level.into_iter().next().unwrap(),
            len,
        }
    }

    /// Insert one item.
    pub fn insert(&mut self, envelope: Envelope, item: T) {
        self.len += 1;
        if let Some((e1, n1, e2, n2)) = insert_rec(&mut self.root, envelope, item) {
            // Root split: grow the tree.
            let old = std::mem::replace(
                &mut self.root,
                Node::Inner {
                    children: Vec::new(),
                },
            );
            drop(old); // old root content already moved into n1/n2 by insert_rec
            self.root = Node::Inner {
                children: vec![(e1, n1), (e2, n2)],
            };
        }
    }

    /// All items whose envelope intersects `query`.
    pub fn query<'a>(&'a self, query: &Envelope) -> Vec<&'a T> {
        let mut out = Vec::new();
        self.visit(query, &mut |item| out.push(item));
        out
    }

    /// Visit every item whose envelope intersects `query`.
    pub fn visit<'a>(&'a self, query: &Envelope, f: &mut dyn FnMut(&'a T)) {
        visit_rec(&self.root, query, f);
    }

    /// All items whose envelope contains the coordinate.
    pub fn query_point(&self, c: Coord) -> Vec<&T> {
        self.query(&Envelope::of_coord(c))
    }

    /// Nearest item to `c` by envelope distance (branch-and-bound).
    pub fn nearest(&self, c: Coord) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<(f64, &T)> = None;
        nearest_rec(&self.root, c, &mut best);
        best.map(|(_, t)| t)
    }
}

fn visit_rec<'a, T>(node: &'a Node<T>, query: &Envelope, f: &mut dyn FnMut(&'a T)) {
    match node {
        Node::Leaf { entries } => {
            for e in entries {
                if e.envelope.intersects(query) {
                    f(&e.item);
                }
            }
        }
        Node::Inner { children } => {
            for (ce, child) in children {
                if ce.intersects(query) {
                    visit_rec(child, query, f);
                }
            }
        }
    }
}

fn nearest_rec<'a, T>(node: &'a Node<T>, c: Coord, best: &mut Option<(f64, &'a T)>) {
    let probe = Envelope::of_coord(c);
    match node {
        Node::Leaf { entries } => {
            for e in entries {
                let d = e.envelope.distance(&probe);
                if best.is_none_or(|(bd, _)| d < bd) {
                    *best = Some((d, &e.item));
                }
            }
        }
        Node::Inner { children } => {
            let mut order: Vec<(f64, &Box<Node<T>>)> = children
                .iter()
                .map(|(ce, ch)| (ce.distance(&probe), ch))
                .collect();
            order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for (d, child) in order {
                if best.is_none_or(|(bd, _)| d < bd) {
                    nearest_rec(child, c, best);
                }
            }
        }
    }
}

type Split<T> = (Envelope, Box<Node<T>>, Envelope, Box<Node<T>>);

/// Recursive insert; returns Some(split) when the node had to split.
fn insert_rec<T>(node: &mut Node<T>, envelope: Envelope, item: T) -> Option<Split<T>> {
    match node {
        Node::Leaf { entries } => {
            entries.push(Entry { envelope, item });
            if entries.len() <= MAX_ENTRIES {
                return None;
            }
            let split_entries = std::mem::take(entries);
            let (g1, g2) = split_entries_by_envelope(split_entries, |e| e.envelope);
            let e1 = group_env(&g1, |e| e.envelope);
            let e2 = group_env(&g2, |e| e.envelope);
            *node = Node::Leaf { entries: g1 };
            Some((
                e1,
                Box::new(std::mem::replace(
                    node,
                    Node::Leaf {
                        entries: Vec::new(),
                    },
                )),
                e2,
                Box::new(Node::Leaf { entries: g2 }),
            ))
        }
        Node::Inner { children } => {
            // Choose the child whose envelope needs the least enlargement.
            let mut best_i = 0;
            let mut best_delta = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (i, (ce, _)) in children.iter().enumerate() {
                let enlarged = ce.union(&envelope);
                let delta = enlarged.area() - ce.area();
                if delta < best_delta || (delta == best_delta && ce.area() < best_area) {
                    best_delta = delta;
                    best_area = ce.area();
                    best_i = i;
                }
            }
            let (ce, child) = &mut children[best_i];
            if let Some((se1, sn1, se2, sn2)) = insert_rec(child, envelope, item) {
                // Child split: replace it with the two halves.
                children.remove(best_i);
                children.push((se1, sn1));
                children.push((se2, sn2));
            } else {
                *ce = ce.union(&envelope);
            }
            if children.len() <= MAX_ENTRIES {
                return None;
            }
            let split_children = std::mem::take(children);
            let (g1, g2) = split_entries_by_envelope(split_children, |c| c.0);
            let e1 = group_env(&g1, |c| c.0);
            let e2 = group_env(&g2, |c| c.0);
            *node = Node::Inner { children: g1 };
            Some((
                e1,
                Box::new(std::mem::replace(
                    node,
                    Node::Inner {
                        children: Vec::new(),
                    },
                )),
                e2,
                Box::new(Node::Inner { children: g2 }),
            ))
        }
    }
}

fn group_env<I>(group: &[I], env: impl Fn(&I) -> Envelope) -> Envelope {
    let mut e = Envelope::EMPTY;
    for i in group {
        e.expand(&env(i));
    }
    e
}

/// Split entries into two groups using the classic linear seed pick: take the
/// two entries farthest apart on the dominant axis as seeds, then assign each
/// remaining entry to the group whose envelope grows least.
fn split_entries_by_envelope<I>(items: Vec<I>, env: impl Fn(&I) -> Envelope) -> (Vec<I>, Vec<I>) {
    debug_assert!(items.len() >= 2);
    // Seed pick.
    let mut lo_x = 0;
    let mut hi_x = 0;
    let mut lo_y = 0;
    let mut hi_y = 0;
    for (i, it) in items.iter().enumerate() {
        let e = env(it);
        if e.min_x < env(&items[lo_x]).min_x {
            lo_x = i;
        }
        if e.max_x > env(&items[hi_x]).max_x {
            hi_x = i;
        }
        if e.min_y < env(&items[lo_y]).min_y {
            lo_y = i;
        }
        if e.max_y > env(&items[hi_y]).max_y {
            hi_y = i;
        }
    }
    let total = group_env(&items, &env);
    let sep_x = if total.width() > 0.0 {
        (env(&items[hi_x]).min_x - env(&items[lo_x]).max_x) / total.width()
    } else {
        0.0
    };
    let sep_y = if total.height() > 0.0 {
        (env(&items[hi_y]).min_y - env(&items[lo_y]).max_y) / total.height()
    } else {
        0.0
    };
    let (mut s1, mut s2) = if sep_x >= sep_y {
        (lo_x, hi_x)
    } else {
        (lo_y, hi_y)
    };
    if s1 == s2 {
        s2 = if s1 == 0 { 1 } else { 0 };
    }
    if s1 > s2 {
        std::mem::swap(&mut s1, &mut s2);
    }

    let mut g1: Vec<I> = Vec::with_capacity(items.len() / 2 + 1);
    let mut g2: Vec<I> = Vec::with_capacity(items.len() / 2 + 1);
    let mut e1 = Envelope::EMPTY;
    let mut e2 = Envelope::EMPTY;
    let n = items.len();
    for (i, it) in items.into_iter().enumerate() {
        let e = env(&it);
        if i == s1 {
            e1.expand(&e);
            g1.push(it);
        } else if i == s2 {
            e2.expand(&e);
            g2.push(it);
        } else if g1.len() + (n - i) <= MIN_ENTRIES {
            // Must fill g1 to satisfy the minimum.
            e1.expand(&e);
            g1.push(it);
        } else if g2.len() + (n - i) <= MIN_ENTRIES {
            e2.expand(&e);
            g2.push(it);
        } else {
            let d1 = e1.union(&e).area() - e1.area();
            let d2 = e2.union(&e).area() - e2.area();
            if d1 <= d2 {
                e1.expand(&e);
                g1.push(it);
            } else {
                e2.expand(&e);
                g2.push(it);
            }
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(x: f64, y: f64) -> Envelope {
        Envelope::new(x, y, x + 1.0, y + 1.0)
    }

    #[test]
    fn insert_and_query() {
        let mut t = RTree::new();
        for i in 0..100 {
            let x = (i % 10) as f64 * 2.0;
            let y = (i / 10) as f64 * 2.0;
            t.insert(env(x, y), i);
        }
        assert_eq!(t.len(), 100);
        let hits = t.query(&Envelope::new(0.0, 0.0, 3.0, 3.0));
        // Cells at (0,0), (2,0), (0,2), (2,2) → items 0, 1, 10, 11.
        let mut ids: Vec<i32> = hits.into_iter().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 10, 11]);
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        let items: Vec<(Envelope, usize)> = (0..500)
            .map(|i| {
                let x = (i * 37 % 100) as f64;
                let y = (i * 61 % 100) as f64;
                (Envelope::new(x, y, x + 2.0, y + 2.0), i)
            })
            .collect();
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), 500);
        let query = Envelope::new(20.0, 20.0, 40.0, 40.0);
        let mut expected: Vec<usize> = items
            .iter()
            .filter(|(e, _)| e.intersects(&query))
            .map(|(_, i)| *i)
            .collect();
        expected.sort_unstable();
        let mut got: Vec<usize> = tree.query(&query).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn incremental_matches_linear_scan() {
        let items: Vec<(Envelope, usize)> = (0..300)
            .map(|i| {
                let x = (i * 17 % 50) as f64;
                let y = (i * 29 % 50) as f64;
                (Envelope::new(x, y, x + 1.5, y + 1.5), i)
            })
            .collect();
        let mut tree = RTree::new();
        for (e, i) in items.clone() {
            tree.insert(e, i);
        }
        for (qx, qy) in [(0.0, 0.0), (10.0, 25.0), (45.0, 45.0)] {
            let query = Envelope::new(qx, qy, qx + 8.0, qy + 8.0);
            let mut expected: Vec<usize> = items
                .iter()
                .filter(|(e, _)| e.intersects(&query))
                .map(|(_, i)| *i)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<usize> = tree.query(&query).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.query(&Envelope::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest(Coord::new(0.0, 0.0)).is_none());
        let t2: RTree<u32> = RTree::bulk_load(vec![]);
        assert!(t2.is_empty());
    }

    #[test]
    fn nearest_finds_closest() {
        let items: Vec<(Envelope, usize)> = (0..20)
            .map(|i| {
                let x = i as f64 * 10.0;
                (Envelope::new(x, 0.0, x + 1.0, 1.0), i)
            })
            .collect();
        let tree = RTree::bulk_load(items);
        assert_eq!(*tree.nearest(Coord::new(52.0, 0.5)).unwrap(), 5);
        assert_eq!(*tree.nearest(Coord::new(-100.0, 0.0)).unwrap(), 0);
    }

    #[test]
    fn point_query() {
        let tree = RTree::bulk_load(vec![
            (Envelope::new(0.0, 0.0, 10.0, 10.0), "a"),
            (Envelope::new(5.0, 5.0, 15.0, 15.0), "b"),
        ]);
        let hits = tree.query_point(Coord::new(7.0, 7.0));
        assert_eq!(hits.len(), 2);
        let hits = tree.query_point(Coord::new(1.0, 1.0));
        assert_eq!(hits, vec![&"a"]);
    }
}
