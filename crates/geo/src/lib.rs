//! Geometry substrate for the Copernicus App Lab reproduction.
//!
//! Implements the subset of the OGC Simple Features model that the App Lab
//! stack depends on: planar geometries in lon/lat coordinates, WKT reading
//! and writing (the GeoSPARQL literal serialization), topological predicates
//! (`sfIntersects`, `sfContains`, ...), measurement algorithms, an R-tree
//! spatial index, and the tile grid used by the streaming-data caches.
//!
//! Everything is hand-rolled: the offline dependency policy for this
//! reproduction does not allow geospatial crates (see `DESIGN.md` §2).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod algorithms;
pub mod coord;
pub mod geometry;
pub mod relate;
pub mod rtree;
pub mod tile;
pub mod wkt;

pub use coord::{Coord, Envelope};
pub use geometry::{Geometry, LineString, Point, Polygon};
pub use relate::SpatialRelation;
pub use rtree::RTree;
pub use wkt::{parse_wkt, write_wkt, WktError};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::algorithms::{area, centroid, distance, length};
    pub use crate::coord::{Coord, Envelope};
    pub use crate::geometry::{Geometry, LineString, Point, Polygon};
    pub use crate::relate::{self, SpatialRelation};
    pub use crate::rtree::RTree;
    pub use crate::wkt::{parse_wkt, write_wkt};
}
