//! Well-Known Text reading and writing.
//!
//! This is the serialization GeoSPARQL uses for `geo:wktLiteral` values
//! (optionally prefixed with a CRS IRI, which we accept and ignore since all
//! App Lab data is WGS84).

use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Point, Polygon};
use std::fmt;

/// Error produced while parsing WKT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WktError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for WktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WKT parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for WktError {}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, WktError> {
        Err(WktError {
            message: message.into(),
            position: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), WktError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected '{}', found {:?}",
                b as char,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_uppercase()
    }

    /// Try to consume the keyword `EMPTY`; restores position on failure.
    fn try_empty(&mut self) -> bool {
        let save = self.pos;
        if self.keyword() == "EMPTY" {
            true
        } else {
            self.pos = save;
            false
        }
    }

    fn number(&mut self) -> Result<f64, WktError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || b == b'-' || b == b'+' || b == b'.' || b == b'e' || b == b'E' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return self.err("expected number");
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|e| WktError {
                message: format!("bad number: {e}"),
                position: start,
            })
    }

    fn coord(&mut self) -> Result<Coord, WktError> {
        let x = self.number()?;
        let y = self.number()?;
        // Silently accept and drop a Z (and M) ordinate: some Copernicus
        // shapefile exports carry them, the stack is strictly 2-D.
        while matches!(self.peek(), Some(b) if b == b'-' || b == b'+' || b == b'.' || b.is_ascii_digit())
        {
            self.number()?;
        }
        Ok(Coord::new(x, y))
    }

    fn coord_seq(&mut self) -> Result<Vec<Coord>, WktError> {
        self.eat(b'(')?;
        let mut coords = vec![self.coord()?];
        while self.peek() == Some(b',') {
            self.eat(b',')?;
            coords.push(self.coord()?);
        }
        self.eat(b')')?;
        Ok(coords)
    }

    fn polygon_body(&mut self) -> Result<Polygon, WktError> {
        self.eat(b'(')?;
        let exterior = LineString::new(self.coord_seq()?);
        let mut interiors = Vec::new();
        while self.peek() == Some(b',') {
            self.eat(b',')?;
            interiors.push(LineString::new(self.coord_seq()?));
        }
        self.eat(b')')?;
        Ok(Polygon::new(exterior, interiors))
    }

    fn geometry(&mut self) -> Result<Geometry, WktError> {
        let kw = self.keyword();
        match kw.as_str() {
            "POINT" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPoint(vec![]));
                }
                self.eat(b'(')?;
                let c = self.coord()?;
                self.eat(b')')?;
                Ok(Geometry::Point(Point(c)))
            }
            "MULTIPOINT" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPoint(vec![]));
                }
                self.eat(b'(')?;
                let mut points = Vec::new();
                loop {
                    // Accept both `MULTIPOINT ((1 2), (3 4))` and
                    // `MULTIPOINT (1 2, 3 4)`.
                    if self.peek() == Some(b'(') {
                        self.eat(b'(')?;
                        points.push(Point(self.coord()?));
                        self.eat(b')')?;
                    } else {
                        points.push(Point(self.coord()?));
                    }
                    if self.peek() == Some(b',') {
                        self.eat(b',')?;
                    } else {
                        break;
                    }
                }
                self.eat(b')')?;
                Ok(Geometry::MultiPoint(points))
            }
            "LINESTRING" => {
                if self.try_empty() {
                    return Ok(Geometry::LineString(LineString::new(vec![])));
                }
                Ok(Geometry::LineString(LineString::new(self.coord_seq()?)))
            }
            "MULTILINESTRING" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiLineString(vec![]));
                }
                self.eat(b'(')?;
                let mut lines = vec![LineString::new(self.coord_seq()?)];
                while self.peek() == Some(b',') {
                    self.eat(b',')?;
                    lines.push(LineString::new(self.coord_seq()?));
                }
                self.eat(b')')?;
                Ok(Geometry::MultiLineString(lines))
            }
            "POLYGON" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPolygon(vec![]));
                }
                Ok(Geometry::Polygon(self.polygon_body()?))
            }
            "MULTIPOLYGON" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPolygon(vec![]));
                }
                self.eat(b'(')?;
                let mut polys = vec![self.polygon_body()?];
                while self.peek() == Some(b',') {
                    self.eat(b',')?;
                    polys.push(self.polygon_body()?);
                }
                self.eat(b')')?;
                Ok(Geometry::MultiPolygon(polys))
            }
            "GEOMETRYCOLLECTION" => {
                if self.try_empty() {
                    return Ok(Geometry::GeometryCollection(vec![]));
                }
                self.eat(b'(')?;
                let mut geoms = vec![self.geometry()?];
                while self.peek() == Some(b',') {
                    self.eat(b',')?;
                    geoms.push(self.geometry()?);
                }
                self.eat(b')')?;
                Ok(Geometry::GeometryCollection(geoms))
            }
            other => self.err(format!("unknown geometry type {other:?}")),
        }
    }
}

/// Parse a WKT string into a [`Geometry`].
///
/// An optional leading CRS IRI in angle brackets (the GeoSPARQL
/// `wktLiteral` convention, e.g. `<http://www.opengis.net/def/crs/EPSG/0/4326>
/// POINT(2.25 48.86)`) is accepted and ignored.
pub fn parse_wkt(input: &str) -> Result<Geometry, WktError> {
    let trimmed = input.trim_start();
    let offset = input.len() - trimmed.len();
    let body = if let Some(rest) = trimmed.strip_prefix('<') {
        match rest.find('>') {
            Some(end) => &rest[end + 1..],
            None => {
                return Err(WktError {
                    message: "unterminated CRS IRI".into(),
                    position: offset,
                })
            }
        }
    } else {
        trimmed
    };
    let mut p = Parser::new(body);
    let g = p.geometry()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after geometry");
    }
    Ok(g)
}

fn write_coord(out: &mut String, c: Coord) {
    use fmt::Write;
    // `{}` on f64 prints the shortest representation that round-trips.
    let _ = write!(out, "{} {}", c.x, c.y);
}

fn write_coord_seq(out: &mut String, coords: &[Coord]) {
    out.push('(');
    for (i, c) in coords.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_coord(out, *c);
    }
    out.push(')');
}

fn write_polygon_body(out: &mut String, p: &Polygon) {
    out.push('(');
    write_coord_seq(out, p.exterior.coords());
    for hole in &p.interiors {
        out.push_str(", ");
        write_coord_seq(out, hole.coords());
    }
    out.push(')');
}

/// Serialize a [`Geometry`] to WKT. The output round-trips through
/// [`parse_wkt`] exactly (f64 shortest-representation printing).
pub fn write_wkt(g: &Geometry) -> String {
    let mut out = String::new();
    write_geometry(&mut out, g);
    out
}

fn write_geometry(out: &mut String, g: &Geometry) {
    match g {
        Geometry::Point(p) => {
            out.push_str("POINT (");
            write_coord(out, p.coord());
            out.push(')');
        }
        Geometry::MultiPoint(ps) => {
            if ps.is_empty() {
                out.push_str("MULTIPOINT EMPTY");
                return;
            }
            out.push_str("MULTIPOINT (");
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('(');
                write_coord(out, p.coord());
                out.push(')');
            }
            out.push(')');
        }
        Geometry::LineString(ls) => {
            if ls.is_empty() {
                out.push_str("LINESTRING EMPTY");
                return;
            }
            out.push_str("LINESTRING ");
            write_coord_seq(out, ls.coords());
        }
        Geometry::MultiLineString(lines) => {
            if lines.is_empty() {
                out.push_str("MULTILINESTRING EMPTY");
                return;
            }
            out.push_str("MULTILINESTRING (");
            for (i, l) in lines.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_coord_seq(out, l.coords());
            }
            out.push(')');
        }
        Geometry::Polygon(p) => {
            if p.exterior.is_empty() {
                out.push_str("POLYGON EMPTY");
                return;
            }
            out.push_str("POLYGON ");
            write_polygon_body(out, p);
        }
        Geometry::MultiPolygon(ps) => {
            if ps.is_empty() {
                out.push_str("MULTIPOLYGON EMPTY");
                return;
            }
            out.push_str("MULTIPOLYGON (");
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_polygon_body(out, p);
            }
            out.push(')');
        }
        Geometry::GeometryCollection(gs) => {
            if gs.is_empty() {
                out.push_str("GEOMETRYCOLLECTION EMPTY");
                return;
            }
            out.push_str("GEOMETRYCOLLECTION (");
            for (i, g) in gs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_geometry(out, g);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_point() {
        let g = parse_wkt("POINT (2.3522 48.8566)").unwrap();
        assert_eq!(g, Geometry::point(2.3522, 48.8566));
    }

    #[test]
    fn parse_point_with_crs_prefix() {
        let g = parse_wkt("<http://www.opengis.net/def/crs/EPSG/0/4326> POINT(2 48)").unwrap();
        assert_eq!(g, Geometry::point(2.0, 48.0));
    }

    #[test]
    fn parse_polygon_with_hole() {
        let g = parse_wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))")
            .unwrap();
        match g {
            Geometry::Polygon(p) => {
                assert_eq!(p.exterior.len(), 5);
                assert_eq!(p.interiors.len(), 1);
            }
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn parse_multipoint_both_syntaxes() {
        let a = parse_wkt("MULTIPOINT ((1 2), (3 4))").unwrap();
        let b = parse_wkt("MULTIPOINT (1 2, 3 4)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_collection() {
        let g = parse_wkt("GEOMETRYCOLLECTION (POINT (1 1), LINESTRING (0 0, 1 1))").unwrap();
        assert_eq!(g.parts().len(), 2);
    }

    #[test]
    fn parse_empty_variants() {
        assert!(parse_wkt("POINT EMPTY").unwrap().is_empty());
        assert!(parse_wkt("POLYGON EMPTY").unwrap().is_empty());
        assert!(parse_wkt("GEOMETRYCOLLECTION EMPTY").unwrap().is_empty());
    }

    #[test]
    fn parse_z_ordinate_dropped() {
        let g = parse_wkt("LINESTRING (0 0 5, 1 1 6)").unwrap();
        match g {
            Geometry::LineString(ls) => assert_eq!(ls.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_wkt("CIRCLE (0 0, 5)").is_err());
        assert!(parse_wkt("POINT (1)").is_err());
        assert!(parse_wkt("POINT (1 2) extra").is_err());
        assert!(parse_wkt("POLYGON ((0 0, 1 1)").is_err());
        assert!(parse_wkt("<http://unterminated POINT (1 2)").is_err());
        assert!(parse_wkt("").is_err());
    }

    #[test]
    fn roundtrip_exact() {
        for wkt in [
            "POINT (2.3522 48.8566)",
            "LINESTRING (0 0, 1 0, 1 1)",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))",
            "MULTIPOINT ((1 2), (3 4))",
            "GEOMETRYCOLLECTION (POINT (1 1), LINESTRING (0 0, 1 1))",
        ] {
            let g = parse_wkt(wkt).unwrap();
            let written = write_wkt(&g);
            let reparsed = parse_wkt(&written).unwrap();
            assert_eq!(g, reparsed, "roundtrip failed for {wkt}");
        }
    }

    #[test]
    fn scientific_notation() {
        let g = parse_wkt("POINT (1e-3 -2.5E2)").unwrap();
        assert_eq!(g, Geometry::point(0.001, -250.0));
    }
}
