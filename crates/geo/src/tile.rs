//! A quadtree tile grid over a geographic domain.
//!
//! OPeNDAP serialization caches subsets "based on internal array indices"
//! (paper §5): recurrent requests for the same sub-array hit the cache. The
//! SDL reproduces this by snapping viewport requests to tiles of a fixed
//! grid; this module defines that grid. The WCS-style baseline in bench B7
//! instead caches raw bounding boxes, which almost never recur while panning.

use crate::coord::{Coord, Envelope};
use serde::{Deserialize, Serialize};

/// A tile address: zoom level plus column/row in a 2^z × 2^z grid laid over
/// the domain envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileId {
    pub zoom: u8,
    pub col: u32,
    pub row: u32,
}

/// A tile grid over a fixed domain (for Copernicus global products the
/// domain is the whole globe: lon −180..180, lat −90..90).
#[derive(Debug, Clone, Copy)]
pub struct TileGrid {
    pub domain: Envelope,
}

impl TileGrid {
    /// Global WGS84 grid.
    pub fn global() -> Self {
        TileGrid {
            domain: Envelope::new(-180.0, -90.0, 180.0, 90.0),
        }
    }

    pub fn new(domain: Envelope) -> Self {
        TileGrid { domain }
    }

    fn cells(zoom: u8) -> u32 {
        1u32 << zoom.min(31)
    }

    /// The tile containing a coordinate at a zoom level. Coordinates outside
    /// the domain are clamped to the border tiles.
    pub fn tile_at(&self, c: Coord, zoom: u8) -> TileId {
        let n = Self::cells(zoom) as f64;
        let fx = ((c.x - self.domain.min_x) / self.domain.width()).clamp(0.0, 1.0);
        let fy = ((c.y - self.domain.min_y) / self.domain.height()).clamp(0.0, 1.0);
        let col = ((fx * n) as u32).min(Self::cells(zoom) - 1);
        let row = ((fy * n) as u32).min(Self::cells(zoom) - 1);
        TileId { zoom, col, row }
    }

    /// The envelope covered by a tile.
    pub fn tile_envelope(&self, id: TileId) -> Envelope {
        let n = Self::cells(id.zoom) as f64;
        let w = self.domain.width() / n;
        let h = self.domain.height() / n;
        let min_x = self.domain.min_x + id.col as f64 * w;
        let min_y = self.domain.min_y + id.row as f64 * h;
        Envelope::new(min_x, min_y, min_x + w, min_y + h)
    }

    /// All tiles at `zoom` intersecting `query`, in row-major order.
    pub fn covering(&self, query: &Envelope, zoom: u8) -> Vec<TileId> {
        if query.is_empty() {
            return Vec::new();
        }
        let clipped = query.intersection(&self.domain);
        if clipped.is_empty() {
            return Vec::new();
        }
        let lo = self.tile_at(Coord::new(clipped.min_x, clipped.min_y), zoom);
        // Nudge the max corner inward so an exact-boundary query does not
        // spill into the next tile.
        let eps_x = self.domain.width() * 1e-12;
        let eps_y = self.domain.height() * 1e-12;
        let hi = self.tile_at(
            Coord::new(clipped.max_x - eps_x, clipped.max_y - eps_y),
            zoom,
        );
        let mut out = Vec::with_capacity(((hi.row - lo.row + 1) * (hi.col - lo.col + 1)) as usize);
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                out.push(TileId { zoom, col, row });
            }
        }
        out
    }

    /// Pick a zoom level such that one tile is no larger than `target` on
    /// the x axis (capped at `max_zoom`).
    pub fn zoom_for_resolution(&self, target: f64, max_zoom: u8) -> u8 {
        let mut zoom = 0u8;
        let mut width = self.domain.width();
        while width > target && zoom < max_zoom {
            width /= 2.0;
            zoom += 1;
        }
        zoom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_roundtrip() {
        let grid = TileGrid::global();
        let c = Coord::new(2.3522, 48.8566); // Paris
        for zoom in 0..12 {
            let t = grid.tile_at(c, zoom);
            let env = grid.tile_envelope(t);
            assert!(env.contains_coord(c), "zoom {zoom}: {env:?} misses {c:?}");
        }
    }

    #[test]
    fn zoom_zero_single_tile() {
        let grid = TileGrid::global();
        let t = grid.tile_at(Coord::new(100.0, -45.0), 0);
        assert_eq!(
            t,
            TileId {
                zoom: 0,
                col: 0,
                row: 0
            }
        );
        assert_eq!(grid.tile_envelope(t), grid.domain);
    }

    #[test]
    fn covering_counts() {
        let grid = TileGrid::global();
        // One hemisphere at zoom 1 = 1x2 tiles (west half).
        let west = Envelope::new(-179.0, -89.0, -1.0, 89.0);
        assert_eq!(grid.covering(&west, 1).len(), 2);
        // Whole domain at zoom 2 = 16 tiles.
        assert_eq!(grid.covering(&grid.domain, 2).len(), 16);
    }

    #[test]
    fn covering_tiles_actually_cover() {
        let grid = TileGrid::global();
        let q = Envelope::new(2.0, 48.0, 3.0, 49.0);
        let tiles = grid.covering(&q, 8);
        assert!(!tiles.is_empty());
        let mut union = Envelope::EMPTY;
        for t in &tiles {
            union.expand(&grid.tile_envelope(*t));
        }
        assert!(union.contains_envelope(&q));
    }

    #[test]
    fn out_of_domain_clamps() {
        let grid = TileGrid::global();
        let t = grid.tile_at(Coord::new(500.0, 500.0), 3);
        assert_eq!(t.col, 7);
        assert_eq!(t.row, 7);
        assert!(grid
            .covering(&Envelope::new(200.0, 95.0, 210.0, 99.0), 3)
            .is_empty());
    }

    #[test]
    fn zoom_for_resolution() {
        let grid = TileGrid::global();
        assert_eq!(grid.zoom_for_resolution(360.0, 20), 0);
        assert_eq!(grid.zoom_for_resolution(180.0, 20), 1);
        assert_eq!(grid.zoom_for_resolution(1.0, 20), 9); // 360/2^9 ≈ 0.70
        assert_eq!(grid.zoom_for_resolution(0.0001, 4), 4); // capped
    }
}
