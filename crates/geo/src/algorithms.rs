//! Measurement and construction algorithms over geometries.

use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Polygon};

/// Twice the signed area of the triangle (a, b, c). Positive when the turn
/// a→b→c is counter-clockwise. This is the orientation kernel every predicate
/// in this crate is built on.
#[inline]
pub fn cross(a: Coord, b: Coord, c: Coord) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Signed area of a ring by the shoelace formula (positive when
/// counter-clockwise). The ring may be open or closed.
pub fn signed_ring_area(ring: &[Coord]) -> f64 {
    if ring.len() < 3 {
        return 0.0;
    }
    let mut sum = 0.0;
    let n = ring.len();
    for i in 0..n {
        let a = ring[i];
        let b = ring[(i + 1) % n];
        sum += a.x * b.y - b.x * a.y;
    }
    sum / 2.0
}

/// Unsigned area of a polygon (exterior minus holes).
pub fn polygon_area(p: &Polygon) -> f64 {
    let mut a = signed_ring_area(p.exterior.coords()).abs();
    for hole in &p.interiors {
        a -= signed_ring_area(hole.coords()).abs();
    }
    a.max(0.0)
}

/// Unsigned area of any geometry (0 for points and lines).
pub fn area(g: &Geometry) -> f64 {
    match g {
        Geometry::Polygon(p) => polygon_area(p),
        Geometry::MultiPolygon(ps) => ps.iter().map(polygon_area).sum(),
        Geometry::GeometryCollection(gs) => gs.iter().map(area).sum(),
        _ => 0.0,
    }
}

/// Total length of the linear components of a geometry (perimeters are *not*
/// counted for polygons, matching the OGC `geof:length` behaviour on lines).
pub fn length(g: &Geometry) -> f64 {
    match g {
        Geometry::LineString(ls) => line_length(ls),
        Geometry::MultiLineString(ls) => ls.iter().map(line_length).sum(),
        Geometry::GeometryCollection(gs) => gs.iter().map(length).sum(),
        _ => 0.0,
    }
}

fn line_length(ls: &LineString) -> f64 {
    ls.segments().map(|(a, b)| a.distance(&b)).sum()
}

/// Centroid of a geometry. Polygons use the area-weighted centroid; lines use
/// the length-weighted midpoint; points average. Mixed collections use the
/// highest-dimension members (matching JTS semantics closely enough for the
/// visualization layer). Returns `None` for empty geometries.
pub fn centroid(g: &Geometry) -> Option<Coord> {
    let dim = g.dimension();
    let mut acc_x = 0.0;
    let mut acc_y = 0.0;
    let mut weight = 0.0;
    let mut count = 0usize;
    for part in g.parts() {
        if part.dimension() != dim || part.is_empty() {
            continue;
        }
        match &part {
            Geometry::Point(p) => {
                acc_x += p.x();
                acc_y += p.y();
                weight += 1.0;
                count += 1;
            }
            Geometry::LineString(ls) => {
                for (a, b) in ls.segments() {
                    let len = a.distance(&b);
                    acc_x += (a.x + b.x) / 2.0 * len;
                    acc_y += (a.y + b.y) / 2.0 * len;
                    weight += len;
                    count += 1;
                }
            }
            Geometry::Polygon(p) => {
                let (cx, cy, a) = ring_centroid(p.exterior.coords());
                acc_x += cx * a.abs();
                acc_y += cy * a.abs();
                let mut w = a.abs();
                for hole in &p.interiors {
                    let (hx, hy, ha) = ring_centroid(hole.coords());
                    acc_x -= hx * ha.abs();
                    acc_y -= hy * ha.abs();
                    w -= ha.abs();
                }
                weight += w;
                count += 1;
            }
            _ => unreachable!("parts() yields primitives only"),
        }
    }
    if count == 0 {
        return None;
    }
    if weight.abs() < f64::EPSILON {
        // Degenerate (zero-area polygon / zero-length line): average coords.
        let coords = g.coords();
        if coords.is_empty() {
            return None;
        }
        let n = coords.len() as f64;
        return Some(Coord::new(
            coords.iter().map(|c| c.x).sum::<f64>() / n,
            coords.iter().map(|c| c.y).sum::<f64>() / n,
        ));
    }
    Some(Coord::new(acc_x / weight, acc_y / weight))
}

/// Centroid and signed area of a ring.
fn ring_centroid(ring: &[Coord]) -> (f64, f64, f64) {
    let a = signed_ring_area(ring);
    if ring.len() < 3 || a.abs() < f64::EPSILON {
        return (0.0, 0.0, 0.0);
    }
    let mut cx = 0.0;
    let mut cy = 0.0;
    let n = ring.len();
    for i in 0..n {
        let p = ring[i];
        let q = ring[(i + 1) % n];
        let f = p.x * q.y - q.x * p.y;
        cx += (p.x + q.x) * f;
        cy += (p.y + q.y) * f;
    }
    (cx / (6.0 * a), cy / (6.0 * a), a)
}

/// Distance from a point to a segment.
pub fn point_segment_distance(p: Coord, a: Coord, b: Coord) -> f64 {
    let len_sq = a.distance_sq(&b);
    if len_sq == 0.0 {
        return p.distance(&a);
    }
    let t = (((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len_sq).clamp(0.0, 1.0);
    let proj = Coord::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
    p.distance(&proj)
}

/// Do segments (p1,p2) and (q1,q2) intersect (including endpoints and
/// collinear overlap)?
pub fn segments_intersect(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> bool {
    let d1 = cross(q1, q2, p1);
    let d2 = cross(q1, q2, p2);
    let d3 = cross(p1, p2, q1);
    let d4 = cross(p1, p2, q2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(q1, q2, p1))
        || (d2 == 0.0 && on_segment(q1, q2, p2))
        || (d3 == 0.0 && on_segment(p1, p2, q1))
        || (d4 == 0.0 && on_segment(p1, p2, q2))
}

/// Is `p` (already known collinear with a–b) within the segment's bbox?
fn on_segment(a: Coord, b: Coord, p: Coord) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Minimum distance between two segments.
pub fn segment_segment_distance(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> f64 {
    if segments_intersect(p1, p2, q1, q2) {
        return 0.0;
    }
    point_segment_distance(p1, q1, q2)
        .min(point_segment_distance(p2, q1, q2))
        .min(point_segment_distance(q1, p1, p2))
        .min(point_segment_distance(q2, p1, p2))
}

/// Where is `p` relative to `ring`? Ray-casting with boundary detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingPosition {
    Inside,
    Boundary,
    Outside,
}

/// Locate a point relative to a ring (the ring may be open or closed; the
/// closing segment is implied).
pub fn locate_in_ring(p: Coord, ring: &[Coord]) -> RingPosition {
    if ring.len() < 3 {
        return RingPosition::Outside;
    }
    let n = ring.len();
    let mut inside = false;
    for i in 0..n {
        let a = ring[i];
        let b = ring[(i + 1) % n];
        if a.coincides(&b) {
            continue;
        }
        // Boundary check.
        if cross(a, b, p) == 0.0 && on_segment(a, b, p) {
            return RingPosition::Boundary;
        }
        // Ray casting to the right of p.
        if (a.y > p.y) != (b.y > p.y) {
            let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if x_at > p.x {
                inside = !inside;
            }
        }
    }
    if inside {
        RingPosition::Inside
    } else {
        RingPosition::Outside
    }
}

/// Locate a point relative to a polygon (holes excluded from the interior).
pub fn locate_in_polygon(p: Coord, poly: &Polygon) -> RingPosition {
    match locate_in_ring(p, poly.exterior.coords()) {
        RingPosition::Outside => RingPosition::Outside,
        RingPosition::Boundary => RingPosition::Boundary,
        RingPosition::Inside => {
            for hole in &poly.interiors {
                match locate_in_ring(p, hole.coords()) {
                    RingPosition::Inside => return RingPosition::Outside,
                    RingPosition::Boundary => return RingPosition::Boundary,
                    RingPosition::Outside => {}
                }
            }
            RingPosition::Inside
        }
    }
}

/// Is the point strictly inside or on the boundary of the polygon?
pub fn polygon_covers_point(poly: &Polygon, p: Coord) -> bool {
    locate_in_polygon(p, poly) != RingPosition::Outside
}

/// Minimum distance between two geometries (0 when they intersect).
pub fn distance(a: &Geometry, b: &Geometry) -> f64 {
    if crate::relate::intersects(a, b) {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    for pa in a.parts() {
        for pb in b.parts() {
            best = best.min(primitive_distance(&pa, &pb));
            if best == 0.0 {
                return 0.0;
            }
        }
    }
    best
}

fn boundary_segments(g: &Geometry) -> Vec<(Coord, Coord)> {
    match g {
        Geometry::LineString(ls) => ls.segments().collect(),
        Geometry::Polygon(p) => p.rings().flat_map(LineString::segments).collect(),
        _ => Vec::new(),
    }
}

fn primitive_distance(a: &Geometry, b: &Geometry) -> f64 {
    match (a, b) {
        (Geometry::Point(p), Geometry::Point(q)) => p.coord().distance(&q.coord()),
        (Geometry::Point(p), other) | (other, Geometry::Point(p)) => {
            point_to_boundary(p.coord(), other)
        }
        _ => {
            let sa = boundary_segments(a);
            let sb = boundary_segments(b);
            let mut best = f64::INFINITY;
            for &(a1, a2) in &sa {
                for &(b1, b2) in &sb {
                    best = best.min(segment_segment_distance(a1, a2, b1, b2));
                }
            }
            best
        }
    }
}

fn point_to_boundary(p: Coord, g: &Geometry) -> f64 {
    match g {
        Geometry::Polygon(poly) if polygon_covers_point(poly, p) => 0.0,
        _ => boundary_segments(g)
            .iter()
            .map(|&(a, b)| point_segment_distance(p, a, b))
            .fold(f64::INFINITY, f64::min),
    }
}

/// Convex hull (Andrew's monotone chain). Returns a closed polygon, or `None`
/// when fewer than 3 distinct non-collinear points exist.
pub fn convex_hull(g: &Geometry) -> Option<Polygon> {
    let mut pts = g.coords();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a.coincides(b));
    if pts.len() < 3 {
        return None;
    }
    let chain = |iter: &mut dyn Iterator<Item = Coord>| -> Vec<Coord> {
        let mut out: Vec<Coord> = Vec::new();
        for p in iter {
            while out.len() >= 2 && cross(out[out.len() - 2], out[out.len() - 1], p) <= 0.0 {
                out.pop();
            }
            out.push(p);
        }
        out
    };
    let lower = chain(&mut pts.iter().copied());
    let upper = chain(&mut pts.iter().rev().copied());
    // Drop each chain's last point (it is the other chain's first).
    let mut ring: Vec<Coord> = Vec::with_capacity(lower.len() + upper.len());
    ring.extend_from_slice(&lower[..lower.len() - 1]);
    ring.extend_from_slice(&upper[..upper.len() - 1]);
    if ring.len() < 3 {
        return None;
    }
    let first = ring[0];
    ring.push(first);
    Some(Polygon::from_exterior(ring))
}

/// Douglas–Peucker line simplification with tolerance `eps`.
pub fn simplify_line(coords: &[Coord], eps: f64) -> Vec<Coord> {
    if coords.len() <= 2 {
        return coords.to_vec();
    }
    let mut keep = vec![false; coords.len()];
    keep[0] = true;
    keep[coords.len() - 1] = true;
    let mut stack = vec![(0usize, coords.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut max_d, mut max_i) = (0.0f64, lo + 1);
        for i in (lo + 1)..hi {
            let d = point_segment_distance(coords[i], coords[lo], coords[hi]);
            if d > max_d {
                max_d = d;
                max_i = i;
            }
        }
        if max_d > eps {
            keep[max_i] = true;
            stack.push((lo, max_i));
            stack.push((max_i, hi));
        }
    }
    coords
        .iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(*c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    #[test]
    fn shoelace_square() {
        let square = Polygon::rect(0.0, 0.0, 4.0, 4.0);
        assert_eq!(polygon_area(&square), 16.0);
        assert_eq!(area(&Geometry::Polygon(square)), 16.0);
    }

    #[test]
    fn polygon_area_subtracts_holes() {
        let mut p = Polygon::rect(0.0, 0.0, 10.0, 10.0);
        p.interiors.push(Polygon::rect(1.0, 1.0, 3.0, 3.0).exterior);
        assert_eq!(polygon_area(&p), 100.0 - 4.0);
    }

    #[test]
    fn line_length_works() {
        let g = Geometry::LineString(LineString::new(vec![
            Coord::new(0.0, 0.0),
            Coord::new(3.0, 0.0),
            Coord::new(3.0, 4.0),
        ]));
        assert_eq!(length(&g), 7.0);
    }

    #[test]
    fn centroid_of_rect_is_center() {
        let g = Geometry::rect(0.0, 0.0, 4.0, 2.0);
        let c = centroid(&g).unwrap();
        assert!((c.x - 2.0).abs() < 1e-12);
        assert!((c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_points_is_mean() {
        let g = Geometry::MultiPoint(vec![Point::new(0.0, 0.0), Point::new(2.0, 4.0)]);
        let c = centroid(&g).unwrap();
        assert_eq!((c.x, c.y), (1.0, 2.0));
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(centroid(&Geometry::MultiPoint(vec![])).is_none());
    }

    #[test]
    fn point_in_ring() {
        let ring = [
            Coord::new(0.0, 0.0),
            Coord::new(10.0, 0.0),
            Coord::new(10.0, 10.0),
            Coord::new(0.0, 10.0),
            Coord::new(0.0, 0.0),
        ];
        assert_eq!(
            locate_in_ring(Coord::new(5.0, 5.0), &ring),
            RingPosition::Inside
        );
        assert_eq!(
            locate_in_ring(Coord::new(15.0, 5.0), &ring),
            RingPosition::Outside
        );
        assert_eq!(
            locate_in_ring(Coord::new(10.0, 5.0), &ring),
            RingPosition::Boundary
        );
        assert_eq!(
            locate_in_ring(Coord::new(0.0, 0.0), &ring),
            RingPosition::Boundary
        );
    }

    #[test]
    fn point_in_polygon_with_hole() {
        let mut p = Polygon::rect(0.0, 0.0, 10.0, 10.0);
        p.interiors.push(Polygon::rect(4.0, 4.0, 6.0, 6.0).exterior);
        assert_eq!(
            locate_in_polygon(Coord::new(5.0, 5.0), &p),
            RingPosition::Outside
        );
        assert_eq!(
            locate_in_polygon(Coord::new(1.0, 1.0), &p),
            RingPosition::Inside
        );
        assert_eq!(
            locate_in_polygon(Coord::new(4.0, 5.0), &p),
            RingPosition::Boundary
        );
    }

    #[test]
    fn segment_intersection_cases() {
        let o = Coord::new(0.0, 0.0);
        assert!(segments_intersect(
            o,
            Coord::new(2.0, 2.0),
            Coord::new(0.0, 2.0),
            Coord::new(2.0, 0.0)
        ));
        // Shared endpoint.
        assert!(segments_intersect(
            o,
            Coord::new(1.0, 1.0),
            Coord::new(1.0, 1.0),
            Coord::new(2.0, 0.0)
        ));
        // Collinear overlap.
        assert!(segments_intersect(
            o,
            Coord::new(4.0, 0.0),
            Coord::new(2.0, 0.0),
            Coord::new(6.0, 0.0)
        ));
        // Parallel, disjoint.
        assert!(!segments_intersect(
            o,
            Coord::new(4.0, 0.0),
            Coord::new(0.0, 1.0),
            Coord::new(4.0, 1.0)
        ));
    }

    #[test]
    fn distances() {
        let a = Geometry::rect(0.0, 0.0, 1.0, 1.0);
        let b = Geometry::rect(3.0, 0.0, 4.0, 1.0);
        assert_eq!(distance(&a, &b), 2.0);
        let p = Geometry::point(0.5, 0.5);
        assert_eq!(distance(&a, &p), 0.0); // point inside polygon
        let q = Geometry::point(1.0, 2.0);
        assert_eq!(distance(&a, &q), 1.0);
    }

    #[test]
    fn hull_of_square_plus_inner_point() {
        let g = Geometry::MultiPoint(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
        ]);
        let hull = convex_hull(&g).unwrap();
        assert_eq!(polygon_area(&hull), 16.0);
        assert_eq!(hull.exterior.len(), 5); // 4 corners + closing coord
    }

    #[test]
    fn hull_of_collinear_is_none() {
        let g = Geometry::MultiPoint(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        assert!(convex_hull(&g).is_none());
    }

    #[test]
    fn simplify_collinear_run() {
        let line: Vec<Coord> = (0..10).map(|i| Coord::new(i as f64, 0.0)).collect();
        let simplified = simplify_line(&line, 0.01);
        assert_eq!(simplified.len(), 2);
    }

    #[test]
    fn simplify_keeps_spikes() {
        let line = vec![
            Coord::new(0.0, 0.0),
            Coord::new(5.0, 5.0),
            Coord::new(10.0, 0.0),
        ];
        let simplified = simplify_line(&line, 1.0);
        assert_eq!(simplified.len(), 3);
    }
}
