//! Property-based tests for the geometry substrate.

use applab_geo::algorithms::{
    area, centroid, convex_hull, distance, locate_in_polygon, polygon_area, RingPosition,
};
use applab_geo::coord::{Coord, Envelope};
use applab_geo::geometry::{Geometry, LineString, Point, Polygon};
use applab_geo::relate;
use applab_geo::rtree::RTree;
use applab_geo::tile::TileGrid;
use applab_geo::wkt::{parse_wkt, write_wkt};
use proptest::prelude::*;

fn coord_strategy() -> impl Strategy<Value = Coord> {
    // Finite, moderate-magnitude coordinates: lon/lat-like.
    (-180.0f64..180.0, -90.0f64..90.0).prop_map(|(x, y)| Coord::new(x, y))
}

fn rect_strategy() -> impl Strategy<Value = Polygon> {
    (coord_strategy(), 0.1f64..40.0, 0.1f64..40.0)
        .prop_map(|(c, w, h)| Polygon::rect(c.x, c.y, c.x + w, c.y + h))
}

fn geometry_strategy() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        coord_strategy().prop_map(|c| Geometry::Point(Point(c))),
        proptest::collection::vec(coord_strategy(), 2..8)
            .prop_map(|cs| Geometry::LineString(LineString::new(cs))),
        rect_strategy().prop_map(Geometry::Polygon),
        proptest::collection::vec(coord_strategy(), 1..6)
            .prop_map(|cs| { Geometry::MultiPoint(cs.into_iter().map(Point).collect()) }),
        proptest::collection::vec(rect_strategy(), 1..4).prop_map(Geometry::MultiPolygon),
    ]
}

proptest! {
    #[test]
    fn wkt_roundtrip(g in geometry_strategy()) {
        let text = write_wkt(&g);
        let parsed = parse_wkt(&text).expect("serialized WKT must parse");
        prop_assert_eq!(g, parsed);
    }

    #[test]
    fn disjoint_is_not_intersects(a in geometry_strategy(), b in geometry_strategy()) {
        prop_assert_eq!(relate::disjoint(&a, &b), !relate::intersects(&a, &b));
    }

    #[test]
    fn intersects_is_symmetric(a in geometry_strategy(), b in geometry_strategy()) {
        prop_assert_eq!(relate::intersects(&a, &b), relate::intersects(&b, &a));
    }

    #[test]
    fn touches_is_symmetric(a in rect_strategy(), b in rect_strategy()) {
        let (a, b) = (Geometry::Polygon(a), Geometry::Polygon(b));
        prop_assert_eq!(relate::touches(&a, &b), relate::touches(&b, &a));
    }

    #[test]
    fn within_implies_intersects(a in geometry_strategy(), b in geometry_strategy()) {
        if relate::within(&a, &b) {
            prop_assert!(relate::intersects(&a, &b));
        }
    }

    #[test]
    fn within_contains_dual(a in geometry_strategy(), b in geometry_strategy()) {
        prop_assert_eq!(relate::within(&a, &b), relate::contains(&b, &a));
    }

    #[test]
    fn geometry_equals_itself(g in geometry_strategy()) {
        if !g.is_empty() {
            prop_assert!(relate::equals(&g, &g));
            prop_assert!(relate::intersects(&g, &g));
        }
    }

    #[test]
    fn distance_zero_iff_intersects(a in rect_strategy(), b in rect_strategy()) {
        let (a, b) = (Geometry::Polygon(a), Geometry::Polygon(b));
        let d = distance(&a, &b);
        if relate::intersects(&a, &b) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn distance_symmetric(a in geometry_strategy(), b in geometry_strategy()) {
        let d1 = distance(&a, &b);
        let d2 = distance(&b, &a);
        prop_assert!((d1 - d2).abs() < 1e-9, "{} vs {}", d1, d2);
    }

    #[test]
    fn centroid_inside_envelope(g in geometry_strategy()) {
        if let Some(c) = centroid(&g) {
            let env = g.envelope().buffered(1e-9);
            prop_assert!(env.contains_coord(c), "{:?} outside {:?}", c, env);
        }
    }

    #[test]
    fn area_nonnegative(g in geometry_strategy()) {
        prop_assert!(area(&g) >= 0.0);
    }

    #[test]
    fn hull_contains_all_points(pts in proptest::collection::vec(coord_strategy(), 3..20)) {
        let g = Geometry::MultiPoint(pts.iter().copied().map(Point).collect());
        if let Some(hull) = convex_hull(&g) {
            for &p in &pts {
                prop_assert_ne!(
                    locate_in_polygon(p, &hull),
                    RingPosition::Outside,
                    "{:?} escapes its hull", p
                );
            }
            prop_assert!(polygon_area(&hull) >= 0.0);
        }
    }

    #[test]
    fn rtree_query_equals_linear_scan(
        boxes in proptest::collection::vec((coord_strategy(), 0.1f64..20.0, 0.1f64..20.0), 0..60),
        query in (coord_strategy(), 1.0f64..50.0, 1.0f64..50.0),
    ) {
        let items: Vec<(Envelope, usize)> = boxes
            .iter()
            .enumerate()
            .map(|(i, (c, w, h))| (Envelope::new(c.x, c.y, c.x + w, c.y + h), i))
            .collect();
        let q = Envelope::new(query.0.x, query.0.y, query.0.x + query.1, query.0.y + query.2);

        let bulk = RTree::bulk_load(items.clone());
        let mut incr = RTree::new();
        for (e, i) in items.clone() {
            incr.insert(e, i);
        }
        let mut expected: Vec<usize> = items
            .iter()
            .filter(|(e, _)| e.intersects(&q))
            .map(|(_, i)| *i)
            .collect();
        expected.sort_unstable();
        let mut from_bulk: Vec<usize> = bulk.query(&q).into_iter().copied().collect();
        from_bulk.sort_unstable();
        let mut from_incr: Vec<usize> = incr.query(&q).into_iter().copied().collect();
        from_incr.sort_unstable();
        prop_assert_eq!(&from_bulk, &expected);
        prop_assert_eq!(&from_incr, &expected);
    }

    #[test]
    fn tiles_cover_their_queries(c in coord_strategy(), w in 0.5f64..30.0, h in 0.5f64..30.0, zoom in 0u8..10) {
        let grid = TileGrid::global();
        let q = Envelope::new(c.x, c.y, (c.x + w).min(180.0), (c.y + h).min(90.0));
        let clipped = q.intersection(&grid.domain);
        let tiles = grid.covering(&q, zoom);
        if !clipped.is_empty() {
            prop_assert!(!tiles.is_empty());
            let mut union = Envelope::EMPTY;
            for t in &tiles {
                union.expand(&grid.tile_envelope(*t));
            }
            prop_assert!(union.buffered(1e-9).contains_envelope(&clipped));
        }
    }

    #[test]
    fn envelope_union_is_commutative_and_covers(
        a in (coord_strategy(), 0.1f64..20.0, 0.1f64..20.0),
        b in (coord_strategy(), 0.1f64..20.0, 0.1f64..20.0),
    ) {
        let ea = Envelope::new(a.0.x, a.0.y, a.0.x + a.1, a.0.y + a.2);
        let eb = Envelope::new(b.0.x, b.0.y, b.0.x + b.1, b.0.y + b.2);
        let u1 = ea.union(&eb);
        let u2 = eb.union(&ea);
        prop_assert_eq!(u1, u2);
        prop_assert!(u1.contains_envelope(&ea));
        prop_assert!(u1.contains_envelope(&eb));
    }
}
