//! Property-based tests: the indexed store is observationally equivalent
//! to the plain graph (and to the naive store) — its indexes are a pure
//! optimization.

use applab_geo::Envelope;
use applab_rdf::{Graph, Literal, NamedNode, Resource, Term, Triple};
use applab_sparql::GraphSource;
use applab_store::{NaiveStore, SpatioTemporalStore};
use proptest::prelude::*;

/// Triples over a small vocabulary so patterns actually hit.
fn triple_strategy() -> impl Strategy<Value = Triple> {
    let subject = (0u8..6).prop_map(|i| Resource::named(format!("http://ex.org/s{i}")));
    let predicate = (0u8..4).prop_map(|i| NamedNode::new(format!("http://ex.org/p{i}")));
    let object = prop_oneof![
        (0u8..6).prop_map(|i| Term::named(format!("http://ex.org/s{i}"))),
        (0i64..5).prop_map(|i| Literal::integer(i).into()),
        (-50.0f64..50.0, -50.0f64..50.0)
            .prop_map(|(x, y)| Literal::wkt(format!("POINT ({x} {y})")).into()),
        (0i64..1_000_000).prop_map(|t| Literal::datetime(t).into()),
    ];
    (subject, predicate, object).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn sort_triples(mut v: Vec<Triple>) -> Vec<String> {
    let mut out: Vec<String> = v.drain(..).map(|t| t.to_string()).collect();
    out.sort();
    out
}

proptest! {
    #[test]
    fn store_matches_graph_on_all_patterns(
        triples in proptest::collection::vec(triple_strategy(), 0..60),
        si in 0u8..6,
        pi in 0u8..4,
    ) {
        let graph: Graph = triples.into_iter().collect();
        let store = SpatioTemporalStore::from_graph(&graph);
        let naive = NaiveStore::from_graph(&graph);
        prop_assert_eq!(store.len(), graph.len());

        let s = Resource::named(format!("http://ex.org/s{si}"));
        let p = NamedNode::new(format!("http://ex.org/p{pi}"));
        let o: Term = Literal::integer(2).into();
        for (subject, predicate, object) in [
            (None, None, None),
            (Some(&s), None, None),
            (None, Some(&p), None),
            (None, None, Some(&o)),
            (Some(&s), Some(&p), None),
            (Some(&s), None, Some(&o)),
            (None, Some(&p), Some(&o)),
            (Some(&s), Some(&p), Some(&o)),
        ] {
            let a = sort_triples(graph.triples_matching(subject, predicate, object));
            let b = sort_triples(store.triples_matching(subject, predicate, object));
            let c = sort_triples(naive.triples_matching(subject, predicate, object));
            prop_assert_eq!(&a, &b, "store differs on ({:?},{:?},{:?})", subject, predicate, object);
            prop_assert_eq!(&a, &c, "naive differs");
        }
    }

    #[test]
    fn spatial_pushdown_equals_post_filter(
        triples in proptest::collection::vec(triple_strategy(), 0..60),
        qx in -60.0f64..60.0,
        qy in -60.0f64..60.0,
        w in 1.0f64..40.0,
    ) {
        let graph: Graph = triples.into_iter().collect();
        let store = SpatioTemporalStore::from_graph(&graph);
        let env = Envelope::new(qx, qy, qx + w, qy + w);
        let fast = store
            .triples_matching_spatial(None, None, &env)
            .expect("store implements the spatial hook");
        let slow: Vec<Triple> = graph
            .triples_matching(None, None, None)
            .into_iter()
            .filter(|t| {
                t.object
                    .as_literal()
                    .and_then(Literal::as_geometry)
                    .map(|g| g.envelope().intersects(&env))
                    .unwrap_or(false)
            })
            .collect();
        prop_assert_eq!(sort_triples(fast), sort_triples(slow));
    }

    #[test]
    fn temporal_pushdown_equals_post_filter(
        triples in proptest::collection::vec(triple_strategy(), 0..60),
        start in 0i64..500_000,
        len in 0i64..500_000,
    ) {
        let graph: Graph = triples.into_iter().collect();
        let store = SpatioTemporalStore::from_graph(&graph);
        let end = start + len;
        let fast = store
            .triples_matching_temporal(None, None, start, end)
            .expect("sorted after from_graph");
        let slow: Vec<Triple> = graph
            .triples_matching(None, None, None)
            .into_iter()
            .filter(|t| {
                t.object
                    .as_literal()
                    .and_then(Literal::as_datetime)
                    .map(|ts| (start..=end).contains(&ts))
                    .unwrap_or(false)
            })
            .collect();
        prop_assert_eq!(sort_triples(fast), sort_triples(slow));
    }

    #[test]
    fn sparql_answers_agree_across_engines(
        triples in proptest::collection::vec(triple_strategy(), 0..50),
    ) {
        let graph: Graph = triples.into_iter().collect();
        let store = SpatioTemporalStore::from_graph(&graph);
        let q = "SELECT ?s ?o WHERE { ?s <http://ex.org/p0> ?o . ?o <http://ex.org/p1> ?x }";
        let a = applab_sparql::query(&graph, q).unwrap();
        let b = applab_sparql::query(&store, q).unwrap();
        let norm = |r: &applab_sparql::QueryResults| {
            let mut rows: Vec<String> = r
                .rows()
                .iter()
                .map(|row| {
                    row.values
                        .iter()
                        .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(norm(&a), norm(&b));
    }
}
