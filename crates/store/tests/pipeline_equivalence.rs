//! Property tests: the hash-join pipeline gives the same answers over the
//! ID-level store backend (`SpatioTemporalStore`, which joins on native
//! dictionary ids and serves spatial/temporal pushdown from its indexes) as
//! over the decoded backends (`Graph`, `NaiveStore`) and as the reference
//! nested-loop evaluator.

use applab_rdf::{vocab, Graph, Literal, NamedNode, Resource, Term, Triple};
use applab_sparql::algebra::{
    Expression, GraphPattern, Query, QueryForm, TermPattern, TriplePattern,
};
use applab_sparql::{evaluate, reference, GraphSource, QueryResults};
use applab_store::{NaiveStore, SpatioTemporalStore};
use proptest::prelude::*;

/// Triples over a small vocabulary so patterns actually hit.
fn triple_strategy() -> impl Strategy<Value = Triple> {
    let subject = (0u8..6).prop_map(|i| Resource::named(format!("http://ex.org/s{i}")));
    let predicate = (0u8..4).prop_map(|i| NamedNode::new(format!("http://ex.org/p{i}")));
    let object = prop_oneof![
        (0u8..6).prop_map(|i| Term::named(format!("http://ex.org/s{i}"))),
        (0i64..5).prop_map(|i| Literal::integer(i).into()),
        (-50.0f64..50.0, -50.0f64..50.0)
            .prop_map(|(x, y)| Literal::wkt(format!("POINT ({x} {y})")).into()),
        (0i64..1_000_000).prop_map(|t| Literal::datetime(t).into()),
    ];
    (subject, predicate, object).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn pattern_strategy() -> impl Strategy<Value = TriplePattern> {
    (0u8..6, 0u8..4, 0u8..12).prop_map(|(s, p, o)| {
        let subject = match s {
            0..=2 => TermPattern::var(["a", "b", "c"][s as usize]),
            _ => TermPattern::Term(Term::named(format!("http://ex.org/s{}", s - 3))),
        };
        let predicate = TermPattern::Term(Term::named(format!("http://ex.org/p{p}")));
        let object = match o {
            0..=3 => TermPattern::var(["a", "b", "c", "g"][o as usize]),
            4..=7 => TermPattern::Term(Term::named(format!("http://ex.org/s{}", o - 4))),
            _ => TermPattern::Term(Literal::integer((o - 8) as i64).into()),
        };
        TriplePattern::new(subject, predicate, object)
    })
}

/// Filters that exercise the store's spatial (R-tree) and temporal (sorted
/// index) pushdown paths as well as the generic fallback.
fn filter_strategy() -> impl Strategy<Value = Option<Expression>> {
    (0u8..5, -60.0f64..60.0, -60.0f64..60.0, 1.0f64..40.0).prop_map(|(c, x, y, w)| {
        let (x2, y2) = (x + w, y + w);
        let bbox = Expression::Constant(
            Literal::wkt(format!(
                "POLYGON (({x} {y}, {x2} {y}, {x2} {y2}, {x} {y2}, {x} {y}))"
            ))
            .into(),
        );
        let spatial = |rel: &str| {
            Expression::Call(
                NamedNode::new(rel),
                vec![Expression::Var("g".into()), bbox.clone()],
            )
        };
        let before = Expression::Less(
            Box::new(Expression::Var("c".into())),
            Box::new(Expression::Constant(
                Literal::datetime((x.abs() * 10_000.0) as i64).into(),
            )),
        );
        match c {
            0 => None,
            1 => Some(spatial(vocab::geof::SF_INTERSECTS)),
            2 => Some(spatial(vocab::geof::SF_WITHIN)),
            3 => Some(before),
            _ => Some(Expression::And(
                Box::new(spatial(vocab::geof::SF_INTERSECTS)),
                Box::new(before),
            )),
        }
    })
}

fn select_all(pattern: GraphPattern) -> Query {
    Query {
        form: QueryForm::Select {
            distinct: false,
            projection: vec![],
            group_by: vec![],
        },
        pattern,
        order_by: vec![],
        limit: None,
        offset: 0,
    }
}

fn norm(r: &QueryResults) -> (Vec<String>, Vec<String>) {
    let mut rows: Vec<String> = r
        .rows()
        .iter()
        .map(|row| {
            row.values
                .iter()
                .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    (r.variables().to_vec(), rows)
}

proptest! {
    #[test]
    fn pipeline_agrees_across_backends(
        triples in proptest::collection::vec(triple_strategy(), 0..60),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
        filter in filter_strategy(),
        optional in proptest::collection::vec(pattern_strategy(), 0..2),
    ) {
        let graph: Graph = triples.into_iter().collect();
        let store = SpatioTemporalStore::from_graph(&graph);
        let naive = NaiveStore::from_graph(&graph);

        let bgp = GraphPattern::Bgp(patterns);
        let body = match filter {
            Some(f) => GraphPattern::Filter(f, Box::new(bgp)),
            None => bgp,
        };
        let pattern = if optional.is_empty() {
            body
        } else {
            GraphPattern::LeftJoin(Box::new(body), Box::new(GraphPattern::Bgp(optional)))
        };
        let q = select_all(pattern);

        let oracle = norm(&reference::evaluate(&graph, &q).unwrap());
        for source in [&graph as &dyn GraphSource, &store, &naive] {
            prop_assert_eq!(norm(&evaluate(source, &q).unwrap()), oracle.clone());
        }
    }
}
