//! Spatiotemporal RDF storage: the "Strabon" of the reproduction.
//!
//! [`SpatioTemporalStore`] is a dictionary-encoded triple store with three
//! B-tree permutation indexes (SPO/POS/OSP), an R-tree over `geo:wktLiteral`
//! objects, and a sorted valid-time index over `xsd:dateTime` objects. It
//! implements the `applab-sparql` [`GraphSource`](applab_sparql::GraphSource) trait *including* the
//! spatial and temporal pushdown hooks, which is what gives it the
//! Geographica advantage the paper cites (claims C2/C3 in DESIGN.md).
//!
//! [`NaiveStore`] is the baseline: the same triples, no indexes at all —
//! every pattern is a linear scan and every spatial filter is evaluated
//! post-hoc. Bench B3 compares the two.
//!
//! The store reports `applab_store_*` metrics to the `applab-obs` global
//! registry: scan and pushdown counters on the query path, dictionary and
//! index size gauges refreshed on [`store::SpatioTemporalStore::finish_load`].
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod dict;
pub mod naive;
pub mod store;

pub use dict::Dictionary;
pub use naive::NaiveStore;
pub use store::SpatioTemporalStore;
