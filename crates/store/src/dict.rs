//! Dictionary encoding of RDF terms.
//!
//! Every distinct term gets a dense `u64` id; triples are stored as id
//! tuples. This keeps the permutation indexes compact and makes join keys
//! integer comparisons, as in Strabon's PostGIS schema.

use applab_rdf::Term;
use std::collections::HashMap;
use std::sync::Arc;

/// A bidirectional Term ↔ id map.
///
/// Both directions share one `Arc<Term>` per distinct term, so interning a
/// new term deep-clones it exactly once (and a hit clones nothing).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_term: HashMap<Arc<Term>, u64>,
    by_id: Vec<Arc<Term>>,
}

impl Dictionary {
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Intern a term, returning its id (allocating one if new).
    pub fn encode(&mut self, term: &Term) -> u64 {
        // `Arc<Term>: Borrow<Term>`, so the hit path is a single lookup
        // with no allocation.
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = self.by_id.len() as u64;
        let shared = Arc::new(term.clone());
        self.by_id.push(Arc::clone(&shared));
        self.by_term.insert(shared, id);
        id
    }

    /// Id of an already interned term.
    pub fn get(&self, term: &Term) -> Option<u64> {
        self.by_term.get(term).copied()
    }

    /// Term for an id. Panics on an id this dictionary never produced.
    pub fn decode(&self, id: u64) -> &Term {
        &self.by_id[id as usize]
    }

    /// Non-panicking variant of [`Dictionary::decode`].
    pub fn try_decode(&self, id: u64) -> Option<&Term> {
        self.by_id.get(id as usize).map(Arc::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::Literal;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = Term::named("http://ex.org/a");
        let id1 = d.encode(&a);
        let id2 = d.encode(&a);
        assert_eq!(id1, id2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_distinct_ids() {
        let mut d = Dictionary::new();
        let ids: Vec<u64> = (0..100)
            .map(|i| d.encode(&Literal::integer(i).into()))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn roundtrip() {
        let mut d = Dictionary::new();
        let terms = vec![
            Term::named("http://ex.org/a"),
            Literal::string("x").into(),
            Literal::wkt("POINT (1 2)").into(),
        ];
        for t in &terms {
            let id = d.encode(t);
            assert_eq!(d.decode(id), t);
            assert_eq!(d.get(t), Some(id));
        }
        assert_eq!(d.get(&Term::named("http://ex.org/missing")), None);
        assert!(d.try_decode(999).is_none());
    }

    #[test]
    fn literals_with_different_datatypes_are_distinct() {
        let mut d = Dictionary::new();
        let a = d.encode(&Literal::string("3").into());
        let b = d.encode(&Literal::integer(3).into());
        assert_ne!(a, b);
    }
}
