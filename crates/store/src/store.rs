//! The Strabon-like spatiotemporal RDF store.

use crate::dict::Dictionary;
use applab_geo::{Envelope, Geometry, RTree};
use applab_rdf::{Graph, Literal, NamedNode, Resource, Term, Triple};
use applab_sparql::{GraphSource, IdAccess, IdColumns};
use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Bound;

type Ids = (u64, u64, u64);

/// Multiplicative hash over dictionary ids for the geometry table — the
/// vectorized evaluator hits it once per projected row, where SipHash is
/// measurable overhead.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdHasher is only for u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type IdMap<V> = HashMap<u64, V, BuildHasherDefault<IdHasher>>;

/// A dictionary-encoded triple store with SPO/POS/OSP permutation indexes,
/// an R-tree over geometry literals and a sorted valid-time index.
#[derive(Debug, Default)]
pub struct SpatioTemporalStore {
    dict: Dictionary,
    spo: BTreeSet<Ids>,
    pos: BTreeSet<Ids>,
    osp: BTreeSet<Ids>,
    /// (envelope, (s, p, o)) for every triple whose object is a WKT literal.
    spatial: RTree<Ids>,
    /// Parsed geometry (with envelope) keyed by the object id of every WKT
    /// literal — the insert path parses the WKT anyway to index it, so the
    /// parse is kept and served through [`IdAccess::geometry`] instead of
    /// being re-done per query.
    geometries: IdMap<(Geometry, Envelope)>,
    /// (epoch seconds, (s, p, o)) for every triple whose object is a
    /// dateTime literal, sorted by time.
    temporal: Vec<(i64, Ids)>,
    temporal_sorted: bool,
    len: usize,
    /// Seal-time planner statistics, rebuilt by [`Self::finish_load`].
    stats: Option<applab_sparql::plan::Stats>,
}

impl SpatioTemporalStore {
    pub fn new() -> Self {
        SpatioTemporalStore::default()
    }

    /// Bulk load a graph. Equivalent to repeated [`insert`](Self::insert)
    /// but keeps the temporal index unsorted until the end.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut store = SpatioTemporalStore::new();
        for t in graph.iter() {
            store.insert(t.clone());
        }
        store.finish_load();
        store
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of entries in the spatial index.
    pub fn spatial_len(&self) -> usize {
        self.spatial.len()
    }

    /// Number of entries in the temporal index.
    pub fn temporal_len(&self) -> usize {
        self.temporal.len()
    }

    /// Insert one triple. Returns `false` if it was already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.dict.encode(&Term::from(triple.subject.clone()));
        let p = self.dict.encode(&Term::Named(triple.predicate.clone()));
        let o = self.dict.encode(&triple.object);
        if !self.spo.insert((s, p, o)) {
            return false;
        }
        self.pos.insert((p, o, s));
        self.osp.insert((o, s, p));
        self.len += 1;
        if let Term::Literal(lit) = &triple.object {
            if let Some(g) = lit.as_geometry() {
                let env = g.envelope();
                self.spatial.insert(env, (s, p, o));
                self.geometries.entry(o).or_insert((g, env));
            } else if let Some(t) = lit.as_datetime() {
                self.temporal.push((t, (s, p, o)));
                self.temporal_sorted = false;
            }
        }
        true
    }

    /// Sort the valid-time index after a bulk load, and collect the
    /// seal-time planner statistics ([`applab_sparql::plan::Stats`]).
    pub fn finish_load(&mut self) {
        self.temporal.sort_unstable_by_key(|(t, _)| *t);
        self.temporal_sorted = true;
        self.stats = Some(self.collect_stats());
        applab_obs::gauge!("applab_store_triples").set(self.len as i64);
        applab_obs::gauge!("applab_store_dict_terms").set(self.dict.len() as i64);
        applab_obs::gauge!("applab_store_spatial_index_entries").set(self.spatial.len() as i64);
        applab_obs::gauge!("applab_store_temporal_index_entries").set(self.temporal.len() as i64);
    }

    /// One pass over the POS and SPO permutations: per-predicate triple
    /// counts and distinct subject/object counts (exact — the indexes are
    /// sorted, so distinct counts are run-length counts, no hashing), plus
    /// the spatial/temporal index sketches.
    fn collect_stats(&self) -> applab_sparql::plan::Stats {
        use applab_sparql::plan::{PredicateStats, SpatialSketch, Stats, TemporalSketch};
        let mut stats = Stats {
            total_triples: self.len as u64,
            ..Stats::default()
        };
        // POS is sorted by (p, o, s): triples per predicate and distinct
        // objects per predicate fall out of run boundaries.
        let mut by_id: HashMap<u64, PredicateStats> = HashMap::new();
        let mut prev: Option<(u64, u64)> = None;
        for &(p, o, _) in &self.pos {
            let entry = by_id.entry(p).or_default();
            entry.triples += 1;
            if prev != Some((p, o)) {
                entry.distinct_objects += 1;
                prev = Some((p, o));
            }
        }
        // SPO is sorted by (s, p, o): distinct subjects per predicate are
        // distinct (s, p) prefixes.
        let mut prev_sp: Option<(u64, u64)> = None;
        for &(s, p, _) in &self.spo {
            if prev_sp != Some((s, p)) {
                by_id.entry(p).or_default().distinct_subjects += 1;
                prev_sp = Some((s, p));
            }
        }
        for (p, ps) in by_id {
            if let Term::Named(n) = self.dict.decode(p) {
                stats.predicates.insert(n.as_str().to_string(), ps);
            }
        }
        let mut bounds = Envelope::EMPTY;
        for (_, env) in self.geometries.values() {
            bounds.expand(env);
        }
        stats.spatial = SpatialSketch {
            entries: self.spatial.len() as u64,
            bounds: (!bounds.is_empty()).then_some(bounds),
        };
        stats.temporal = TemporalSketch {
            entries: self.temporal.len() as u64,
            min: self.temporal.first().map(|(t, _)| *t).unwrap_or(0),
            max: self.temporal.last().map(|(t, _)| *t).unwrap_or(0),
        };
        stats
    }

    fn decode_triple(&self, (s, p, o): Ids) -> Triple {
        let subject = match self.dict.decode(s) {
            Term::Named(n) => Resource::Named(n.clone()),
            Term::Blank(b) => Resource::Blank(b.clone()),
            Term::Literal(_) => unreachable!("literal subject was never inserted"),
        };
        let predicate = match self.dict.decode(p) {
            Term::Named(n) => n.clone(),
            _ => unreachable!("non-IRI predicate was never inserted"),
        };
        Triple::new(subject, predicate, self.dict.decode(o).clone())
    }

    fn encode_lookup(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        object: Option<&Term>,
    ) -> Option<(Option<u64>, Option<u64>, Option<u64>)> {
        let s = match subject {
            Some(r) => Some(self.dict.get(&Term::from(r.clone()))?),
            None => None,
        };
        let p = match predicate {
            Some(n) => Some(self.dict.get(&Term::Named(n.clone()))?),
            None => None,
        };
        let o = match object {
            Some(t) => Some(self.dict.get(t)?),
            None => None,
        };
        Some((s, p, o))
    }

    /// Scan the best permutation index for an (s?, p?, o?) pattern.
    fn scan(&self, s: Option<u64>, p: Option<u64>, o: Option<u64>) -> Vec<Ids> {
        applab_obs::counter!("applab_store_scans_total").inc();
        fn range2(set: &BTreeSet<Ids>, a: u64, b: u64) -> impl Iterator<Item = &Ids> + '_ {
            set.range((a, b, 0)..=(a, b, u64::MAX))
        }
        fn range1(set: &BTreeSet<Ids>, a: u64) -> impl Iterator<Item = &Ids> + '_ {
            set.range((
                Bound::Included((a, 0, 0)),
                Bound::Included((a, u64::MAX, u64::MAX)),
            ))
        }
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), Some(p), None) => range2(&self.spo, s, p).copied().collect(),
            (Some(s), None, None) => range1(&self.spo, s).copied().collect(),
            (Some(s), None, Some(o)) => range2(&self.osp, o, s)
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, Some(p), Some(o)) => range2(&self.pos, p, o)
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, Some(p), None) => range1(&self.pos, p).map(|&(p, o, s)| (s, p, o)).collect(),
            (None, None, Some(o)) => range1(&self.osp, o).map(|&(o, s, p)| (s, p, o)).collect(),
            (None, None, None) => self.spo.iter().copied().collect(),
        }
    }
}

impl GraphSource for SpatioTemporalStore {
    fn triples_matching(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let Some((s, p, o)) = self.encode_lookup(subject, predicate, object) else {
            return Vec::new(); // an explicit term is not in the dictionary
        };
        self.scan(s, p, o)
            .into_iter()
            .map(|ids| self.decode_triple(ids))
            .collect()
    }

    fn triples_matching_spatial(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        envelope: &Envelope,
    ) -> Option<Vec<Triple>> {
        let (s, p, _) = self.encode_lookup(subject, predicate, None)?;
        applab_obs::counter!("applab_store_spatial_pushdown_total").inc();
        applab_obs::querystats::pushdown();
        let mut out = Vec::new();
        self.spatial.visit(envelope, &mut |&(ts, tp, to)| {
            if s.is_none_or(|s| s == ts) && p.is_none_or(|p| p == tp) {
                out.push((ts, tp, to));
            }
        });
        Some(out.into_iter().map(|ids| self.decode_triple(ids)).collect())
    }

    fn triples_matching_temporal(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        start: i64,
        end: i64,
    ) -> Option<Vec<Triple>> {
        if !self.temporal_sorted {
            return None; // mid-bulk-load: decline rather than answer wrongly
        }
        let (s, p, _) = self.encode_lookup(subject, predicate, None)?;
        applab_obs::counter!("applab_store_temporal_pushdown_total").inc();
        applab_obs::querystats::pushdown();
        let lo = self.temporal.partition_point(|(t, _)| *t < start);
        let mut out = Vec::new();
        for &(t, (ts, tp, to)) in &self.temporal[lo..] {
            if t > end {
                break;
            }
            if s.is_none_or(|s| s == ts) && p.is_none_or(|p| p == tp) {
                out.push((ts, tp, to));
            }
        }
        Some(out.into_iter().map(|ids| self.decode_triple(ids)).collect())
    }

    fn estimate(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        object: Option<&Term>,
    ) -> Option<usize> {
        let (s, p, o) = self.encode_lookup(subject, predicate, object)?;
        Some(self.scan(s, p, o).len())
    }

    fn stats(&self) -> Option<&applab_sparql::plan::Stats> {
        self.stats.as_ref()
    }

    fn id_access(&self) -> Option<&dyn IdAccess> {
        Some(self)
    }
}

impl IdAccess for SpatioTemporalStore {
    fn term_to_id(&self, term: &Term) -> Option<u64> {
        self.dict.get(term)
    }

    fn id_to_term(&self, id: u64) -> Option<&Term> {
        self.dict.try_decode(id)
    }

    fn id_count(&self) -> u64 {
        self.dict.len() as u64
    }

    fn scan_ids(&self, s: Option<u64>, p: Option<u64>, o: Option<u64>) -> Vec<Ids> {
        self.scan(s, p, o)
    }

    /// Columnar scan: walk the best permutation index and append straight
    /// into the match columns — no intermediate triple vector.
    fn scan_ids_columns(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
        out: &mut IdColumns,
    ) {
        applab_obs::counter!("applab_store_scans_total").inc();
        fn range2(set: &BTreeSet<Ids>, a: u64, b: u64) -> impl Iterator<Item = &Ids> + '_ {
            set.range((a, b, 0)..=(a, b, u64::MAX))
        }
        fn range1(set: &BTreeSet<Ids>, a: u64) -> impl Iterator<Item = &Ids> + '_ {
            set.range((
                Bound::Included((a, 0, 0)),
                Bound::Included((a, u64::MAX, u64::MAX)),
            ))
        }
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    out.push(s, p, o);
                }
            }
            (Some(s), Some(p), None) => {
                for &(s, p, o) in range2(&self.spo, s, p) {
                    out.push(s, p, o);
                }
            }
            (Some(s), None, None) => {
                for &(s, p, o) in range1(&self.spo, s) {
                    out.push(s, p, o);
                }
            }
            (Some(s), None, Some(o)) => {
                for &(o, s, p) in range2(&self.osp, o, s) {
                    out.push(s, p, o);
                }
            }
            (None, Some(p), Some(o)) => {
                for &(p, o, s) in range2(&self.pos, p, o) {
                    out.push(s, p, o);
                }
            }
            (None, Some(p), None) => {
                for &(p, o, s) in range1(&self.pos, p) {
                    out.push(s, p, o);
                }
            }
            (None, None, Some(o)) => {
                for &(o, s, p) in range1(&self.osp, o) {
                    out.push(s, p, o);
                }
            }
            (None, None, None) => {
                out.reserve(self.len);
                for &(s, p, o) in &self.spo {
                    out.push(s, p, o);
                }
            }
        }
    }

    fn geometry(&self, id: u64) -> Option<&(Geometry, Envelope)> {
        self.geometries.get(&id)
    }

    fn scan_ids_spatial(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        envelope: &Envelope,
    ) -> Option<Vec<Ids>> {
        applab_obs::counter!("applab_store_spatial_pushdown_total").inc();
        applab_obs::querystats::pushdown();
        let mut out = Vec::new();
        self.spatial.visit(envelope, &mut |&(ts, tp, to)| {
            if s.is_none_or(|s| s == ts) && p.is_none_or(|p| p == tp) {
                out.push((ts, tp, to));
            }
        });
        Some(out)
    }

    fn scan_ids_temporal(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        start: i64,
        end: i64,
    ) -> Option<Vec<Ids>> {
        if !self.temporal_sorted {
            return None; // mid-bulk-load: decline rather than answer wrongly
        }
        applab_obs::counter!("applab_store_temporal_pushdown_total").inc();
        applab_obs::querystats::pushdown();
        let lo = self.temporal.partition_point(|(t, _)| *t < start);
        let mut out = Vec::new();
        for &(t, (ts, tp, to)) in &self.temporal[lo..] {
            if t > end {
                break;
            }
            if s.is_none_or(|s| s == ts) && p.is_none_or(|p| p == tp) {
                out.push((ts, tp, to));
            }
        }
        Some(out)
    }
}

/// Helper: load N-Triples/Turtle text straight into a store.
pub fn load_turtle(text: &str) -> Result<SpatioTemporalStore, applab_rdf::turtle::TurtleError> {
    Ok(SpatioTemporalStore::from_graph(
        &applab_rdf::turtle::parse_turtle(text)?,
    ))
}

/// Convenience: build a LAI observation entity (the shape Listing 2's
/// mapping produces) directly into a graph. Used by tests, benches and the
/// synthetic data generators.
pub fn lai_observation(graph: &mut Graph, id: &str, lai: f64, timestamp: i64, wkt: &str) {
    use applab_rdf::vocab;
    let obs = Resource::named(format!("{}{id}", vocab::lai::NS));
    let geom = Resource::named(format!("{}{id}/geom", vocab::lai::NS));
    graph.add(
        obs.clone(),
        NamedNode::new(vocab::rdf::TYPE),
        Term::named(vocab::lai::OBSERVATION),
    );
    graph.add(
        obs.clone(),
        NamedNode::new(vocab::lai::HAS_LAI),
        Literal::float(lai),
    );
    graph.add(
        obs.clone(),
        NamedNode::new(vocab::time::HAS_TIME),
        Literal::datetime(timestamp),
    );
    graph.add(
        obs,
        NamedNode::new(vocab::geo::HAS_GEOMETRY),
        Term::Named(match geom.clone() {
            Resource::Named(n) => n,
            _ => unreachable!(),
        }),
    );
    graph.add(geom, NamedNode::new(vocab::geo::AS_WKT), Literal::wkt(wkt));
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::vocab;

    fn grid_store(n: usize) -> SpatioTemporalStore {
        // n×n LAI observations on a grid, one per day.
        let mut g = Graph::new();
        for i in 0..n {
            for j in 0..n {
                let id = format!("obs_{i}_{j}");
                lai_observation(
                    &mut g,
                    &id,
                    (i + j) as f64 / 10.0,
                    (i * n + j) as i64 * 86_400,
                    &format!("POINT ({} {})", i as f64 / 10.0, j as f64 / 10.0),
                );
            }
        }
        SpatioTemporalStore::from_graph(&g)
    }

    #[test]
    fn insert_dedup_and_len() {
        let mut store = SpatioTemporalStore::new();
        let t = Triple::new(
            Resource::named("http://ex.org/a"),
            NamedNode::new(vocab::rdfs::LABEL),
            Literal::string("x"),
        );
        assert!(store.insert(t.clone()));
        assert!(!store.insert(t));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn matches_equal_graph_scan() {
        let store = grid_store(5);
        assert_eq!(store.len(), 5 * 5 * 5); // 5 triples per observation
                                            // Predicate scan.
        let lai_pred = NamedNode::new(vocab::lai::HAS_LAI);
        let r = store.triples_matching(None, Some(&lai_pred), None);
        assert_eq!(r.len(), 25);
        // Subject scan.
        // 4 triples have the observation itself as subject (the fifth's
        // subject is its geometry node).
        let s = Resource::named(format!("{}obs_0_0", vocab::lai::NS));
        assert_eq!(store.triples_matching(Some(&s), None, None).len(), 4);
        // Fully bound hit and miss.
        let hit =
            store.triples_matching(Some(&s), Some(&lai_pred), Some(&Literal::float(0.0).into()));
        assert_eq!(hit.len(), 1);
        let miss =
            store.triples_matching(Some(&s), Some(&lai_pred), Some(&Literal::float(9.9).into()));
        assert!(miss.is_empty());
        // Unknown term short-circuits.
        let unknown = Resource::named("http://ex.org/nope");
        assert!(store
            .triples_matching(Some(&unknown), None, None)
            .is_empty());
    }

    #[test]
    fn spatial_pushdown_matches_post_filter() {
        let store = grid_store(10);
        let wkt_pred = NamedNode::new(vocab::geo::AS_WKT);
        let env = Envelope::new(0.15, 0.15, 0.55, 0.55);
        let fast = store
            .triples_matching_spatial(None, Some(&wkt_pred), &env)
            .unwrap();
        let slow: Vec<Triple> = store
            .triples_matching(None, Some(&wkt_pred), None)
            .into_iter()
            .filter(|t| {
                t.object
                    .as_literal()
                    .and_then(Literal::as_geometry)
                    .map(|g| g.envelope().intersects(&env))
                    .unwrap_or(false)
            })
            .collect();
        assert_eq!(fast.len(), slow.len());
        assert!(!fast.is_empty());
        for t in &fast {
            assert!(slow.contains(t));
        }
    }

    #[test]
    fn temporal_pushdown_matches_post_filter() {
        let store = grid_store(10);
        let time_pred = NamedNode::new(vocab::time::HAS_TIME);
        let (start, end) = (10 * 86_400, 20 * 86_400);
        let fast = store
            .triples_matching_temporal(None, Some(&time_pred), start, end)
            .unwrap();
        assert_eq!(fast.len(), 11); // days 10..=20
        for t in &fast {
            let ts = t.object.as_literal().unwrap().as_datetime().unwrap();
            assert!((start..=end).contains(&ts));
        }
    }

    #[test]
    fn unsorted_temporal_index_declines() {
        let mut store = SpatioTemporalStore::new();
        let mut g = Graph::new();
        lai_observation(&mut g, "o1", 1.0, 1000, "POINT (0 0)");
        for t in g.iter() {
            store.insert(t.clone());
        }
        // No finish_load(): the index must decline rather than lie.
        let time_pred = NamedNode::new(vocab::time::HAS_TIME);
        assert!(store
            .triples_matching_temporal(None, Some(&time_pred), 0, 2000)
            .is_none());
        store.finish_load();
        assert_eq!(
            store
                .triples_matching_temporal(None, Some(&time_pred), 0, 2000)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn end_to_end_listing1_shape() {
        // A park polygon + LAI points, queried with the Listing 1 pattern.
        let mut g = Graph::new();
        let park = Resource::named("http://ex.org/park");
        let park_geom = Resource::named("http://ex.org/park/geom");
        g.add(
            park.clone(),
            NamedNode::new(vocab::osm::POI_TYPE),
            Term::named(vocab::osm::PARK),
        );
        g.add(
            park.clone(),
            NamedNode::new(vocab::osm::HAS_NAME),
            Literal::string("Bois de Boulogne"),
        );
        g.add(
            park.clone(),
            NamedNode::new(vocab::geo::HAS_GEOMETRY),
            Term::named("http://ex.org/park/geom"),
        );
        g.add(
            park_geom,
            NamedNode::new(vocab::geo::AS_WKT),
            Literal::wkt("POLYGON ((2.21 48.85, 2.27 48.85, 2.27 48.88, 2.21 48.88, 2.21 48.85))"),
        );
        lai_observation(&mut g, "in", 4.2, 0, "POINT (2.24 48.86)");
        lai_observation(&mut g, "out", 1.0, 0, "POINT (2.5 48.9)");
        let store = SpatioTemporalStore::from_graph(&g);

        let q = r#"
SELECT DISTINCT ?geoA ?geoB ?lai WHERE
{ ?areaA osm:poiType osm:park .
  ?areaA geo:hasGeometry ?geomA .
  ?geomA geo:asWKT ?geoA .
  ?areaA osm:hasName "Bois de Boulogne" .
  ?areaB lai:hasLai ?lai .
  ?areaB geo:hasGeometry ?geomB .
  ?geomB geo:asWKT ?geoB .
  FILTER(geof:sfIntersects(?geoA, ?geoB))
}
"#;
        let r = applab_sparql::query(&store, q).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.value(0, "lai").unwrap().as_literal().unwrap().as_f64(),
            Some(4.2)
        );
    }

    #[test]
    fn estimate_reflects_cardinality() {
        let store = grid_store(4);
        let lai_pred = NamedNode::new(vocab::lai::HAS_LAI);
        assert_eq!(store.estimate(None, Some(&lai_pred), None), Some(16));
        assert_eq!(store.estimate(None, None, None), Some(store.len()));
    }

    #[test]
    fn seal_time_stats_are_exact_on_grid_snapshot() {
        // Golden numbers for the fixed 4×4 LAI snapshot (the
        // mini-Geographica shape): 16 observations × 5 triples.
        let store = grid_store(4);
        let stats = GraphSource::stats(&store).expect("sealed store has stats");
        assert_eq!(stats.total_triples, 80);
        let lai = stats.predicate(vocab::lai::HAS_LAI).unwrap();
        assert_eq!(lai.triples, 16);
        assert_eq!(lai.distinct_subjects, 16);
        // LAI values are (i+j)/10 over a 4×4 grid: 7 distinct sums 0..=6.
        assert_eq!(lai.distinct_objects, 7);
        let wkt = stats.predicate(vocab::geo::AS_WKT).unwrap();
        assert_eq!(wkt.triples, 16);
        assert_eq!(wkt.distinct_subjects, 16);
        assert_eq!(wkt.distinct_objects, 16);
        // rdf:type points every observation at the same class.
        let ty = stats.predicate(vocab::rdf::TYPE).unwrap();
        assert_eq!(ty.triples, 16);
        assert_eq!(ty.distinct_objects, 1);
        // Index sketches cover the full grid extent and time range.
        assert_eq!(stats.spatial.entries, 16);
        let b = stats.spatial.bounds.unwrap();
        assert_eq!((b.min_x, b.min_y, b.max_x, b.max_y), (0.0, 0.0, 0.3, 0.3));
        assert_eq!(stats.temporal.entries, 16);
        assert_eq!(stats.temporal.min, 0);
        assert_eq!(stats.temporal.max, 15 * 86_400);
    }

    #[test]
    fn join_estimates_on_grid_snapshot_are_within_bounds() {
        use applab_sparql::plan::estimate_join;
        use applab_sparql::{TermPattern, TriplePattern};
        let store = grid_store(4);
        let stats = GraphSource::stats(&store).unwrap();
        // ?obs lai:hasLai ?lai  ⋈_obs  ?obs time:hasTime ?t — key is the
        // observation subject: 16 * 16 / 16 = 16, the exact join size.
        let lai = TriplePattern::new(
            TermPattern::var("obs"),
            applab_rdf::Term::named(vocab::lai::HAS_LAI),
            TermPattern::var("lai"),
        );
        let time = TriplePattern::new(
            TermPattern::var("obs"),
            applab_rdf::Term::named(vocab::time::HAS_TIME),
            TermPattern::var("t"),
        );
        let none = |_: &str| false;
        let sp = std::collections::HashMap::new();
        let tp = std::collections::HashMap::new();
        let est_lai = stats.estimate_pattern(&lai, &none, &sp, &tp);
        let est_time = stats.estimate_pattern(&time, &none, &sp, &tp);
        let d_key = stats.distinct_at(&lai, "obs").unwrap();
        let est = estimate_join(est_lai, est_time, d_key);
        let actual = 16.0;
        assert!(
            (est - actual).abs() / actual <= 0.01,
            "join estimate {est} not within 1% of {actual}"
        );
        // A half-extent spatial constraint halves the WKT scan estimate.
        let wkt = TriplePattern::new(
            TermPattern::var("g"),
            applab_rdf::Term::named(vocab::geo::AS_WKT),
            TermPattern::var("w"),
        );
        let mut sp = std::collections::HashMap::new();
        sp.insert("w".to_string(), Envelope::new(0.0, 0.0, 0.15, 0.3));
        let est = stats.estimate_pattern(&wkt, &none, &sp, &tp);
        let actual = 8.0; // 2 of 4 columns
        assert!(
            (est - actual).abs() / actual <= 0.25,
            "spatial estimate {est} not within 25% of {actual}"
        );
    }

    #[test]
    fn planner_matches_written_order_on_store_queries() {
        // The planner may reorder unsorted rows but must return the same
        // multiset — compare sorted CSV lines against the written-order
        // oracle for the characteristic query shapes.
        let store = grid_store(6);
        let queries = [
            // Wide BGP with an adversarial written order (biggest first).
            "SELECT ?obs ?lai ?t WHERE {
               ?obs ?p ?o .
               ?obs lai:hasLai ?lai .
               ?obs time:hasTime ?t .
               FILTER(?lai > 0.5)
             }",
            // Spatial filter over a sub-extent.
            "SELECT ?obs ?w WHERE {
               ?obs geo:hasGeometry ?g .
               ?g geo:asWKT ?w .
               FILTER(geof:sfIntersects(?w, \"POLYGON ((0.05 0.05, 0.35 0.05, \
               0.35 0.35, 0.05 0.35, 0.05 0.05))\"^^geo:wktLiteral))
             }",
            // Temporal range plus a join back to the value.
            "SELECT ?obs ?lai WHERE {
               ?obs time:hasTime ?t .
               ?obs lai:hasLai ?lai .
               FILTER(?t >= \"1970-01-05T00:00:00Z\"^^xsd:dateTime)
             }",
            // Spatial self-join: the sideways-envelope path.
            "SELECT ?a ?b WHERE {
               ?a geo:asWKT ?wa .
               ?b geo:asWKT ?wb .
               FILTER(geof:sfEquals(?wa, ?wb))
             }",
        ];
        for q in queries {
            let parsed = applab_sparql::parse_query(q).unwrap();
            let opts = applab_sparql::EvalOptions::default();
            let plain = applab_sparql::evaluate_with(&store, &parsed, &opts).unwrap();
            let planned =
                applab_sparql::evaluate_with(&store, &parsed, &opts.clone().planner(true)).unwrap();
            let (csv_a, csv_b) = (plain.to_csv(), planned.to_csv());
            let mut a: Vec<&str> = csv_a.lines().collect();
            let mut b: Vec<&str> = csv_b.lines().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert!(!plain.is_empty(), "oracle empty for {q}");
            assert_eq!(a, b, "planner diverged on {q}");
        }
    }

    #[test]
    fn load_turtle_roundtrip() {
        let store = load_turtle(
            r#"@prefix osm: <http://www.app-lab.eu/osm/> .
               <http://ex.org/a> osm:hasName "X" ."#,
        )
        .unwrap();
        assert_eq!(store.len(), 1);
        assert!(load_turtle("garbage {{{").is_err());
    }
}
