//! The baseline RDF store: no dictionary, no indexes.
//!
//! Every pattern lookup is a linear scan over a `Vec<Triple>` and spatial /
//! temporal filters are always evaluated post-hoc (the pushdown hooks are
//! left at their `None` defaults). This is the "plain RDF store without
//! spatiotemporal support" baseline the Strabon papers compare against
//! (claim C3); bench B3 reproduces that comparison.

use applab_rdf::{Graph, NamedNode, Resource, Term, Triple};
use applab_sparql::GraphSource;

/// A linear-scan triple store.
#[derive(Debug, Default, Clone)]
pub struct NaiveStore {
    triples: Vec<Triple>,
}

impl NaiveStore {
    pub fn new() -> Self {
        NaiveStore::default()
    }

    pub fn from_graph(graph: &Graph) -> Self {
        NaiveStore {
            triples: graph.iter().cloned().collect(),
        }
    }

    pub fn insert(&mut self, triple: Triple) {
        self.triples.push(triple);
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

impl GraphSource for NaiveStore {
    fn triples_matching(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        self.triples
            .iter()
            .filter(|t| {
                subject.is_none_or(|s| &t.subject == s)
                    && predicate.is_none_or(|p| &t.predicate == p)
                    && object.is_none_or(|o| &t.object == o)
            })
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{lai_observation, SpatioTemporalStore};
    use applab_rdf::vocab;

    /// The key correctness property: the naive store and the indexed store
    /// return identical answers for the same query — the indexes are a pure
    /// optimization.
    #[test]
    fn answers_match_indexed_store() {
        let mut g = Graph::new();
        for i in 0..50 {
            lai_observation(
                &mut g,
                &format!("o{i}"),
                i as f64 / 10.0,
                i as i64 * 86_400,
                &format!("POINT ({} {})", i % 10, i / 10),
            );
        }
        let naive = NaiveStore::from_graph(&g);
        let indexed = SpatioTemporalStore::from_graph(&g);

        for q in [
            "SELECT ?s ?lai WHERE { ?s lai:hasLai ?lai . FILTER(?lai > 2.5) }",
            r#"SELECT ?s ?wkt WHERE {
                 ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt .
                 FILTER(geof:sfWithin(?wkt, "POLYGON ((2 2, 6 2, 6 4, 2 4, 2 2))"^^geo:wktLiteral))
               }"#,
            r#"SELECT ?s WHERE {
                 ?s time:hasTime ?t .
                 FILTER(?t >= "1970-01-11T00:00:00Z"^^xsd:dateTime && ?t < "1970-01-21T00:00:00Z"^^xsd:dateTime)
               }"#,
            "SELECT (COUNT(*) AS ?n) WHERE { ?s a lai:Observation }",
        ] {
            let a = applab_sparql::query(&naive, q).unwrap();
            let b = applab_sparql::query(&indexed, q).unwrap();
            assert_eq!(a.len(), b.len(), "row count differs for {q}");
            // Compare row multisets by string form.
            let key = |r: &applab_sparql::QueryResults| -> Vec<String> {
                let mut rows: Vec<String> = r
                    .rows()
                    .iter()
                    .map(|row| {
                        row.values
                            .iter()
                            .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                            .collect::<Vec<_>>()
                            .join("|")
                    })
                    .collect();
                rows.sort();
                rows
            };
            assert_eq!(key(&a), key(&b), "rows differ for {q}");
        }
    }

    #[test]
    fn basic_matching() {
        let mut s = NaiveStore::new();
        s.insert(Triple::new(
            Resource::named("http://ex.org/a"),
            NamedNode::new(vocab::rdfs::LABEL),
            applab_rdf::Literal::string("x"),
        ));
        assert_eq!(s.len(), 1);
        assert_eq!(s.triples_matching(None, None, None).len(), 1);
        let missing = Resource::named("http://ex.org/b");
        assert!(s.triples_matching(Some(&missing), None, None).is_empty());
    }
}
