//! Tabular input sources: CSV, GeoJSON and a shapefile-like binary format.
//!
//! All readers produce the same row model so the mapping processor is
//! format-agnostic, mirroring GeoTriples' input abstraction.

use crate::json::{self, Json};
use applab_geo::{parse_wkt, write_wkt, Coord, Geometry, LineString, Polygon};
use std::collections::BTreeMap;
use std::fmt;

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Text(String),
    Number(f64),
    Bool(bool),
    /// A geometry (kept parsed; serialized as WKT when it reaches RDF).
    Geometry(Geometry),
}

impl Value {
    /// The lexical form used when the value is substituted into a template.
    pub fn lexical(&self) -> Option<String> {
        match self {
            Value::Null => None,
            Value::Text(t) => Some(t.clone()),
            Value::Number(n) => Some(n.to_string()),
            Value::Bool(b) => Some(b.to_string()),
            Value::Geometry(g) => Some(write_wkt(g)),
        }
    }
}

/// One row: column name → value.
pub type Row = BTreeMap<String, Value>;

/// A named table of rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TabularSource {
    pub name: String,
    pub rows: Vec<Row>,
}

/// Reader error.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceError(pub String);

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "source error: {}", self.0)
    }
}

impl std::error::Error for SourceError {}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// Parse CSV text (RFC-4180 quoting) with a header row. Columns whose value
/// parses as WKT become [`Value::Geometry`]; numeric cells become
/// [`Value::Number`]; empty cells become [`Value::Null`].
pub fn read_csv(name: &str, text: &str) -> Result<TabularSource, SourceError> {
    let mut records = csv_records(text)?;
    if records.is_empty() {
        return Ok(TabularSource {
            name: name.to_string(),
            rows: vec![],
        });
    }
    let header = records.remove(0);
    let mut rows = Vec::with_capacity(records.len());
    for (line, record) in records.into_iter().enumerate() {
        if record.len() != header.len() {
            return Err(SourceError(format!(
                "record {} has {} fields, header has {}",
                line + 2,
                record.len(),
                header.len()
            )));
        }
        let mut row = Row::new();
        for (col, cell) in header.iter().zip(record) {
            row.insert(col.clone(), classify(&cell));
        }
        rows.push(row);
    }
    Ok(TabularSource {
        name: name.to_string(),
        rows,
    })
}

fn classify(cell: &str) -> Value {
    let trimmed = cell.trim();
    if trimmed.is_empty() {
        return Value::Null;
    }
    if let Ok(n) = trimmed.parse::<f64>() {
        return Value::Number(n);
    }
    match trimmed {
        "true" | "TRUE" => return Value::Bool(true),
        "false" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    // WKT? Cheap prefix check before full parse.
    let upper = trimmed.to_ascii_uppercase();
    if ["POINT", "LINESTRING", "POLYGON", "MULTI", "GEOMETRY"]
        .iter()
        .any(|p| upper.starts_with(p))
    {
        if let Ok(g) = parse_wkt(trimmed) {
            return Value::Geometry(g);
        }
    }
    Value::Text(trimmed.to_string())
}

/// Split CSV text into records of fields (RFC-4180 quotes, embedded commas
/// and newlines).
fn csv_records(text: &str) -> Result<Vec<Vec<String>>, SourceError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    if !(record.len() == 1 && record[0].is_empty()) {
                        records.push(std::mem::take(&mut record));
                    } else {
                        record.clear();
                    }
                }
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(SourceError("unterminated quoted field".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

// ---------------------------------------------------------------------------
// GeoJSON
// ---------------------------------------------------------------------------

/// Parse a GeoJSON FeatureCollection. Each feature becomes a row with its
/// properties plus a `geometry` column.
pub fn read_geojson(name: &str, text: &str) -> Result<TabularSource, SourceError> {
    let doc = json::parse(text).map_err(|e| SourceError(e.to_string()))?;
    if doc.get("type").and_then(Json::as_str) != Some("FeatureCollection") {
        return Err(SourceError("expected a FeatureCollection".into()));
    }
    let features = doc
        .get("features")
        .and_then(Json::as_array)
        .ok_or_else(|| SourceError("missing features array".into()))?;
    let mut rows = Vec::with_capacity(features.len());
    for (i, f) in features.iter().enumerate() {
        let mut row = Row::new();
        if let Some(props) = f.get("properties").and_then(Json::as_object) {
            for (k, v) in props {
                row.insert(
                    k.clone(),
                    match v {
                        Json::Null => Value::Null,
                        Json::Bool(b) => Value::Bool(*b),
                        Json::Number(n) => Value::Number(*n),
                        Json::String(s) => Value::Text(s.clone()),
                        other => Value::Text(json::write(other)),
                    },
                );
            }
        }
        let geometry = f
            .get("geometry")
            .ok_or_else(|| SourceError(format!("feature {i} has no geometry")))?;
        row.insert(
            "geometry".to_string(),
            Value::Geometry(geojson_geometry(geometry, i)?),
        );
        if let Some(id) = f.get("id") {
            if let Some(s) = id.as_str() {
                row.insert("id".into(), Value::Text(s.to_string()));
            } else if let Some(n) = id.as_f64() {
                row.insert("id".into(), Value::Number(n));
            }
        }
        rows.push(row);
    }
    Ok(TabularSource {
        name: name.to_string(),
        rows,
    })
}

fn coord_pair(v: &Json, ctx: usize) -> Result<Coord, SourceError> {
    let arr = v
        .as_array()
        .filter(|a| a.len() >= 2)
        .ok_or_else(|| SourceError(format!("feature {ctx}: bad coordinate")))?;
    Ok(Coord::new(
        arr[0]
            .as_f64()
            .ok_or_else(|| SourceError(format!("feature {ctx}: bad coordinate")))?,
        arr[1]
            .as_f64()
            .ok_or_else(|| SourceError(format!("feature {ctx}: bad coordinate")))?,
    ))
}

fn coord_ring(v: &Json, ctx: usize) -> Result<Vec<Coord>, SourceError> {
    v.as_array()
        .ok_or_else(|| SourceError(format!("feature {ctx}: bad ring")))?
        .iter()
        .map(|c| coord_pair(c, ctx))
        .collect()
}

fn geojson_geometry(g: &Json, ctx: usize) -> Result<Geometry, SourceError> {
    let gtype = g
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| SourceError(format!("feature {ctx}: geometry without type")))?;
    let coords = g
        .get("coordinates")
        .ok_or_else(|| SourceError(format!("feature {ctx}: geometry without coordinates")))?;
    match gtype {
        "Point" => Ok(Geometry::Point(applab_geo::Point(coord_pair(coords, ctx)?))),
        "LineString" => Ok(Geometry::LineString(LineString::new(coord_ring(
            coords, ctx,
        )?))),
        "Polygon" => {
            let rings = coords
                .as_array()
                .ok_or_else(|| SourceError(format!("feature {ctx}: bad polygon")))?;
            let mut iter = rings.iter();
            let exterior = LineString::new(coord_ring(
                iter.next()
                    .ok_or_else(|| SourceError(format!("feature {ctx}: empty polygon")))?,
                ctx,
            )?);
            let interiors: Result<Vec<LineString>, SourceError> = iter
                .map(|r| Ok(LineString::new(coord_ring(r, ctx)?)))
                .collect();
            Ok(Geometry::Polygon(Polygon::new(exterior, interiors?)))
        }
        "MultiPolygon" => {
            let polys = coords
                .as_array()
                .ok_or_else(|| SourceError(format!("feature {ctx}: bad multipolygon")))?;
            let mut out = Vec::with_capacity(polys.len());
            for p in polys {
                let rings = p
                    .as_array()
                    .ok_or_else(|| SourceError(format!("feature {ctx}: bad multipolygon")))?;
                let mut iter = rings.iter();
                let exterior = LineString::new(coord_ring(
                    iter.next()
                        .ok_or_else(|| SourceError(format!("feature {ctx}: empty polygon")))?,
                    ctx,
                )?);
                let interiors: Result<Vec<LineString>, SourceError> = iter
                    .map(|r| Ok(LineString::new(coord_ring(r, ctx)?)))
                    .collect();
                out.push(Polygon::new(exterior, interiors?));
            }
            Ok(Geometry::MultiPolygon(out))
        }
        other => Err(SourceError(format!(
            "feature {ctx}: unsupported geometry type {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Shapefile-like binary format
// ---------------------------------------------------------------------------
//
// A simple length-prefixed binary container standing in for ESRI shapefiles
// (the real format needs no external data to reproduce the code path: binary
// parse → rows with geometry + attributes).

const SHP_MAGIC: &[u8; 8] = b"ALSHAPE1";

/// Serialize a source to the shapefile-like binary format.
pub fn write_shapefile_sim(source: &TabularSource) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SHP_MAGIC);
    push_str(&mut out, &source.name);
    out.extend_from_slice(&(source.rows.len() as u32).to_be_bytes());
    for row in &source.rows {
        out.extend_from_slice(&(row.len() as u32).to_be_bytes());
        for (k, v) in row {
            push_str(&mut out, k);
            match v {
                Value::Null => out.push(0),
                Value::Text(t) => {
                    out.push(1);
                    push_str(&mut out, t);
                }
                Value::Number(n) => {
                    out.push(2);
                    out.extend_from_slice(&n.to_be_bytes());
                }
                Value::Bool(b) => {
                    out.push(3);
                    out.push(u8::from(*b));
                }
                Value::Geometry(g) => {
                    out.push(4);
                    push_str(&mut out, &write_wkt(g));
                }
            }
        }
    }
    out
}

/// Parse the shapefile-like binary format.
pub fn read_shapefile_sim(data: &[u8]) -> Result<TabularSource, SourceError> {
    let mut pos = 0usize;
    let err = |m: &str| SourceError(format!("shapefile-sim: {m}"));
    if data.len() < 8 || &data[..8] != SHP_MAGIC {
        return Err(err("bad magic"));
    }
    pos += 8;
    let name = take_str(data, &mut pos).ok_or_else(|| err("truncated name"))?;
    let count = take_u32(data, &mut pos).ok_or_else(|| err("truncated count"))? as usize;
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let fields = take_u32(data, &mut pos).ok_or_else(|| err("truncated row"))? as usize;
        let mut row = Row::new();
        for _ in 0..fields {
            let key = take_str(data, &mut pos).ok_or_else(|| err("truncated key"))?;
            let tag = *data.get(pos).ok_or_else(|| err("truncated tag"))?;
            pos += 1;
            let value = match tag {
                0 => Value::Null,
                1 => Value::Text(take_str(data, &mut pos).ok_or_else(|| err("truncated text"))?),
                2 => {
                    if pos + 8 > data.len() {
                        return Err(err("truncated number"));
                    }
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&data[pos..pos + 8]);
                    pos += 8;
                    Value::Number(f64::from_be_bytes(b))
                }
                3 => {
                    let b = *data.get(pos).ok_or_else(|| err("truncated bool"))?;
                    pos += 1;
                    Value::Bool(b != 0)
                }
                4 => {
                    let wkt = take_str(data, &mut pos).ok_or_else(|| err("truncated geometry"))?;
                    Value::Geometry(
                        parse_wkt(&wkt).map_err(|e| err(&format!("bad geometry: {e}")))?,
                    )
                }
                other => return Err(err(&format!("unknown tag {other}"))),
            };
            row.insert(key, value);
        }
        rows.push(row);
    }
    Ok(TabularSource { name, rows })
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_u32(data: &[u8], pos: &mut usize) -> Option<u32> {
    if *pos + 4 > data.len() {
        return None;
    }
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[*pos..*pos + 4]);
    *pos += 4;
    Some(u32::from_be_bytes(b))
}

fn take_str(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = take_u32(data, pos)? as usize;
    if *pos + len > data.len() {
        return None;
    }
    let s = String::from_utf8(data[*pos..*pos + len].to_vec()).ok()?;
    *pos += len;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_with_wkt_and_quotes() {
        let text = "id,name,geom,area\n1,\"Bois, de Boulogne\",\"POLYGON ((0 0, 1 0, 1 1, 0 0))\",846.0\n2,Monceau,POINT (2.3 48.9),\n";
        let src = read_csv("parks", text).unwrap();
        assert_eq!(src.rows.len(), 2);
        let r0 = &src.rows[0];
        assert_eq!(r0["name"], Value::Text("Bois, de Boulogne".into()));
        assert!(matches!(r0["geom"], Value::Geometry(Geometry::Polygon(_))));
        assert_eq!(r0["area"], Value::Number(846.0));
        assert_eq!(src.rows[1]["area"], Value::Null);
    }

    #[test]
    fn csv_field_count_mismatch() {
        assert!(read_csv("x", "a,b\n1\n").is_err());
        assert!(read_csv("x", "a,b\n\"open\n").is_err());
    }

    #[test]
    fn csv_empty() {
        assert!(read_csv("x", "").unwrap().rows.is_empty());
    }

    #[test]
    fn geojson_roundtrip_fields() {
        let doc = r#"{
          "type": "FeatureCollection",
          "features": [
            {"type": "Feature", "id": "p1",
             "geometry": {"type": "Polygon", "coordinates": [[[0,0],[1,0],[1,1],[0,0]]]},
             "properties": {"name": "park", "leisure": "park", "size": 2.5}},
            {"type": "Feature",
             "geometry": {"type": "Point", "coordinates": [2.35, 48.85]},
             "properties": {"name": null}}
          ]
        }"#;
        let src = read_geojson("osm", doc).unwrap();
        assert_eq!(src.rows.len(), 2);
        assert_eq!(src.rows[0]["id"], Value::Text("p1".into()));
        assert_eq!(src.rows[0]["size"], Value::Number(2.5));
        assert!(matches!(
            src.rows[0]["geometry"],
            Value::Geometry(Geometry::Polygon(_))
        ));
        assert_eq!(src.rows[1]["name"], Value::Null);
        assert!(matches!(
            src.rows[1]["geometry"],
            Value::Geometry(Geometry::Point(_))
        ));
    }

    #[test]
    fn geojson_multipolygon() {
        let doc = r#"{
          "type": "FeatureCollection",
          "features": [
            {"type": "Feature",
             "geometry": {"type": "MultiPolygon",
               "coordinates": [[[[0,0],[1,0],[1,1],[0,0]]],[[[5,5],[6,5],[6,6],[5,5]]]]},
             "properties": {}}
          ]
        }"#;
        let src = read_geojson("mp", doc).unwrap();
        match &src.rows[0]["geometry"] {
            Value::Geometry(Geometry::MultiPolygon(ps)) => assert_eq!(ps.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn geojson_errors() {
        assert!(read_geojson("x", "{}").is_err());
        assert!(read_geojson("x", "{\"type\":\"FeatureCollection\"}").is_err());
        let nogeom =
            r#"{"type":"FeatureCollection","features":[{"type":"Feature","properties":{}}]}"#;
        assert!(read_geojson("x", nogeom).is_err());
    }

    #[test]
    fn shapefile_sim_roundtrip() {
        let src = read_csv(
            "parks",
            "id,name,geom\n1,A,POINT (1 2)\n2,B,\"POLYGON ((0 0, 1 0, 1 1, 0 0))\"\n",
        )
        .unwrap();
        let bytes = write_shapefile_sim(&src);
        let back = read_shapefile_sim(&bytes).unwrap();
        assert_eq!(back, src);
    }

    #[test]
    fn shapefile_sim_rejects_corruption() {
        let src = read_csv("x", "a\n1\n").unwrap();
        let bytes = write_shapefile_sim(&src);
        assert!(read_shapefile_sim(&bytes[..bytes.len() - 3]).is_err());
        assert!(read_shapefile_sim(b"WRONG").is_err());
    }

    #[test]
    fn lexical_forms() {
        assert_eq!(Value::Null.lexical(), None);
        assert_eq!(Value::Number(2.5).lexical(), Some("2.5".into()));
        assert_eq!(Value::Bool(true).lexical(), Some("true".into()));
        assert_eq!(
            Value::Geometry(Geometry::point(1.0, 2.0)).lexical(),
            Some("POINT (1 2)".into())
        );
    }
}
