//! GeoTriples: transforming geospatial data into RDF graphs.
//!
//! Reproduces the tool of Section 3 ("GeoTriples enables the transformation
//! of geospatial data stored in raw files (shapefiles, CSV, KML, XML, GML
//! and GeoJSON) ... into RDF graphs using well-known geospatial
//! vocabularies"):
//!
//! * [`source`] — readers producing a uniform tabular row model from CSV
//!   (with WKT columns), GeoJSON, and a binary shapefile-like format;
//! * [`mapping`] — the mapping language (the `mappingId`/`target`/`source`
//!   document format of Listing 2, restricted to its transformation parts);
//! * [`processor`] — the mapping processor, sequential or multi-core (the
//!   paper's Hadoop deployment of \[22\] becomes a thread pool; bench B5
//!   measures its scaling);
//! * [`json`] — a minimal JSON parser (no JSON crate in the offline
//!   dependency set).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod json;
pub mod mapping;
pub mod processor;
pub mod source;

pub use mapping::{parse_mappings, Mapping, MappingError};
pub use processor::{process, process_parallel};
pub use source::{Row, TabularSource, Value};
