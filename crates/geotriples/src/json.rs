//! A minimal JSON parser (for GeoJSON input and JSON-LD-ish output).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `obj["key"]` convenience.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.get(key)
    }
}

/// JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            position: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        let found = self.peek();
        if found == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected '{}', found {:?}",
                b as char,
                found.map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => self.err(format!("unexpected {:?}", other.map(|c| c as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {word}"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or(JsonError {
                message: "bad number".into(),
                position: start,
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = match self.bytes.get(self.pos) {
                Some(b) => *b,
                None => return self.err("unterminated string"),
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().ok_or(JsonError {
                        message: "dangling escape".into(),
                        position: self.pos,
                    })?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex_end = self.pos + 5;
                            if hex_end > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..hex_end])
                                .map_err(|_| JsonError {
                                    message: "bad \\u escape".into(),
                                    position: self.pos,
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                message: "bad \\u escape".into(),
                                position: self.pos,
                            })?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return self.err(format!("bad escape \\{}", other as char));
                        }
                    }
                    self.pos += 1;
                }
                _ => {
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    out.push_str(std::str::from_utf8(&self.bytes[self.pos..end]).map_err(
                        |_| JsonError {
                            message: "invalid UTF-8".into(),
                            position: self.pos,
                        },
                    )?);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                other => return self.err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.value()?;
            out.insert(key, value);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(out));
                }
                other => return self.err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

/// Serialize a JSON value (compact).
pub fn write(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => out.push_str(&n.to_string()),
        Json::String(s) => write_string(out, s),
        Json::Array(a) => {
            out.push('[');
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, v);
            }
            out.push(']');
        }
        Json::Object(o) => {
            out.push('{');
            for (i, (k, v)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_feature_collection() {
        let doc = r#"{
            "type": "FeatureCollection",
            "features": [
                {"type": "Feature",
                 "geometry": {"type": "Point", "coordinates": [2.35, 48.85]},
                 "properties": {"name": "Paris", "population": 2.2e6, "capital": true}}
            ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("FeatureCollection"));
        let features = v.get("features").unwrap().as_array().unwrap();
        let props = features[0].get("properties").unwrap();
        assert_eq!(props.get("population").unwrap().as_f64(), Some(2.2e6));
        assert_eq!(props.get("capital").unwrap(), &Json::Bool(true));
        let coords = features[0]
            .get("geometry")
            .unwrap()
            .get("coordinates")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(coords[0].as_f64(), Some(2.35));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""line\nbreak \"q\" é""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak \"q\" é"));
    }

    #[test]
    fn roundtrip() {
        let doc = r#"{"a":[1,2.5,-3],"b":null,"c":"x","d":{"e":false}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(parse(&write(&v)).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(BTreeMap::new()));
    }

    #[test]
    fn control_chars_escaped_on_write() {
        let s = Json::String("a\u{1}b".into());
        assert_eq!(write(&s), "\"a\\u0001b\"");
    }
}
