//! The mapping language.
//!
//! The paper's Listing 2 shows the "native mapping language of
//! Ontop-spatial which is less verbose than R2RML": blocks of
//! `mappingId` / `target` / `source` lines, where the target is a
//! Turtle-like template with `{column}` placeholders. GeoTriples and the
//! OBDA engine share this format; GeoTriples uses it to materialize
//! triples, Ontop-spatial to define virtual ones.
//!
//! ```text
//! mappingId   osm_parks
//! target      osm:poi_{id} a osm:PointOfInterest ;
//!             osm:hasName {name}^^xsd:string ;
//!             geo:hasGeometry osm:geom_{id} .
//!             osm:geom_{id} geo:asWKT {geometry}^^geo:wktLiteral .
//! source      parks
//! ```

use crate::source::{Row, Value};
use applab_rdf::{vocab, Literal, NamedNode, Resource, Term, Triple};
use std::collections::HashMap;
use std::fmt;

/// Mapping parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingError(pub String);

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mapping error: {}", self.0)
    }
}

impl std::error::Error for MappingError {}

/// A text template with `{column}` placeholders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringTemplate {
    parts: Vec<Part>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Part {
    Text(String),
    Column(String),
}

impl StringTemplate {
    pub fn parse(text: &str) -> Result<Self, MappingError> {
        let mut parts = Vec::new();
        let mut buf = String::new();
        let mut chars = text.chars();
        while let Some(c) = chars.next() {
            if c == '{' {
                if !buf.is_empty() {
                    parts.push(Part::Text(std::mem::take(&mut buf)));
                }
                let mut col = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => col.push(c),
                        None => return Err(MappingError(format!("unclosed '{{' in {text:?}"))),
                    }
                }
                if col.is_empty() {
                    return Err(MappingError(format!("empty placeholder in {text:?}")));
                }
                parts.push(Part::Column(col));
            } else {
                buf.push(c);
            }
        }
        if !buf.is_empty() {
            parts.push(Part::Text(buf));
        }
        Ok(StringTemplate { parts })
    }

    /// Expand against a row. `None` when a referenced column is null or
    /// missing (GeoTriples emits no triple in that case).
    pub fn expand(&self, row: &Row) -> Option<String> {
        let mut out = String::new();
        for p in &self.parts {
            match p {
                Part::Text(t) => out.push_str(t),
                Part::Column(c) => out.push_str(&row.get(c)?.lexical()?),
            }
        }
        Some(out)
    }

    /// The single column of a bare `{col}` template, if that is the shape.
    fn single_column(&self) -> Option<&str> {
        match self.parts.as_slice() {
            [Part::Column(c)] => Some(c),
            _ => None,
        }
    }

    /// Invert a single-placeholder template against a concrete string:
    /// `prefix{col}suffix` matched on `text` yields `(col, middle)`.
    /// This is the IRI-template inversion OBDA engines use to turn bound
    /// subjects back into key lookups.
    pub fn invert_single(&self, text: &str) -> Option<(&str, String)> {
        match self.parts.as_slice() {
            [Part::Column(c)] => Some((c, text.to_string())),
            [Part::Text(prefix), Part::Column(c)] => text
                .strip_prefix(prefix.as_str())
                .map(|rest| (c.as_str(), rest.to_string())),
            [Part::Column(c), Part::Text(suffix)] => text
                .strip_suffix(suffix.as_str())
                .map(|rest| (c.as_str(), rest.to_string())),
            [Part::Text(prefix), Part::Column(c), Part::Text(suffix)] => text
                .strip_prefix(prefix.as_str())
                .and_then(|rest| rest.strip_suffix(suffix.as_str()))
                .map(|mid| (c.as_str(), mid.to_string())),
            _ => None,
        }
    }

    /// Does the template have one of the single-placeholder shapes that
    /// [`StringTemplate::invert_single`] can invert?
    pub fn is_invertible(&self) -> bool {
        matches!(
            self.parts.as_slice(),
            [Part::Column(_)]
                | [Part::Text(_), Part::Column(_)]
                | [Part::Column(_), Part::Text(_)]
                | [Part::Text(_), Part::Column(_), Part::Text(_)]
        )
    }

    /// All referenced columns.
    pub fn columns(&self) -> Vec<&str> {
        self.parts
            .iter()
            .filter_map(|p| match p {
                Part::Column(c) => Some(c.as_str()),
                Part::Text(_) => None,
            })
            .collect()
    }
}

/// A term template in a target pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermTemplate {
    Iri(StringTemplate),
    Blank(StringTemplate),
    Literal {
        template: StringTemplate,
        /// Explicit datatype; `None` means "infer from the value".
        datatype: Option<NamedNode>,
        language: Option<String>,
    },
}

impl TermTemplate {
    /// Expand against a row; `None` when a referenced column is null.
    pub fn expand(&self, row: &Row) -> Option<Term> {
        match self {
            TermTemplate::Iri(t) => Some(Term::named(t.expand(row)?)),
            TermTemplate::Blank(t) => Some(Term::Blank(applab_rdf::BlankNode::new(
                t.expand(row)?.replace([' ', ':', '/'], "_"),
            ))),
            TermTemplate::Literal {
                template,
                datatype,
                language,
            } => {
                if let Some(lang) = language {
                    return Some(Literal::lang(template.expand(row)?, lang.clone()).into());
                }
                if let Some(dt) = datatype {
                    return Some(Literal::typed(template.expand(row)?, dt.clone()).into());
                }
                // Infer from the underlying value for bare {col}.
                if let Some(col) = template.single_column() {
                    return Some(match row.get(col)? {
                        Value::Null => return None,
                        Value::Text(t) => Literal::string(t.clone()).into(),
                        Value::Number(n) => Literal::double(*n).into(),
                        Value::Bool(b) => Literal::boolean(*b).into(),
                        Value::Geometry(g) => Literal::wkt(applab_geo::write_wkt(g)).into(),
                    });
                }
                Some(Literal::string(template.expand(row)?).into())
            }
        }
    }
}

/// One triple template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleTemplate {
    pub subject: TermTemplate,
    pub predicate: TermTemplate,
    pub object: TermTemplate,
}

impl TripleTemplate {
    /// Expand against a row; `None` when any referenced column is null.
    pub fn expand(&self, row: &Row) -> Option<Triple> {
        let s = match self.subject.expand(row)? {
            Term::Named(n) => Resource::Named(n),
            Term::Blank(b) => Resource::Blank(b),
            Term::Literal(_) => return None,
        };
        let p = match self.predicate.expand(row)? {
            Term::Named(n) => n,
            _ => return None,
        };
        let o = self.object.expand(row)?;
        Some(Triple::new(s, p, o))
    }
}

/// A complete mapping: id, target templates, opaque source reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    pub id: String,
    pub target: Vec<TripleTemplate>,
    /// The source clause, uninterpreted here. GeoTriples treats it as a
    /// table name; the OBDA engine parses it as a query over its relations
    /// (see `applab-obda`).
    pub source: String,
}

/// Parse a mapping document (one or more `mappingId`/`target`/`source`
/// blocks). Prefixes from the default table are pre-declared.
pub fn parse_mappings(text: &str) -> Result<Vec<Mapping>, MappingError> {
    let prefixes: HashMap<String, String> = vocab::default_prefixes()
        .into_iter()
        .map(|(p, ns)| (p.to_string(), ns.to_string()))
        .collect();

    // Group the document into (keyword, value) fields; a value continues
    // until the next keyword line.
    let mut fields: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let keyword = trimmed.split_whitespace().next().unwrap_or("");
        if ["mappingId", "target", "source"].contains(&keyword) {
            let value = trimmed[keyword.len()..].trim().to_string();
            fields.push((keyword.to_string(), value));
        } else {
            match fields.last_mut() {
                Some((_, value)) => {
                    value.push(' ');
                    value.push_str(trimmed);
                }
                None => {
                    return Err(MappingError(format!(
                        "unexpected line before first keyword: {trimmed:?}"
                    )))
                }
            }
        }
    }

    let mut mappings = Vec::new();
    let mut current: Option<(String, Option<String>, Option<String>)> = None;
    let finish = |current: &mut Option<(String, Option<String>, Option<String>)>,
                  mappings: &mut Vec<Mapping>|
     -> Result<(), MappingError> {
        if let Some((id, target, source)) = current.take() {
            let target =
                target.ok_or_else(|| MappingError(format!("mapping {id} lacks a target")))?;
            mappings.push(Mapping {
                target: parse_target(&target, &prefixes)?,
                source: source.unwrap_or_default(),
                id,
            });
        }
        Ok(())
    };
    for (keyword, value) in fields {
        match keyword.as_str() {
            "mappingId" => {
                finish(&mut current, &mut mappings)?;
                if value.is_empty() {
                    return Err(MappingError("empty mappingId".into()));
                }
                current = Some((value, None, None));
            }
            "target" => match current.as_mut() {
                Some((_, t, _)) => *t = Some(value),
                None => return Err(MappingError("target before mappingId".into())),
            },
            "source" => match current.as_mut() {
                Some((_, _, s)) => *s = Some(value),
                None => return Err(MappingError("source before mappingId".into())),
            },
            _ => unreachable!(),
        }
    }
    finish(&mut current, &mut mappings)?;
    if mappings.is_empty() {
        return Err(MappingError("no mappings in document".into()));
    }
    Ok(mappings)
}

/// Parse a target clause: whitespace-separated term templates in
/// `s p o [;|,|.]` groups.
fn parse_target(
    text: &str,
    prefixes: &HashMap<String, String>,
) -> Result<Vec<TripleTemplate>, MappingError> {
    let tokens = tokenize_target(text)?;
    let mut templates = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let subject = parse_term(&tokens[i], prefixes)?;
        i += 1;
        loop {
            if i + 1 >= tokens.len() {
                return Err(MappingError(format!(
                    "dangling predicate/object near token {i} in {text:?}"
                )));
            }
            let predicate = if tokens[i] == "a" {
                TermTemplate::Iri(StringTemplate::parse(vocab::rdf::TYPE)?)
            } else {
                parse_term(&tokens[i], prefixes)?
            };
            i += 1;
            loop {
                let object = parse_term(&tokens[i], prefixes)?;
                i += 1;
                templates.push(TripleTemplate {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                match tokens.get(i).map(String::as_str) {
                    Some(",") => {
                        i += 1;
                        continue;
                    }
                    _ => break,
                }
            }
            match tokens.get(i).map(String::as_str) {
                Some(";") => {
                    i += 1;
                    continue;
                }
                Some(".") => {
                    i += 1;
                    break;
                }
                None => break,
                Some(other) => {
                    return Err(MappingError(format!(
                        "expected '.', ';' or ',', found {other:?}"
                    )))
                }
            }
        }
    }
    if templates.is_empty() {
        return Err(MappingError("empty target".into()));
    }
    Ok(templates)
}

/// Split a target clause into term tokens and punctuation, respecting
/// quoted strings and `{...}` placeholders.
fn tokenize_target(text: &str) -> Result<Vec<String>, MappingError> {
    let mut tokens = Vec::new();
    let mut buf = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut in_braces = false;
    let mut in_angle = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if !in_braces => {
                in_quotes = !in_quotes;
                buf.push(c);
            }
            '{' if !in_quotes => {
                in_braces = true;
                buf.push(c);
            }
            '}' if !in_quotes => {
                in_braces = false;
                buf.push(c);
            }
            '<' if !in_quotes && !in_braces && buf.is_empty() => {
                in_angle = true;
                buf.push(c);
            }
            '>' if in_angle => {
                in_angle = false;
                buf.push(c);
            }
            c if c.is_whitespace() && !in_quotes && !in_braces && !in_angle => {
                if !buf.is_empty() {
                    tokens.push(std::mem::take(&mut buf));
                }
            }
            ';' | ',' if !in_quotes && !in_braces && !in_angle => {
                if !buf.is_empty() {
                    tokens.push(std::mem::take(&mut buf));
                }
                tokens.push(c.to_string());
            }
            '.' if !in_quotes && !in_braces && !in_angle => {
                // A '.' is punctuation only when followed by whitespace or
                // end (it may appear inside numbers/IRIs otherwise).
                if buf.is_empty() || chars.peek().is_none_or(|n| n.is_whitespace()) {
                    if !buf.is_empty() {
                        tokens.push(std::mem::take(&mut buf));
                    }
                    tokens.push(".".into());
                } else {
                    buf.push(c);
                }
            }
            c => buf.push(c),
        }
    }
    if in_quotes || in_braces || in_angle {
        return Err(MappingError(format!("unterminated token in {text:?}")));
    }
    if !buf.is_empty() {
        tokens.push(buf);
    }
    Ok(tokens)
}

fn parse_term(
    token: &str,
    prefixes: &HashMap<String, String>,
) -> Result<TermTemplate, MappingError> {
    // Literal with datatype or language?
    if let Some((body, dt)) = token.split_once("^^") {
        let template = literal_body(body)?;
        let datatype = resolve_iri_token(dt, prefixes)?;
        return Ok(TermTemplate::Literal {
            template,
            datatype: Some(datatype),
            language: None,
        });
    }
    if token.starts_with('"') {
        if let Some((body, lang)) = token.rsplit_once('@') {
            if !lang.is_empty() && lang.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
                return Ok(TermTemplate::Literal {
                    template: literal_body(body)?,
                    datatype: None,
                    language: Some(lang.to_string()),
                });
            }
        }
        return Ok(TermTemplate::Literal {
            template: literal_body(token)?,
            datatype: None,
            language: None,
        });
    }
    if let Some(label) = token.strip_prefix("_:") {
        return Ok(TermTemplate::Blank(StringTemplate::parse(label)?));
    }
    if token.starts_with('<') && token.ends_with('>') {
        return Ok(TermTemplate::Iri(StringTemplate::parse(
            &token[1..token.len() - 1],
        )?));
    }
    // Bare placeholder → literal with inferred type.
    if token.starts_with('{') && token.ends_with('}') {
        return Ok(TermTemplate::Literal {
            template: StringTemplate::parse(token)?,
            datatype: None,
            language: None,
        });
    }
    // Prefixed name (placeholders allowed in the local part).
    let named = resolve_iri_token(token, prefixes)?;
    Ok(TermTemplate::Iri(StringTemplate::parse(named.as_str())?))
}

fn literal_body(body: &str) -> Result<StringTemplate, MappingError> {
    let body = body.strip_prefix('"').unwrap_or(body);
    let body = body.strip_suffix('"').unwrap_or(body);
    StringTemplate::parse(body)
}

/// Resolve `prefix:local` (template-aware: the prefix must be literal text,
/// the local part may contain placeholders) or `<iri>`.
fn resolve_iri_token(
    token: &str,
    prefixes: &HashMap<String, String>,
) -> Result<NamedNode, MappingError> {
    if token.starts_with('<') && token.ends_with('>') {
        return Ok(NamedNode::new(&token[1..token.len() - 1]));
    }
    let (prefix, local) = token
        .split_once(':')
        .ok_or_else(|| MappingError(format!("expected IRI or prefixed name, found {token:?}")))?;
    let ns = prefixes
        .get(prefix)
        .ok_or_else(|| MappingError(format!("undeclared prefix {prefix:?}")))?;
    Ok(NamedNode::new(format!("{ns}{local}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Value;

    const PARKS_MAPPING: &str = r#"
# OSM parks to RDF
mappingId   osm_parks
target      osm:poi_{id} a osm:PointOfInterest ;
            osm:poiType osm:park ;
            osm:hasName {name}^^xsd:string ;
            geo:hasGeometry osm:geom_{id} .
            osm:geom_{id} geo:asWKT {geometry}^^geo:wktLiteral .
source      parks
"#;

    fn row(id: &str, name: Option<&str>) -> Row {
        let mut r = Row::new();
        r.insert("id".into(), Value::Text(id.into()));
        if let Some(n) = name {
            r.insert("name".into(), Value::Text(n.into()));
        }
        r.insert(
            "geometry".into(),
            Value::Geometry(applab_geo::Geometry::point(2.25, 48.86)),
        );
        r
    }

    #[test]
    fn parse_and_expand() {
        let mappings = parse_mappings(PARKS_MAPPING).unwrap();
        assert_eq!(mappings.len(), 1);
        let m = &mappings[0];
        assert_eq!(m.id, "osm_parks");
        assert_eq!(m.source, "parks");
        assert_eq!(m.target.len(), 5);

        let r = row("17", Some("Bois de Boulogne"));
        let triples: Vec<Triple> = m.target.iter().filter_map(|t| t.expand(&r)).collect();
        assert_eq!(triples.len(), 5);
        let s = triples[0].subject.as_named().unwrap().as_str();
        assert_eq!(s, "http://www.app-lab.eu/osm/poi_17");
        // The WKT literal got the right datatype.
        let wkt = triples
            .iter()
            .find(|t| t.predicate.as_str() == vocab::geo::AS_WKT)
            .unwrap();
        assert!(wkt.object.as_literal().unwrap().is_wkt());
    }

    #[test]
    fn null_column_skips_triple() {
        let mappings = parse_mappings(PARKS_MAPPING).unwrap();
        let r = row("17", None); // no name
        let triples: Vec<Triple> = mappings[0]
            .target
            .iter()
            .filter_map(|t| t.expand(&r))
            .collect();
        // The hasName triple is dropped, everything else survives.
        assert_eq!(triples.len(), 4);
        assert!(!triples
            .iter()
            .any(|t| t.predicate.as_str() == vocab::osm::HAS_NAME));
    }

    #[test]
    fn inferred_literal_types() {
        let doc = r#"
mappingId   m
target      <http://ex.org/{id}> <http://ex.org/value> {v} .
source      t
"#;
        let m = &parse_mappings(doc).unwrap()[0];
        let mut r = Row::new();
        r.insert("id".into(), Value::Text("x".into()));
        r.insert("v".into(), Value::Number(3.5));
        let t = m.target[0].expand(&r).unwrap();
        assert_eq!(t.object.as_literal().unwrap().as_f64(), Some(3.5));
        r.insert("v".into(), Value::Bool(true));
        let t = m.target[0].expand(&r).unwrap();
        assert_eq!(t.object.as_literal().unwrap().as_bool(), Some(true));
    }

    #[test]
    fn multiple_mappings_and_comments() {
        let doc = r#"
mappingId a
target <http://e/{i}> a osm:PointOfInterest .
source s1
mappingId b
target <http://e/{i}> osm:hasName {n}^^xsd:string .
source s2
"#;
        let ms = parse_mappings(doc).unwrap();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[1].source, "s2");
    }

    #[test]
    fn listing2_style_mapping() {
        // The shape of the paper's Listing 2 (source kept opaque here).
        let doc = r#"
mappingId opendap_mapping
target    lai:{id} rdf:type lai:Observation .
          lai:{id} lai:lai {LAI}^^xsd:float ;
          time:hasTime {ts}^^xsd:dateTime .
          lai:{id} geo:hasGeometry _:g_{id} .
          _:g_{id} geo:asWKT {loc}^^geo:wktLiteral .
source    SELECT id, LAI, ts, loc FROM (ordered opendap url 10) WHERE LAI > 0
"#;
        let m = &parse_mappings(doc).unwrap()[0];
        assert_eq!(m.target.len(), 5);
        assert!(m.source.contains("opendap"));
        let mut r = Row::new();
        r.insert("id".into(), Value::Text("p42".into()));
        r.insert("LAI".into(), Value::Number(3.25));
        r.insert("ts".into(), Value::Text("2017-06-15T00:00:00Z".into()));
        r.insert(
            "loc".into(),
            Value::Geometry(applab_geo::Geometry::point(2.2, 48.8)),
        );
        let triples: Vec<Triple> = m.target.iter().filter_map(|t| t.expand(&r)).collect();
        assert_eq!(triples.len(), 5);
        let ts = triples
            .iter()
            .find(|t| t.predicate.as_str() == vocab::time::HAS_TIME)
            .unwrap();
        assert!(ts.object.as_literal().unwrap().as_datetime().is_some());
        // Blank node subject/object wiring.
        let wkt = triples
            .iter()
            .find(|t| t.predicate.as_str() == vocab::geo::AS_WKT)
            .unwrap();
        assert!(matches!(wkt.subject, Resource::Blank(_)));
    }

    #[test]
    fn language_tagged_template() {
        let doc = r#"
mappingId m
target <http://e/{i}> rdfs:label "{n}"@fr .
source s
"#;
        let m = &parse_mappings(doc).unwrap()[0];
        let mut r = Row::new();
        r.insert("i".into(), Value::Text("1".into()));
        r.insert("n".into(), Value::Text("parc".into()));
        let t = m.target[0].expand(&r).unwrap();
        assert_eq!(t.object.as_literal().unwrap().language(), Some("fr"));
    }

    #[test]
    fn template_inversion() {
        let st = StringTemplate::parse("http://www.app-lab.eu/osm/poi_{id}").unwrap();
        assert_eq!(
            st.invert_single("http://www.app-lab.eu/osm/poi_17"),
            Some(("id", "17".to_string()))
        );
        assert_eq!(st.invert_single("http://elsewhere/poi_17"), None);
        let bare = StringTemplate::parse("{v}").unwrap();
        assert_eq!(bare.invert_single("x"), Some(("v", "x".to_string())));
        let two = StringTemplate::parse("a{x}b{y}").unwrap();
        assert_eq!(two.invert_single("a1b2"), None); // multi-placeholder: no inversion
        let mid = StringTemplate::parse("geo_{id}_node").unwrap();
        assert_eq!(
            mid.invert_single("geo_9_node"),
            Some(("id", "9".to_string()))
        );
    }

    #[test]
    fn errors() {
        assert!(parse_mappings("").is_err());
        assert!(parse_mappings("target x y z .").is_err()); // before mappingId
        assert!(parse_mappings("mappingId m\nsource s\n").is_err()); // no target
        assert!(parse_mappings("mappingId m\ntarget unknown:x a osm:park .\nsource s").is_err());
        assert!(parse_mappings("mappingId m\ntarget <http://e/{unclosed a b .\nsource s").is_err());
    }
}
