//! The mapping processor.
//!
//! "The performance of GeoTriples has been studied experimentally in \[22\]
//! ... It has been shown that GeoTriples is very efficient especially when
//! its mapping processor is implemented using Apache Hadoop." The parallel
//! processor here shards rows across a thread pool (the laptop-scale
//! Hadoop substitute); bench B5 reproduces the scaling experiment.

use crate::mapping::Mapping;
use crate::source::TabularSource;
use applab_rdf::{Graph, Triple};

/// Apply one mapping to a source sequentially, producing a graph.
pub fn process(mapping: &Mapping, source: &TabularSource) -> Graph {
    let mut g = Graph::new();
    for row in &source.rows {
        for template in &mapping.target {
            if let Some(triple) = template.expand(row) {
                g.insert(triple);
            }
        }
    }
    g
}

/// Apply several mappings to their sources sequentially.
pub fn process_all(jobs: &[(&Mapping, &TabularSource)]) -> Graph {
    let mut g = Graph::new();
    for (mapping, source) in jobs {
        g.extend_from(&process(mapping, source));
    }
    g
}

/// Apply one mapping with `workers` threads. Rows are sharded into
/// contiguous chunks; each worker expands its chunk independently and the
/// shards are merged (deduplicating) at the end — the same
/// map-then-reduce structure as the Hadoop processor.
pub fn process_parallel(mapping: &Mapping, source: &TabularSource, workers: usize) -> Graph {
    let workers = workers.max(1);
    if workers == 1 || source.rows.len() < 2 {
        return process(mapping, source);
    }
    let chunk_size = source.rows.len().div_ceil(workers);
    let chunks: Vec<&[crate::source::Row]> = source.rows.chunks(chunk_size).collect();
    let shards: Vec<Vec<Triple>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut triples = Vec::with_capacity(chunk.len() * mapping.target.len());
                    for row in chunk {
                        for template in &mapping.target {
                            if let Some(triple) = template.expand(row) {
                                triples.push(triple);
                            }
                        }
                    }
                    triples
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut g = Graph::new();
    for shard in shards {
        for t in shard {
            g.insert(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::parse_mappings;
    use crate::source::{read_csv, Row, TabularSource, Value};

    const MAPPING: &str = r#"
mappingId parks
target osm:poi_{id} a osm:PointOfInterest ;
       osm:hasName {name}^^xsd:string ;
       geo:hasGeometry osm:geom_{id} .
       osm:geom_{id} geo:asWKT {geom}^^geo:wktLiteral .
source parks
"#;

    fn source(n: usize) -> TabularSource {
        let rows = (0..n)
            .map(|i| {
                let mut r = Row::new();
                r.insert("id".into(), Value::Number(i as f64));
                r.insert("name".into(), Value::Text(format!("park {i}")));
                r.insert(
                    "geom".into(),
                    Value::Geometry(applab_geo::Geometry::point(i as f64, i as f64)),
                );
                r
            })
            .collect();
        TabularSource {
            name: "parks".into(),
            rows,
        }
    }

    #[test]
    fn sequential_processing() {
        let mapping = &parse_mappings(MAPPING).unwrap()[0];
        let g = process(mapping, &source(10));
        assert_eq!(g.len(), 40);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mapping = &parse_mappings(MAPPING).unwrap()[0];
        let src = source(137);
        let seq = process(mapping, &src);
        for workers in [1, 2, 4, 8] {
            let par = process_parallel(mapping, &src, workers);
            assert_eq!(par.len(), seq.len(), "workers={workers}");
            for t in seq.iter() {
                assert!(par.contains(t), "workers={workers}: missing {t}");
            }
        }
    }

    #[test]
    fn csv_to_rdf_end_to_end() {
        let csv = "id,name,geom\n1,Bois de Boulogne,\"POLYGON ((2.21 48.85, 2.27 48.85, 2.27 48.88, 2.21 48.85))\"\n2,Parc Monceau,POINT (2.30 48.87)\n";
        let src = read_csv("parks", csv).unwrap();
        let mapping = &parse_mappings(MAPPING).unwrap()[0];
        let g = process(mapping, &src);
        assert_eq!(g.len(), 8);
        // Round-trip through N-Triples.
        let nt = applab_rdf::ntriples::write_ntriples(&g);
        let back = applab_rdf::ntriples::parse_ntriples(&nt).unwrap();
        assert_eq!(back.len(), g.len());
    }

    #[test]
    fn process_all_merges() {
        let mapping = &parse_mappings(MAPPING).unwrap()[0];
        let a = source(3);
        let g = process_all(&[(mapping, &a), (mapping, &a)]);
        // Same rows twice → deduplicated.
        assert_eq!(g.len(), 12);
    }

    #[test]
    fn empty_source() {
        let mapping = &parse_mappings(MAPPING).unwrap()[0];
        assert!(process(mapping, &source(0)).is_empty());
        assert!(process_parallel(mapping, &source(0), 4).is_empty());
    }
}
