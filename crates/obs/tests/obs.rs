//! Integration tests for `applab-obs`: histogram bucket semantics,
//! concurrency, and a golden test for the Prometheus text format.

use applab_obs::{build_trees, metrics, profile, Collector, Histogram, Registry};
use std::sync::Arc;

#[test]
fn histogram_bucket_boundaries_including_overflow() {
    let h = Histogram::new(&[1.0, 5.0, 10.0]);
    // Exactly on a bound goes into that bucket (le semantics).
    h.observe(1.0);
    // Strictly above a bound goes into the next.
    h.observe(1.0000001);
    h.observe(5.0);
    h.observe(7.5);
    h.observe(10.0);
    // Above the last bound: the overflow (+Inf) bucket.
    h.observe(10.0000001);
    h.observe(1e12);
    // Below the first bound: the first bucket.
    h.observe(0.0);
    h.observe(-3.0);
    assert_eq!(h.bucket_counts(), vec![3, 2, 2, 2]);
    assert_eq!(h.count(), 9);
    let expected_sum = 1.0 + 1.0000001 + 5.0 + 7.5 + 10.0 + 10.0000001 + 1e12 + 0.0 - 3.0;
    assert!((h.sum() - expected_sum).abs() < 1e-6);
}

#[test]
fn concurrent_counter_increments_from_scoped_threads() {
    let r = Registry::new();
    let c = r.counter("applab_obs_concurrency_total");
    let h = r.histogram("applab_obs_concurrency_seconds", &[0.5, 1.5]);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let c = c.clone();
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..10_000u64 {
                    c.inc();
                    if i % 100 == 0 {
                        h.observe(1.0);
                    }
                }
            });
        }
    });
    assert_eq!(c.get(), 80_000);
    assert_eq!(h.count(), 800);
    assert_eq!(h.bucket_counts(), vec![0, 800, 0]);
    assert!((h.sum() - 800.0).abs() < 1e-9, "CAS sum loop lost updates");
}

#[test]
fn prometheus_text_format_golden() {
    let r = Registry::new();
    r.counter("applab_demo_requests_total").add(3);
    r.counter_with("applab_demo_requests_total", &[("instance", "1")])
        .add(2);
    r.gauge("applab_demo_dict_terms").set(42);
    let h = r.histogram("applab_demo_latency_seconds", &[0.01, 0.1, 1.0]);
    // Powers of two: the sum is exact in binary, so the golden text is
    // stable.
    h.observe(0.0078125);
    h.observe(0.0625);
    h.observe(0.5);
    h.observe(5.0);
    let expected = "\
# TYPE applab_demo_dict_terms gauge
applab_demo_dict_terms 42
# TYPE applab_demo_latency_seconds histogram
applab_demo_latency_seconds_bucket{le=\"0.01\"} 1
applab_demo_latency_seconds_bucket{le=\"0.1\"} 2
applab_demo_latency_seconds_bucket{le=\"1\"} 3
applab_demo_latency_seconds_bucket{le=\"+Inf\"} 4
applab_demo_latency_seconds_sum 5.5703125
applab_demo_latency_seconds_count 4
# TYPE applab_demo_requests_total counter
applab_demo_requests_total 3
applab_demo_requests_total{instance=\"1\"} 2
";
    assert_eq!(r.to_prometheus(), expected);
}

#[test]
fn json_snapshot_shape() {
    let r = Registry::new();
    r.counter("applab_j_total").add(7);
    r.gauge("applab_j_size").set(-3);
    r.histogram("applab_j_seconds", &[1.0]).observe(0.5);
    let json = r.to_json();
    assert!(json.contains("\"applab_j_total\": 7"), "{json}");
    assert!(json.contains("\"applab_j_size\": -3"), "{json}");
    assert!(
        json.contains("\"applab_j_seconds\": {\"bounds\": [1], \"counts\": [1, 0], \"sum\": 0.5, \"count\": 1}"),
        "{json}"
    );
}

#[test]
fn global_registry_macros_share_handles() {
    applab_obs::counter!("applab_obs_macro_total").inc();
    applab_obs::counter!("applab_obs_macro_total").inc();
    assert!(metrics::global().counter("applab_obs_macro_total").get() >= 2);
    applab_obs::gauge!("applab_obs_macro_gauge").set(5);
    assert_eq!(metrics::global().gauge("applab_obs_macro_gauge").get(), 5);
    applab_obs::histogram!("applab_obs_macro_hist", &[1.0, 2.0]).observe(1.5);
    assert!(
        metrics::global()
            .histogram("applab_obs_macro_hist", &[1.0, 2.0])
            .count()
            >= 1
    );
}

#[test]
fn profile_collects_cross_thread_chunk_spans() {
    let ((), tree) = profile("parallel_root", |root| {
        let ctx = root.context();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut c = applab_obs::child_of(Some(ctx), "chunk");
                    c.record("rows", 25u64);
                });
            }
        });
    });
    let mut chunks = Vec::new();
    tree.find_all("chunk", &mut chunks);
    assert_eq!(chunks.len(), 4);
    for c in chunks {
        assert_eq!(c.record.parent_id, Some(tree.record.span_id));
        assert_eq!(c.field("rows").and_then(|v| v.as_u64()), Some(25));
    }
}

#[test]
fn build_trees_filters_foreign_traces() {
    let collector = Arc::new(Collector::new());
    let token = applab_obs::subscribe(collector.clone());
    let trace_a = {
        let _a = applab_obs::child_of(None, "a");
        applab_obs::current().unwrap().trace_id
    };
    {
        let _b = applab_obs::child_of(None, "b");
    }
    applab_obs::unsubscribe(token);
    let records = collector.take();
    let trees = build_trees(&records, trace_a);
    assert_eq!(trees.len(), 1);
    assert_eq!(trees[0].name(), "a");
}
