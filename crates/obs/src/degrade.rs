//! Degraded-result propagation.
//!
//! When the remote data plane fails but a stale cache entry is still
//! inside its grace window, the stack serves the stale copy instead of
//! erroring — a *degraded* answer. The layers that do this (`SubsetCache`
//! in `applab-sdl`, the virtual tables in `applab-obda`) sit far below the
//! service facade that must report the flag, and threading a boolean
//! through every return type would contaminate `QueryResults` (whose
//! byte-identical `PartialEq` is the backbone of the equivalence tests).
//!
//! Instead, stale serves [`mark`] a thread-local counter; the service
//! opens a [`Scope`] around each query and asks it afterwards whether
//! anything on this thread degraded in between. This is sound because
//! all remote fetches happen on the evaluating thread (scans run
//! sequentially; only the in-memory hash-join probe is parallel).

use std::cell::Cell;

thread_local! {
    static MARKS: Cell<u64> = const { Cell::new(0) };
}

/// Record that the current thread served a stale (degraded) result for
/// `source`. Also counts `applab_degraded_serves_total{source=...}` in
/// the global registry.
pub fn mark(source: &str) {
    MARKS.with(|m| m.set(m.get() + 1));
    crate::global()
        .counter_with("applab_degraded_serves_total", &[("source", source)])
        .inc();
}

/// Total degradation marks recorded by this thread so far.
pub fn marks() -> u64 {
    MARKS.with(|m| m.get())
}

/// Snapshot of the thread's mark counter; compares against later state to
/// tell whether anything degraded in between.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    start: u64,
}

impl Scope {
    /// Begin observing the current thread for degradation marks.
    pub fn begin() -> Self {
        Scope { start: marks() }
    }

    /// True when the current thread recorded a mark since [`Scope::begin`].
    pub fn degraded(&self) -> bool {
        marks() > self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_sees_marks_in_between() {
        let scope = Scope::begin();
        assert!(!scope.degraded());
        mark("test-source");
        assert!(scope.degraded());
        // A fresh scope starts clean again.
        assert!(!Scope::begin().degraded());
    }

    #[test]
    fn marks_are_thread_local() {
        let scope = Scope::begin();
        std::thread::scope(|s| {
            s.spawn(|| mark("other-thread")).join().expect("no panic");
        });
        assert!(!scope.degraded());
    }
}
