//! Lightweight structured tracing: named spans with wall-clock timing,
//! `key=value` fields and parent/child nesting.
//!
//! A [`Span`] is opened with [`span`] (parent taken from a thread-local
//! stack) or [`child_of`] (explicit parent — how the scoped probe threads
//! of `applab-sparql::eval` keep their chunk spans nested under the join
//! span that spawned them). Dropping the span records its duration and
//! sends the finished [`SpanRecord`] to every registered [`Subscriber`],
//! plus the default ring-buffer collector behind [`recent`]. With no
//! subscriber registered, spans are disabled no-ops (one atomic load), so
//! uninstrumented runs pay essentially nothing.
//!
//! Spans carry a `trace_id` inherited from their root, so concurrent
//! queries interleave in the subscribers but are separable afterwards —
//! that is what [`crate::report::profile`] builds EXPLAIN trees from.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// A span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Uint(u64),
    Int(i64),
    Float(f64),
    Text(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Uint(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(v) => Some(*v),
            Value::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Uint(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Uint(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Uint(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Uint(v as u64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// A finished span, as delivered to subscribers.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: Option<u64>,
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch.
    pub start_ns: u64,
    pub duration_ns: u64,
    pub fields: Vec<(&'static str, Value)>,
}

impl SpanRecord {
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// The identity of a live span: enough to parent children across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub trace_id: u64,
    pub span_id: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The stack of live spans on this thread.
    static STACK: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost live span on this thread, if any.
pub fn current() -> Option<SpanContext> {
    STACK.with(|s| s.borrow().last().copied())
}

/// A live span. Dropping it records the duration and publishes the record.
///
/// When no subscriber is registered the span is *disabled*: no clock
/// reads, no id allocation, no thread-local push, and `record` is a
/// no-op — instrumented code pays one atomic load per span. The
/// EXPLAIN/profile path and any debugging subscriber re-enable full
/// recording for their duration.
pub struct Span {
    ctx: SpanContext,
    parent_id: Option<u64>,
    name: &'static str,
    /// `None` marks a disabled span (opened with no subscribers).
    start: Option<Instant>,
    start_ns: u64,
    fields: Vec<(&'static str, Value)>,
}

const DISABLED_CTX: SpanContext = SpanContext {
    trace_id: 0,
    span_id: 0,
};

fn disabled(name: &'static str) -> Span {
    Span {
        ctx: DISABLED_CTX,
        parent_id: None,
        name,
        start: None,
        start_ns: 0,
        fields: Vec::new(),
    }
}

fn tracing_enabled() -> bool {
    SUBSCRIBER_COUNT.load(Ordering::Acquire) > 0
}

/// Open a span as a child of the current thread-local span (or as a new
/// trace root when there is none).
pub fn span(name: &'static str) -> Span {
    if !tracing_enabled() {
        return disabled(name);
    }
    child_of(current(), name)
}

/// Open a span under an explicit parent context — the cross-thread entry
/// point. `None` starts a fresh trace. The span is also pushed on *this*
/// thread's stack, so nested [`span`] calls parent correctly.
pub fn child_of(parent: Option<SpanContext>, name: &'static str) -> Span {
    if !tracing_enabled() {
        return disabled(name);
    }
    let start = Instant::now();
    let ctx = SpanContext {
        trace_id: parent.map_or_else(next_id, |p| p.trace_id),
        span_id: next_id(),
    };
    STACK.with(|s| s.borrow_mut().push(ctx));
    Span {
        ctx,
        parent_id: parent.map(|p| p.span_id),
        name,
        start: Some(start),
        start_ns: start.duration_since(epoch()).as_nanos() as u64,
        fields: Vec::new(),
    }
}

impl Span {
    /// Whether this span actually records (a subscriber was registered
    /// when it opened). Callers computing an *expensive* field value —
    /// anything that allocates or re-derives state — should skip the
    /// computation entirely on a disabled span instead of relying on
    /// [`Span::record`]'s no-op.
    pub fn enabled(&self) -> bool {
        self.start.is_some()
    }

    /// Attach (or overwrite) a `key=value` field.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.start.is_none() {
            return;
        }
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key, value));
        }
    }

    /// Record `key` as a per-second rate: `count` items divided by the time
    /// elapsed since the span opened, rounded to a whole number. No-op on
    /// disabled spans (tracing off).
    pub fn record_rate(&mut self, key: &'static str, count: u64) {
        let Some(start) = self.start else {
            return;
        };
        let secs = start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 {
            (count as f64 / secs) as u64
        } else {
            0
        };
        self.record(key, rate);
    }

    /// The context to hand to worker threads ([`child_of`]).
    pub fn context(&self) -> SpanContext {
        self.ctx
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Normally the top of the stack; be defensive about guards
            // dropped out of order.
            if let Some(pos) = stack.iter().rposition(|c| c.span_id == self.ctx.span_id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.parent_id,
            name: self.name,
            start_ns: self.start_ns,
            duration_ns: start.elapsed().as_nanos() as u64,
            fields: std::mem::take(&mut self.fields),
        };
        dispatch(record);
    }
}

/// Receives finished spans.
pub trait Subscriber: Send + Sync {
    fn on_span(&self, record: &SpanRecord);
}

type SubscriberList = Vec<(u64, Arc<dyn Subscriber>)>;

fn subscribers() -> &'static RwLock<SubscriberList> {
    static SUBSCRIBERS: OnceLock<RwLock<SubscriberList>> = OnceLock::new();
    SUBSCRIBERS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Lock-free fast-path check so uninstrumented runs (no collector, no
/// stderr writer) skip the subscriber lock entirely on every span drop.
static SUBSCRIBER_COUNT: AtomicU64 = AtomicU64::new(0);

/// Register a subscriber; returns a token for [`unsubscribe`].
pub fn subscribe(subscriber: Arc<dyn Subscriber>) -> u64 {
    let token = next_id();
    let mut subs = subscribers().write().expect("subscriber lock");
    subs.push((token, subscriber));
    SUBSCRIBER_COUNT.store(subs.len() as u64, Ordering::Release);
    token
}

pub fn unsubscribe(token: u64) {
    let mut subs = subscribers().write().expect("subscriber lock");
    subs.retain(|(t, _)| *t != token);
    SUBSCRIBER_COUNT.store(subs.len() as u64, Ordering::Release);
}

fn dispatch(record: SpanRecord) {
    if SUBSCRIBER_COUNT.load(Ordering::Acquire) > 0 {
        for (_, s) in subscribers().read().expect("subscriber lock").iter() {
            s.on_span(&record);
        }
    }
    // The record is moved (not cloned) into the always-on ring.
    default_ring().push(record);
}

/// The default subscriber: a bounded ring buffer of the most recent spans.
pub struct RingBuffer {
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
}

impl RingBuffer {
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Oldest-first copy of the buffered spans.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .expect("ring lock")
            .iter()
            .cloned()
            .collect()
    }

    pub fn clear(&self) {
        self.buf.lock().expect("ring lock").clear();
    }

    fn push(&self, record: SpanRecord) {
        let mut buf = self.buf.lock().expect("ring lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(record);
    }
}

impl Subscriber for RingBuffer {
    fn on_span(&self, record: &SpanRecord) {
        self.push(record.clone());
    }
}

fn default_ring() -> &'static RingBuffer {
    static RING: OnceLock<RingBuffer> = OnceLock::new();
    RING.get_or_init(|| RingBuffer::new(4096))
}

/// The most recent spans from the default ring buffer (populated while
/// at least one subscriber is registered — see [`Span`]).
pub fn recent() -> Vec<SpanRecord> {
    default_ring().records()
}

/// An optional subscriber that writes one line per span to stderr
/// (`name dur=1.234ms parent=… k=v …`). Subscribe it for ad-hoc
/// debugging: `obs::subscribe(Arc::new(obs::StderrWriter))`.
pub struct StderrWriter;

impl Subscriber for StderrWriter {
    fn on_span(&self, record: &SpanRecord) {
        let mut line = format!(
            "[obs] {} dur={:.3}ms trace={}",
            record.name,
            record.duration_ns as f64 / 1e6,
            record.trace_id
        );
        for (k, v) in &record.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push('\n');
        // Best-effort: observability must never fail the observed code.
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
}

/// A subscriber that accumulates every span it sees (the EXPLAIN
/// collector).
#[derive(Default)]
pub struct Collector {
    records: Mutex<Vec<SpanRecord>>,
}

impl Collector {
    pub fn new() -> Self {
        Collector::default()
    }

    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.records.lock().expect("collector lock"))
    }
}

impl Subscriber for Collector {
    fn on_span(&self, record: &SpanRecord) {
        self.records
            .lock()
            .expect("collector lock")
            .push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_via_thread_local_stack() {
        let collector = Arc::new(Collector::new());
        let token = subscribe(collector.clone());
        {
            let mut outer = span("outer");
            outer.record("k", 1u64);
            {
                let _inner = span("inner");
            }
        }
        unsubscribe(token);
        let records = collector.take();
        // Our two spans, in close order (inner first), same trace.
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(inner.parent_id, Some(outer.span_id));
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_eq!(outer.parent_id, None);
        assert_eq!(outer.field("k"), Some(&Value::Uint(1)));
    }

    #[test]
    fn cross_thread_parenting() {
        let collector = Arc::new(Collector::new());
        let token = subscribe(collector.clone());
        {
            let parent = span("parent");
            let ctx = parent.context();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _child = child_of(Some(ctx), "worker");
                });
            });
        }
        unsubscribe(token);
        let records = collector.take();
        let parent = records.iter().find(|r| r.name == "parent").unwrap();
        let worker = records.iter().find(|r| r.name == "worker").unwrap();
        assert_eq!(worker.parent_id, Some(parent.span_id));
        assert_eq!(worker.trace_id, parent.trace_id);
    }

    #[test]
    fn record_overwrites_field() {
        let collector = Arc::new(Collector::new());
        let token = subscribe(collector.clone());
        {
            let mut s = span("overwrite");
            s.record("rows", 1u64);
            s.record("rows", 2u64);
        }
        unsubscribe(token);
        let records = collector.take();
        let s = records.iter().find(|r| r.name == "overwrite").unwrap();
        assert_eq!(s.fields.len(), 1);
        assert_eq!(s.field("rows"), Some(&Value::Uint(2)));
    }

    #[test]
    fn ring_buffer_caps() {
        let ring = RingBuffer::new(2);
        for i in 0..5u64 {
            ring.on_span(&SpanRecord {
                trace_id: 1,
                span_id: i,
                parent_id: None,
                name: "x",
                start_ns: 0,
                duration_ns: 0,
                fields: Vec::new(),
            });
        }
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].span_id, 3);
        assert_eq!(records[1].span_id, 4);
    }
}
