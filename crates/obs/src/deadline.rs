//! Cross-crate cooperative deadline propagation.
//!
//! The SPARQL evaluator owns the per-query `Budget`, but the crates it
//! calls into (notably `applab-dap`'s retry loop) cannot depend on
//! `applab-sparql` without a cycle. This module is the bridge: the
//! evaluator installs the query deadline in a thread-local scope before
//! running operators, and anything further down the same call stack can
//! ask [`remaining`] how much time the query has left — e.g. to decide
//! whether a retry backoff still fits inside the budget.
//!
//! Scopes nest: an inner scope can only *tighten* the deadline (the
//! earlier instant wins), so a sub-operation can never out-live the query
//! that spawned it. Dropping the guard restores the previous deadline,
//! which keeps recursive evaluation (sub-queries, parallel probe workers
//! that re-enter on their own thread) well-behaved.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// RAII guard for a deadline scope; restores the previous deadline on drop.
#[derive(Debug)]
pub struct DeadlineScope {
    prev: Option<Instant>,
    // Thread-local state: the guard must be dropped on the thread that
    // created it.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Install `deadline` for the current thread until the guard drops.
///
/// `None` leaves any outer deadline in force; `Some(at)` tightens the
/// scope to `min(outer, at)`.
pub fn enter(deadline: Option<Instant>) -> DeadlineScope {
    let prev = DEADLINE.with(|d| d.get());
    let effective = match (prev, deadline) {
        (Some(outer), Some(inner)) => Some(outer.min(inner)),
        (outer, inner) => inner.or(outer),
    };
    DEADLINE.with(|d| d.set(effective));
    DeadlineScope {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for DeadlineScope {
    fn drop(&mut self) {
        let prev = self.prev;
        DEADLINE.with(|d| d.set(prev));
    }
}

/// The deadline currently in force on this thread, if any.
pub fn current() -> Option<Instant> {
    DEADLINE.with(|d| d.get())
}

/// Time left before the current thread's deadline; `None` when no
/// deadline is in force, `Some(ZERO)` when it already passed.
pub fn remaining() -> Option<Duration> {
    current().map(|at| at.saturating_duration_since(Instant::now()))
}

/// True when a deadline is in force and has already passed.
pub fn expired() -> bool {
    matches!(remaining(), Some(Duration::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_by_default() {
        assert_eq!(current(), None);
        assert_eq!(remaining(), None);
        assert!(!expired());
    }

    #[test]
    fn scope_installs_and_restores() {
        let at = Instant::now() + Duration::from_secs(60);
        {
            let _g = enter(Some(at));
            assert_eq!(current(), Some(at));
            assert!(remaining().expect("deadline set") > Duration::from_secs(50));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn nested_scope_tightens_only() {
        let outer = Instant::now() + Duration::from_secs(10);
        let looser = outer + Duration::from_secs(100);
        let tighter = Instant::now() + Duration::from_secs(1);
        let _g = enter(Some(outer));
        {
            // A looser inner deadline cannot extend the outer one.
            let _g2 = enter(Some(looser));
            assert_eq!(current(), Some(outer));
        }
        {
            let _g2 = enter(Some(tighter));
            assert_eq!(current(), Some(tighter));
        }
        {
            // `None` inherits the outer deadline.
            let _g2 = enter(None);
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), Some(outer));
    }

    #[test]
    fn expired_deadline_reports_zero() {
        let _g = enter(Some(Instant::now() - Duration::from_secs(1)));
        assert_eq!(remaining(), Some(Duration::ZERO));
        assert!(expired());
    }
}
