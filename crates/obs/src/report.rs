//! Span trees and the EXPLAIN/profile report.
//!
//! [`profile`] runs a closure under a fresh root span with a dedicated
//! collector and returns the reconstructed [`SpanNode`] tree — per-stage
//! wall-clock timings plus whatever cardinality fields the stages
//! recorded. The workflow facades build their user-facing `EXPLAIN`
//! output from this.

use crate::trace::{self, Collector, SpanRecord, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One node of a finished span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    pub record: SpanRecord,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    pub fn name(&self) -> &'static str {
        self.record.name
    }

    pub fn duration_ns(&self) -> u64 {
        self.record.duration_ns
    }

    /// A field recorded on this span.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.record.field(key)
    }

    /// Depth-first search for the first descendant (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.record.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// All descendants (including self) named `name`, in start order.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a SpanNode>) {
        if self.record.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.find_all(name, out);
        }
    }

    /// Total number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }

    /// Render the tree as an indented per-stage report:
    ///
    /// ```text
    /// query                          1.234 ms  backend=store rows=131
    /// └─ bgp                         1.100 ms  patterns=7
    ///    ├─ scan                     0.200 ms  pattern=0 rows=784
    ///    └─ join                     0.350 ms  probe=784 build=131 out=131
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", true, true);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        let (branch, child_prefix) = if root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let label = format!("{branch}{}", self.record.name);
        let mut line = format!(
            "{label:<42} {:>9.3} ms",
            self.record.duration_ns as f64 / 1e6
        );
        for (k, v) in &self.record.fields {
            line.push_str(&format!("  {k}={v}"));
        }
        out.push_str(&line);
        out.push('\n');
        for (i, c) in self.children.iter().enumerate() {
            c.render_into(out, &child_prefix, i + 1 == self.children.len(), false);
        }
    }

    /// JSON rendering of the tree (hand-rolled, like the metrics snapshot).
    pub fn to_json(&self) -> String {
        let mut fields = String::new();
        for (i, (k, v)) in self.record.fields.iter().enumerate() {
            if i > 0 {
                fields.push_str(", ");
            }
            let rendered = match v {
                Value::Text(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
                other => other.to_string(),
            };
            fields.push_str(&format!("\"{k}\": {rendered}"));
        }
        let children: Vec<String> = self.children.iter().map(SpanNode::to_json).collect();
        format!(
            "{{\"name\": \"{}\", \"duration_ns\": {}, \"fields\": {{{fields}}}, \"children\": [{}]}}",
            self.record.name,
            self.record.duration_ns,
            children.join(", ")
        )
    }
}

/// Reassemble the records of one trace into its span trees (roots in
/// start order; normally a single root). Records whose parent is missing
/// from the batch are treated as roots.
pub fn build_trees(records: &[SpanRecord], trace_id: u64) -> Vec<SpanNode> {
    let mut nodes: Vec<SpanNode> = records
        .iter()
        .filter(|r| r.trace_id == trace_id)
        .map(|r| SpanNode {
            record: r.clone(),
            children: Vec::new(),
        })
        .collect();
    // Children first: spans finish (and are recorded) before their
    // parents, so attaching in reverse finish order lets each child find
    // its parent still unclaimed.
    let index: HashMap<u64, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.record.span_id, i))
        .collect();
    let mut roots: Vec<SpanNode> = Vec::new();
    // Attach bottom-up by taking nodes out from the end (children were
    // recorded before parents).
    let mut taken: Vec<Option<SpanNode>> = nodes.drain(..).map(Some).collect();
    for i in 0..taken.len() {
        let node = taken[i].take().expect("visited once");
        let parent_slot = node
            .record
            .parent_id
            .and_then(|p| index.get(&p).copied())
            .filter(|&pi| pi != i);
        match parent_slot {
            Some(pi) => match taken[pi].as_mut() {
                Some(parent) => parent.children.push(node),
                None => roots.push(node), // parent already emitted (clock skew)
            },
            None => roots.push(node),
        }
    }
    for root in &mut roots {
        sort_by_start(root);
    }
    roots.sort_by_key(|r| r.record.start_ns);
    roots
}

fn sort_by_start(node: &mut SpanNode) {
    node.children.sort_by_key(|c| c.record.start_ns);
    for c in &mut node.children {
        sort_by_start(c);
    }
}

/// Run `f` under a fresh root span named `root_name`, collecting every
/// span of the new trace, and return the result plus the profile tree.
///
/// The closure receives the root [`trace::Span`] so it can record
/// top-level fields (backend, row counts). Spans opened by the observed
/// code — including spans from worker threads parented via
/// [`trace::child_of`] — land in the same tree.
pub fn profile<T>(root_name: &'static str, f: impl FnOnce(&mut trace::Span) -> T) -> (T, SpanNode) {
    let collector = Arc::new(Collector::new());
    let token = trace::subscribe(collector.clone());
    let mut root = trace::child_of(None, root_name);
    let trace_id = root.context().trace_id;
    let out = f(&mut root);
    drop(root);
    trace::unsubscribe(token);
    let records = collector.take();
    let mut trees = build_trees(&records, trace_id);
    debug_assert!(!trees.is_empty(), "root span must have been collected");
    let tree = if trees.len() == 1 {
        trees.remove(0)
    } else {
        // Extremely defensive: if the root got evicted somehow, wrap the
        // fragments under a synthetic node.
        SpanNode {
            record: SpanRecord {
                trace_id,
                span_id: 0,
                parent_id: None,
                name: root_name,
                start_ns: trees.first().map_or(0, |t| t.record.start_ns),
                duration_ns: trees.iter().map(|t| t.record.duration_ns).sum(),
                fields: Vec::new(),
            },
            children: trees,
        }
    };
    (out, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::span;

    #[test]
    fn profile_builds_nested_tree() {
        let ((), tree) = profile("root", |root| {
            root.record("backend", "test");
            {
                let mut a = span("stage_a");
                a.record("rows", 10u64);
                let _inner = span("stage_a_inner");
            }
            let _b = span("stage_b");
        });
        assert_eq!(tree.name(), "root");
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name(), "stage_a");
        assert_eq!(tree.children[0].children[0].name(), "stage_a_inner");
        assert_eq!(tree.children[1].name(), "stage_b");
        assert_eq!(tree.size(), 4);
        assert_eq!(
            tree.field("backend").map(ToString::to_string),
            Some("test".into())
        );
        let rendered = tree.render();
        assert!(rendered.contains("stage_a"), "{rendered}");
        assert!(rendered.contains("rows=10"), "{rendered}");
        assert!(tree.to_json().contains("\"name\": \"stage_a_inner\""));
    }

    #[test]
    fn profile_isolates_concurrent_traces() {
        // A span on another thread with its own trace must not pollute
        // this profile.
        let (_, tree) = profile("iso", |_| {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _foreign = crate::trace::child_of(None, "foreign");
                });
            });
            let _mine = span("mine");
        });
        assert!(tree.find("mine").is_some());
        assert!(tree.find("foreign").is_none());
    }
}
