//! Per-query resource accounting.
//!
//! A query's cost is scattered across crates: the evaluator counts rows
//! and batches, the store counts scans and index pushdowns, the DAP
//! client counts round-trips and bytes, the SDL cache counts hits.
//! Threading an accumulator through every signature would contaminate
//! APIs the same way a degraded flag would ([`crate::degrade`]), so the
//! same trick is used: the service opens a [`Scope`] around each query,
//! which installs a shared [`StatsCell`] in a thread-local stack, and
//! the instrumented layers bump whatever cell is innermost (a no-op
//! costing one thread-local read when no query is being accounted).
//!
//! The parallel hash-join probe runs on scoped worker threads, which do
//! not inherit the spawning thread's locals. Exactly like span
//! parenting ([`crate::trace::child_of`]), the evaluator captures the
//! live cell with [`current`] before spawning and re-installs it on
//! each worker with [`attach`]; the cell's fields are atomics, so
//! workers accumulate into it concurrently without merging steps.
//!
//! All hooks fire at *batch* boundaries (a scan's whole column, a probe
//! chunk, a filter window), never per row — the accounting overhead
//! budget is ≤5% end-to-end (see DESIGN.md §13).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The live accumulator for one query: plain relaxed atomics so scoped
/// probe workers can share it without locks.
#[derive(Debug, Default)]
pub struct StatsCell {
    rows_scanned: AtomicU64,
    scans: AtomicU64,
    batches: AtomicU64,
    joins: AtomicU64,
    join_build_rows: AtomicU64,
    join_probe_rows: AtomicU64,
    probe_chunks: AtomicU64,
    filter_rows_in: AtomicU64,
    filter_rows_out: AtomicU64,
    dap_round_trips: AtomicU64,
    dap_bytes: AtomicU64,
    dap_retries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    source_queries: AtomicU64,
    pushdowns: AtomicU64,
    pruned_rows: AtomicU64,
    peak_batch_bytes: AtomicU64,
}

impl StatsCell {
    fn snapshot(&self) -> QueryStats {
        QueryStats {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            joins: self.joins.load(Ordering::Relaxed),
            join_build_rows: self.join_build_rows.load(Ordering::Relaxed),
            join_probe_rows: self.join_probe_rows.load(Ordering::Relaxed),
            probe_chunks: self.probe_chunks.load(Ordering::Relaxed),
            filter_rows_in: self.filter_rows_in.load(Ordering::Relaxed),
            filter_rows_out: self.filter_rows_out.load(Ordering::Relaxed),
            dap_round_trips: self.dap_round_trips.load(Ordering::Relaxed),
            dap_bytes: self.dap_bytes.load(Ordering::Relaxed),
            dap_retries: self.dap_retries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            source_queries: self.source_queries.load(Ordering::Relaxed),
            pushdowns: self.pushdowns.load(Ordering::Relaxed),
            pruned_rows: self.pruned_rows.load(Ordering::Relaxed),
            peak_batch_bytes: self.peak_batch_bytes.load(Ordering::Relaxed),
            queue_wait_ns: 0,
            degraded: false,
        }
    }
}

/// A finished snapshot of one query's resource accounting. Every field
/// is a plain value; `queue_wait_ns` and `degraded` are filled in by the
/// service (they are known outside the evaluation scope).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Rows produced by data-source scans (store id columns, OBDA source
    /// query results). The "how much data did this query touch" number.
    pub rows_scanned: u64,
    /// Data-source scans executed.
    pub scans: u64,
    /// Batch windows moved through the vectorized pipeline.
    pub batches: u64,
    /// Hash joins executed.
    pub joins: u64,
    /// Total rows on the build sides of all joins.
    pub join_build_rows: u64,
    /// Total rows on the probe sides of all joins.
    pub join_probe_rows: u64,
    /// Probe chunks processed (sequential: one per join; parallel: one
    /// per worker chunk).
    pub probe_chunks: u64,
    /// Rows entering FILTER evaluation.
    pub filter_rows_in: u64,
    /// Rows surviving FILTER evaluation.
    pub filter_rows_out: u64,
    /// Remote DAP requests completed.
    pub dap_round_trips: u64,
    /// Payload bytes received over DAP.
    pub dap_bytes: u64,
    /// DAP attempts that were retries.
    pub dap_retries: u64,
    /// SubsetCache hits (fresh or stale-within-grace).
    pub cache_hits: u64,
    /// SubsetCache misses (fetched from upstream).
    pub cache_misses: u64,
    /// OBDA source queries executed.
    pub source_queries: u64,
    /// Scans answered through a spatial/temporal index pushdown.
    pub pushdowns: u64,
    /// Scanned rows discarded by planner build-side Bloom/min-max
    /// filters before reaching a join.
    pub pruned_rows: u64,
    /// Largest batch (approximate bytes) held at once.
    pub peak_batch_bytes: u64,
    /// Time spent waiting for an admission permit (service-filled).
    pub queue_wait_ns: u64,
    /// Whether any part of the answer was served stale (service-filled).
    pub degraded: bool,
}

impl QueryStats {
    /// `filter_rows_out / filter_rows_in`, or `None` when no FILTER ran.
    pub fn filter_selectivity(&self) -> Option<f64> {
        if self.filter_rows_in == 0 {
            None
        } else {
            Some(self.filter_rows_out as f64 / self.filter_rows_in as f64)
        }
    }

    /// The stats as a JSON object (no trailing newline), embedded in
    /// query-log records and EXPLAIN output.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(384);
        self.write_json(&mut out);
        out
    }

    /// Append the JSON object to `out`. Hand-rolled (no `format!`
    /// machinery, no intermediate allocations): this runs once per
    /// logged query on the log's writer thread, which shares the CPU
    /// with query evaluation on small hosts.
    pub(crate) fn write_json(&self, out: &mut String) {
        let fields: [(&str, u64); 19] = [
            ("{\"rows_scanned\": ", self.rows_scanned),
            (", \"scans\": ", self.scans),
            (", \"batches\": ", self.batches),
            (", \"joins\": ", self.joins),
            (", \"join_build_rows\": ", self.join_build_rows),
            (", \"join_probe_rows\": ", self.join_probe_rows),
            (", \"probe_chunks\": ", self.probe_chunks),
            (", \"filter_rows_in\": ", self.filter_rows_in),
            (", \"filter_rows_out\": ", self.filter_rows_out),
            (", \"dap_round_trips\": ", self.dap_round_trips),
            (", \"dap_bytes\": ", self.dap_bytes),
            (", \"dap_retries\": ", self.dap_retries),
            (", \"cache_hits\": ", self.cache_hits),
            (", \"cache_misses\": ", self.cache_misses),
            (", \"source_queries\": ", self.source_queries),
            (", \"pushdowns\": ", self.pushdowns),
            (", \"pruned_rows\": ", self.pruned_rows),
            (", \"peak_batch_bytes\": ", self.peak_batch_bytes),
            (", \"queue_wait_ns\": ", self.queue_wait_ns),
        ];
        for (i, (prefix, v)) in fields.iter().enumerate() {
            out.push_str(prefix);
            push_u64(out, *v);
            if i == 8 {
                out.push_str(", \"filter_selectivity\": ");
                match self.filter_selectivity() {
                    Some(s) => {
                        use std::fmt::Write;
                        let _ = write!(out, "{s:.4}");
                    }
                    None => out.push_str("null"),
                }
            }
        }
        out.push_str(", \"degraded\": ");
        out.push_str(if self.degraded { "true" } else { "false" });
        out.push('}');
    }
}

/// Append `v` in decimal without going through `format!`.
pub(crate) fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

thread_local! {
    /// Innermost-last stack of live accounting cells on this thread.
    static ACTIVE: RefCell<Vec<Arc<StatsCell>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with the innermost live cell, if any. One thread-local read
/// when no query is being accounted.
#[inline]
fn with_cell(f: impl FnOnce(&StatsCell)) {
    ACTIVE.with(|stack| {
        if let Some(cell) = stack.borrow().last() {
            f(cell);
        }
    });
}

/// The innermost live cell on this thread — capture before spawning
/// probe workers, re-install on each with [`attach`].
pub fn current() -> Option<Arc<StatsCell>> {
    ACTIVE.with(|stack| stack.borrow().last().cloned())
}

/// An accounting scope: installs a fresh cell on this thread; dropped
/// (or [`Scope::finish`]ed) it uninstalls and yields the snapshot.
#[derive(Debug)]
pub struct Scope {
    cell: Arc<StatsCell>,
}

impl Scope {
    /// Begin accounting on the current thread.
    pub fn begin() -> Self {
        let cell = Arc::new(StatsCell::default());
        ACTIVE.with(|stack| stack.borrow_mut().push(Arc::clone(&cell)));
        Scope { cell }
    }

    /// Snapshot the counts accumulated so far (the scope stays live).
    pub fn snapshot(&self) -> QueryStats {
        self.cell.snapshot()
    }

    /// End the scope and return the final snapshot.
    pub fn finish(self) -> QueryStats {
        self.cell.snapshot()
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally the top; be defensive about out-of-order drops.
            if let Some(pos) = stack.iter().rposition(|c| Arc::ptr_eq(c, &self.cell)) {
                stack.remove(pos);
            }
        });
    }
}

/// Install an existing cell on this thread (probe workers); uninstalled
/// when the guard drops.
pub fn attach(cell: Arc<StatsCell>) -> AttachGuard {
    ACTIVE.with(|stack| stack.borrow_mut().push(Arc::clone(&cell)));
    AttachGuard { cell }
}

/// RAII guard for [`attach`].
#[derive(Debug)]
pub struct AttachGuard {
    cell: Arc<StatsCell>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| Arc::ptr_eq(c, &self.cell)) {
                stack.remove(pos);
            }
        });
    }
}

// ── increment hooks (called from the instrumented crates) ──────────────

/// A data-source scan produced `rows` rows.
#[inline]
pub fn scan(rows: u64) {
    with_cell(|c| {
        c.scans.fetch_add(1, Ordering::Relaxed);
        c.rows_scanned.fetch_add(rows, Ordering::Relaxed);
    });
}

/// `n` batch windows moved through a pipeline stage.
#[inline]
pub fn batches(n: u64) {
    with_cell(|c| {
        c.batches.fetch_add(n, Ordering::Relaxed);
    });
}

/// A batch of `approx_bytes` was held at a stage boundary (maxes into
/// the peak-batch gauge).
#[inline]
pub fn peak_batch_bytes(approx_bytes: u64) {
    with_cell(|c| {
        c.peak_batch_bytes
            .fetch_max(approx_bytes, Ordering::Relaxed);
    });
}

/// A hash join ran with the given build/probe cardinalities.
#[inline]
pub fn join(build_rows: u64, probe_rows: u64) {
    with_cell(|c| {
        c.joins.fetch_add(1, Ordering::Relaxed);
        c.join_build_rows.fetch_add(build_rows, Ordering::Relaxed);
        c.join_probe_rows.fetch_add(probe_rows, Ordering::Relaxed);
    });
}

/// One probe chunk was processed (parallel probe: one per worker chunk).
#[inline]
pub fn probe_chunk() {
    with_cell(|c| {
        c.probe_chunks.fetch_add(1, Ordering::Relaxed);
    });
}

/// A FILTER window saw `rows_in` rows and passed `rows_out`.
#[inline]
pub fn filter(rows_in: u64, rows_out: u64) {
    with_cell(|c| {
        c.filter_rows_in.fetch_add(rows_in, Ordering::Relaxed);
        c.filter_rows_out.fetch_add(rows_out, Ordering::Relaxed);
    });
}

/// A remote DAP request completed, delivering `bytes` payload bytes.
#[inline]
pub fn dap_round_trip(bytes: u64) {
    with_cell(|c| {
        c.dap_round_trips.fetch_add(1, Ordering::Relaxed);
        c.dap_bytes.fetch_add(bytes, Ordering::Relaxed);
    });
}

/// A DAP attempt was a retry.
#[inline]
pub fn dap_retry() {
    with_cell(|c| {
        c.dap_retries.fetch_add(1, Ordering::Relaxed);
    });
}

/// A SubsetCache hit (fresh or stale-within-grace).
#[inline]
pub fn cache_hit() {
    with_cell(|c| {
        c.cache_hits.fetch_add(1, Ordering::Relaxed);
    });
}

/// A SubsetCache miss.
#[inline]
pub fn cache_miss() {
    with_cell(|c| {
        c.cache_misses.fetch_add(1, Ordering::Relaxed);
    });
}

/// An OBDA source query executed.
#[inline]
pub fn source_query() {
    with_cell(|c| {
        c.source_queries.fetch_add(1, Ordering::Relaxed);
    });
}

/// A scan was answered through a spatial/temporal index pushdown.
#[inline]
pub fn pushdown() {
    with_cell(|c| {
        c.pushdowns.fetch_add(1, Ordering::Relaxed);
    });
}

/// Planner build-side Bloom/min-max filtering discarded `rows` scanned
/// rows before a join.
#[inline]
pub fn pruned(rows: u64) {
    with_cell(|c| {
        c.pruned_rows.fetch_add(rows, Ordering::Relaxed);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_accumulates_and_snapshots() {
        let scope = Scope::begin();
        scan(100);
        scan(31);
        join(31, 100);
        probe_chunk();
        filter(131, 7);
        batches(2);
        peak_batch_bytes(4096);
        peak_batch_bytes(1024);
        dap_round_trip(2048);
        dap_retry();
        cache_hit();
        cache_miss();
        source_query();
        pushdown();
        pruned(42);
        let stats = scope.finish();
        assert_eq!(stats.rows_scanned, 131);
        assert_eq!(stats.scans, 2);
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.join_build_rows, 31);
        assert_eq!(stats.join_probe_rows, 100);
        assert_eq!(stats.probe_chunks, 1);
        assert_eq!(stats.filter_rows_in, 131);
        assert_eq!(stats.filter_rows_out, 7);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.peak_batch_bytes, 4096, "peak, not sum");
        assert_eq!(stats.dap_round_trips, 1);
        assert_eq!(stats.dap_bytes, 2048);
        assert_eq!(stats.dap_retries, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.source_queries, 1);
        assert_eq!(stats.pushdowns, 1);
        assert_eq!(stats.pruned_rows, 42);
        let sel = stats.filter_selectivity().expect("filter ran");
        assert!((sel - 7.0 / 131.0).abs() < 1e-9);
    }

    #[test]
    fn hooks_are_noops_without_a_scope() {
        scan(1_000_000);
        let scope = Scope::begin();
        let stats = scope.finish();
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn scopes_nest_and_inner_wins() {
        let outer = Scope::begin();
        scan(10);
        {
            let inner = Scope::begin();
            scan(5);
            assert_eq!(inner.finish().rows_scanned, 5);
        }
        scan(1);
        assert_eq!(outer.finish().rows_scanned, 11);
    }

    #[test]
    fn attach_merges_across_threads() {
        let scope = Scope::begin();
        let cell = current().expect("scope installed a cell");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let _guard = attach(cell);
                    probe_chunk();
                    scan(25);
                });
            }
        });
        let stats = scope.finish();
        assert_eq!(stats.probe_chunks, 4);
        assert_eq!(stats.rows_scanned, 100);
    }

    #[test]
    fn stats_json_has_every_field() {
        let scope = Scope::begin();
        filter(10, 5);
        let stats = scope.finish();
        let json = stats.to_json();
        assert!(json.contains("\"filter_selectivity\": 0.5000"), "{json}");
        assert!(json.contains("\"pruned_rows\": 0"), "{json}");
        assert!(json.contains("\"degraded\": false"), "{json}");
        let no_filter = QueryStats::default().to_json();
        assert!(no_filter.contains("\"filter_selectivity\": null"));
    }
}
