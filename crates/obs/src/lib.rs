//! `applab-obs` — zero-dependency observability for the App Lab stack.
//!
//! Three pieces, all hand-rolled on std (this build has no crates.io
//! access, matching the vendored stand-ins under `vendor/`):
//!
//! * **metrics** ([`metrics`]) — a thread-safe registry of counters,
//!   gauges and fixed-bucket histograms, exposable as Prometheus text
//!   exposition ([`metrics::Registry::to_prometheus`]) and as a JSON
//!   snapshot ([`metrics::Registry::to_json`]). Naming convention:
//!   `applab_<crate>_<name>` with `_total` for counters.
//! * **tracing** ([`trace`]) — named spans with wall-clock timing,
//!   `key=value` fields and parent/child nesting that works across scoped
//!   worker threads ([`trace::child_of`]); finished spans go to a
//!   pluggable set of subscribers on top of a default ring buffer
//!   ([`trace::recent`]), with an optional stderr writer
//!   ([`trace::StderrWriter`]). With no subscriber registered, spans are
//!   disabled no-ops, so instrumentation costs ~one atomic load per span
//!   in production paths.
//! * **reports** ([`report`]) — [`report::profile`] runs a closure under a
//!   fresh trace and reassembles the span tree, which is what the
//!   workflow facades return from their `EXPLAIN` APIs.
//! * **cross-crate scopes** ([`deadline`], [`degrade`]) — thread-local
//!   side channels that let the resilience layer in `applab-dap` honour
//!   the evaluator's query budget, and let stale cache serves deep in the
//!   data plane surface as a `degraded` flag on the service outcome,
//!   without dependency cycles or contaminated return types.
//! * **per-query accounting** ([`querystats`]) — a thread-local scope
//!   the service opens around each query; evaluator, store, DAP client
//!   and caches bump the innermost cell at batch boundaries, and the
//!   snapshot surfaces as `QueryOutcome::stats` and inside EXPLAIN.
//! * **query log + flight recorder** ([`querylog`]) — one JSONL record
//!   per served query (sampled, bounded, never blocking the query
//!   path) plus an unsampled in-memory ring of the last N records for
//!   postmortem dumps from the chaos/stress suites.
//!
//! Hot-path call sites use the [`counter!`]/[`gauge!`]/[`histogram!`]
//! macros, which cache the registry handle in a local static so steady
//! state is a single relaxed atomic op.
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod deadline;
pub mod degrade;
pub mod metrics;
pub mod querylog;
pub mod querystats;
pub mod report;
pub mod trace;

pub use metrics::{global, next_instance_id, Counter, Ewma, Gauge, Histogram, Registry, SloReport};
pub use querylog::{
    FlightRecorder, LogSink, QueryLog, QueryLogRecord, SamplingPolicy, VecSink, WriterSink,
};
pub use querystats::QueryStats;
pub use report::{build_trees, profile, SpanNode};
pub use trace::{
    child_of, current, recent, span, subscribe, unsubscribe, Collector, RingBuffer, Span,
    SpanContext, SpanRecord, StderrWriter, Subscriber, Value,
};

/// A `&'static Counter` from the global registry, resolved once per call
/// site: `obs::counter!("applab_store_scans_total").inc()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// A `&'static Gauge` from the global registry, resolved once per call
/// site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// A `&'static Histogram` from the global registry, resolved once per
/// call site. Bounds apply on first registration only.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().histogram($name, $bounds))
    }};
}
