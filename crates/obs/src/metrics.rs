//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Metrics are registered by name (convention: `applab_<crate>_<name>`,
//! with `_total` for counters) in a process-global [`Registry`] and are
//! updated lock-free through [`Counter`]/[`Gauge`]/[`Histogram`] handles.
//! Handles are `Arc`s into the registry, so a component can keep its own
//! handle for per-instance reads while the registry remains the single
//! source of truth for exposition. Per-instance series are distinguished
//! with labels (see [`Registry::counter_with`] and [`next_instance_id`]).
//!
//! Two exposition formats are supported: Prometheus text exposition
//! ([`Registry::to_prometheus`]) and a JSON snapshot
//! ([`Registry::to_json`]) that the `exp_*` bench harnesses dump next to
//! their `BENCH_*.json` result files.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An exponentially weighted moving average over an `f64` signal,
/// readable and updatable lock-free (the value is stored as `f64` bits
/// in an `AtomicU64`; there is no atomic f64 in std).
///
/// This is the smoothing element behind control decisions that must
/// react to a *trend*, not a single sample — the service's queue-delay
/// shedder feeds every measured admission wait through one of these and
/// sheds when the smoothed delay crosses its target. Unlike [`Counter`]
/// / [`Gauge`] / [`Histogram`] an `Ewma` is not registered in a
/// [`Registry`]: the owner keeps the handle for its decisions and
/// mirrors the value into a gauge for exposition.
#[derive(Debug, Default)]
pub struct Ewma {
    bits: AtomicU64,
}

impl Ewma {
    /// An EWMA starting at zero (the first observation dominates when
    /// `alpha` is large; callers that want seed-free startup can treat a
    /// zero reading as "no signal yet").
    pub fn new() -> Self {
        Ewma::default()
    }

    /// Fold `sample` in with weight `alpha` (`0.0..=1.0`): the stored
    /// value becomes `alpha * sample + (1 - alpha) * value`. Returns the
    /// updated average. Concurrent observers race politely through a
    /// compare-exchange loop; each sample is folded in exactly once.
    pub fn observe(&self, sample: f64, alpha: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&alpha), "alpha {alpha} out of range");
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = alpha * sample + (1.0 - alpha) * f64::from_bits(cur);
            match self.bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current smoothed value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Reset the average to zero.
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram in the Prometheus style: `bounds[i]` is the
/// inclusive upper bound of bucket `i`, and one extra overflow bucket
/// (`+Inf`) catches everything above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last one is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as `f64` bits and updated with a
    /// compare-exchange loop (no atomic f64 in std).
    sum_bits: AtomicU64,
}

impl Histogram {
    /// `bounds` must be strictly increasing (checked in debug builds).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Exponential bounds: `start, start*factor, ...` (`n` bounds).
    pub fn exponential(start: f64, factor: f64, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut v = start;
        for _ in 0..n {
            out.push(v);
            v *= factor;
        }
        out
    }

    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Upper bounds (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts,
    /// Prometheus-style: the target rank is located in its bucket and
    /// the value is linearly interpolated between the bucket's bounds
    /// (the first bucket interpolates up from 0). Observations in the
    /// overflow bucket clamp to the last finite bound — a histogram can
    /// not see above its bounds. Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the target observation, 1-based; q=0 maps to rank 1.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let counts = self.bucket_counts();
        let mut cumulative = 0u64;
        for (i, n) in counts.iter().enumerate() {
            let prev = cumulative;
            cumulative += n;
            if rank <= cumulative {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: clamp to the last finite bound
                    // (or 0 for a bound-less histogram).
                    return Some(self.bounds.last().copied().unwrap_or(0.0));
                };
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let into = (rank - prev) as f64 / *n as f64;
                return Some(lower + (upper - lower) * into);
            }
        }
        Some(self.bounds.last().copied().unwrap_or(0.0))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A thread-safe name → metric table.
#[derive(Default)]
pub struct Registry {
    // BTreeMap: exposition output is sorted and therefore stable (the
    // Prometheus golden test depends on this).
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or register a labeled counter, e.g.
    /// `counter_with("applab_sdl_cache_hits_total", &[("instance", "3")])`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = render_key(name, labels);
        if let Some(Metric::Counter(c)) = self.metrics.read().expect("registry lock").get(&key) {
            return c.clone();
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(key.clone())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {key} is already registered with a different type"),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = render_key(name, labels);
        if let Some(Metric::Gauge(g)) = self.metrics.read().expect("registry lock").get(&key) {
            return g.clone();
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(key.clone())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {key} is already registered with a different type"),
        }
    }

    /// Get or register the histogram `name`. The bounds of the first
    /// registration win; later calls ignore `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// Get or register a labeled histogram, e.g. a per-endpoint latency
    /// series. The bounds of the first registration win.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let key = render_key(name, labels);
        if let Some(Metric::Histogram(h)) = self.metrics.read().expect("registry lock").get(&key) {
            return h.clone();
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(key.clone())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {key} is already registered with a different type"),
        }
    }

    /// Zero every registered metric (handles stay valid). Benches use this
    /// to scope a snapshot to one experiment.
    pub fn reset(&self) {
        for metric in self.metrics.read().expect("registry lock").values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Prometheus text exposition format, sorted by series name.
    pub fn to_prometheus(&self) -> String {
        let metrics = self.metrics.read().expect("registry lock");
        let mut out = String::new();
        let mut last_base = String::new();
        for (key, metric) in metrics.iter() {
            let base = base_name(key);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if base != last_base {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{key} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{key} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, n) in counts.iter().enumerate() {
                        cumulative += n;
                        let le = match h.bounds().get(i) {
                            Some(b) => format_f64(*b),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!("{key}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{key}_sum {}\n", format_f64(h.sum())));
                    out.push_str(&format!("{key}_count {}\n", h.count()));
                }
            }
        }
        out
    }

    /// JSON snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}, "slo": {...}}`, sorted by series name. The
    /// `slo` section carries interpolated p50/p95/p99/max estimates
    /// (see [`Histogram::quantile`]) for every nonempty histogram.
    pub fn to_json(&self) -> String {
        let metrics = self.metrics.read().expect("registry lock");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        let mut slo = String::new();
        for (key, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    push_entry(&mut counters, key, &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    push_entry(&mut gauges, key, &g.get().to_string());
                }
                Metric::Histogram(h) => {
                    let bounds: Vec<String> = h.bounds().iter().map(|b| format_f64(*b)).collect();
                    let counts: Vec<String> =
                        h.bucket_counts().iter().map(u64::to_string).collect();
                    let value = format!(
                        "{{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
                        bounds.join(", "),
                        counts.join(", "),
                        format_f64(h.sum()),
                        h.count()
                    );
                    push_entry(&mut histograms, key, &value);
                    if let Some(entry) = SloEntry::from_histogram(key, h) {
                        let value = format!(
                            "{{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                            entry.count,
                            format_f64(entry.p50),
                            format_f64(entry.p95),
                            format_f64(entry.p99),
                            format_f64(entry.max)
                        );
                        push_entry(&mut slo, key, &value);
                    }
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{{counters}}},\n  \"gauges\": {{{gauges}}},\n  \"histograms\": {{{histograms}}},\n  \"slo\": {{{slo}}}\n}}\n"
        )
    }

    /// Quantile summaries for every nonempty histogram (optionally only
    /// those whose key starts with `prefix`), sorted by series name —
    /// the operator's SLO view.
    pub fn slo_report(&self, prefix: &str) -> SloReport {
        let metrics = self.metrics.read().expect("registry lock");
        let mut entries = Vec::new();
        for (key, metric) in metrics.iter() {
            if let Metric::Histogram(h) = metric {
                if key.starts_with(prefix) {
                    if let Some(entry) = SloEntry::from_histogram(key, h) {
                        entries.push(entry);
                    }
                }
            }
        }
        SloReport { entries }
    }
}

/// Quantile summary of one histogram series.
#[derive(Debug, Clone)]
pub struct SloEntry {
    /// The series key, labels included.
    pub series: String,
    /// Observations recorded.
    pub count: u64,
    /// Interpolated 50th percentile.
    pub p50: f64,
    /// Interpolated 95th percentile.
    pub p95: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
    /// Upper estimate (clamped to the last finite bound).
    pub max: f64,
}

impl SloEntry {
    fn from_histogram(key: &str, h: &Histogram) -> Option<SloEntry> {
        Some(SloEntry {
            series: key.to_string(),
            count: h.count(),
            p50: h.quantile(0.50)?,
            p95: h.quantile(0.95)?,
            p99: h.quantile(0.99)?,
            max: h.quantile(1.0)?,
        })
    }
}

/// A set of [`SloEntry`]s with a plain-text table rendering, emitted by
/// `examples/ops.rs` and the exp_service bench.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    /// One row per histogram series, sorted by series name.
    pub entries: Vec<SloEntry>,
}

impl SloReport {
    /// An aligned text table (seconds rendered as milliseconds).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<64} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "series", "count", "p50_ms", "p95_ms", "p99_ms", "max_ms"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<64} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                e.series,
                e.count,
                e.p50 * 1e3,
                e.p95 * 1e3,
                e.p99 * 1e3,
                e.max * 1e3
            ));
        }
        out
    }
}

fn push_entry(section: &mut String, key: &str, value: &str) {
    if !section.is_empty() {
        section.push(',');
    }
    section.push_str(&format!("\n    \"{}\": {value}", escape_json(key)));
}

/// `name{k="v",...}` with labels sorted by key; bare `name` without labels.
fn render_key(name: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}"
    );
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    // Prometheus label-value escaping: backslash first, then quote and
    // newline — a raw newline in a label value would corrupt the text
    // exposition format.
    let rendered: Vec<String> = sorted
        .iter()
        .map(|(k, v)| {
            format!(
                "{k}=\"{}\"",
                v.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect();
    format!("{name}{{{}}}", rendered.join(","))
}

fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Shortest clean rendering: integral values without trailing `.0` noise.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The process-global registry. Everything instrumented in the applab
/// crates registers here.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A process-unique id for per-instance metric labels (caches, transports).
pub fn next_instance_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("applab_test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same handle.
        assert_eq!(r.counter("applab_test_total").get(), 5);
        let g = r.gauge("applab_test_size");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn labels_are_sorted_and_distinct() {
        let r = Registry::new();
        let a = r.counter_with("applab_x_total", &[("b", "2"), ("a", "1")]);
        let b = r.counter_with("applab_x_total", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "label order must not split the series");
        let other = r.counter_with("applab_x_total", &[("a", "9")]);
        assert_eq!(other.get(), 0);
        assert!(r
            .to_prometheus()
            .contains("applab_x_total{a=\"1\",b=\"2\"} 1"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("applab_dup");
        r.gauge("applab_dup");
    }

    #[test]
    fn json_snapshot_escapes_label_quotes() {
        let r = Registry::new();
        r.counter_with("applab_j_total", &[("k", "v")]).inc();
        let json = r.to_json();
        assert!(
            json.contains("\"applab_j_total{k=\\\"v\\\"}\": 1"),
            "{json}"
        );
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None);
        h.observe(1.5);
        assert!(h.quantile(0.5).is_some());
        assert_eq!(h.quantile(1.5), None, "q outside [0,1] is rejected");
        assert_eq!(h.quantile(-0.1), None);
    }

    #[test]
    fn quantile_interpolates_within_a_single_bucket() {
        // All observations land in the (2.0, 4.0] bucket: quantiles
        // interpolate linearly between the bucket's bounds.
        let h = Histogram::new(&[2.0, 4.0]);
        for _ in 0..4 {
            h.observe(3.0);
        }
        // Ranks 1..=4 of 4 map to 2.5, 3.0, 3.5, 4.0.
        assert_eq!(h.quantile(0.25), Some(2.5));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        // The first bucket interpolates up from zero.
        let h = Histogram::new(&[8.0]);
        h.observe(1.0);
        assert_eq!(h.quantile(0.5), Some(8.0), "rank 1 of 1 fills the bucket");
    }

    #[test]
    fn quantile_spans_buckets_and_clamps_overflow() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5); // bucket (0, 1]
        h.observe(1.5); // bucket (1, 2]
        h.observe(99.0); // overflow
        h.observe(99.0); // overflow
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        // Overflow observations clamp to the last finite bound: the
        // histogram cannot see above its bounds.
        assert_eq!(h.quantile(0.99), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(2.0));
    }

    #[test]
    fn labeled_histograms_are_distinct_series() {
        let r = Registry::new();
        let a = r.histogram_with("applab_h_seconds", &[("endpoint", "a")], &[1.0]);
        let b = r.histogram_with("applab_h_seconds", &[("endpoint", "b")], &[1.0]);
        a.observe(0.5);
        assert_eq!(b.count(), 0, "labels split the series");
        assert_eq!(
            r.histogram_with("applab_h_seconds", &[("endpoint", "a")], &[1.0])
                .count(),
            1
        );
        let report = r.slo_report("applab_h_seconds");
        assert_eq!(report.entries.len(), 1, "empty series are skipped");
        assert_eq!(report.entries[0].series, "applab_h_seconds{endpoint=\"a\"}");
    }

    #[test]
    fn json_snapshot_has_slo_section() {
        let r = Registry::new();
        let h = r.histogram("applab_q_seconds", &[1.0, 2.0]);
        for _ in 0..4 {
            h.observe(1.5);
        }
        let json = r.to_json();
        assert!(
            json.contains("\"applab_q_seconds\": {\"count\": 4, \"p50\": 1.5, \"p95\": 2, \"p99\": 2, \"max\": 2}"),
            "{json}"
        );
    }

    /// Golden escaping check: label values with quotes, backslashes and
    /// newlines must survive both exposition formats.
    #[test]
    fn exposition_escapes_hostile_label_values() {
        let r = Registry::new();
        r.counter_with("applab_esc_total", &[("path", "a\"b\\c\nd")])
            .inc();
        let prom = r.to_prometheus();
        assert!(
            prom.contains("applab_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            "{prom}"
        );
        // No raw newline inside any sample line: each metric stays on
        // one line of the text exposition.
        let line = prom
            .lines()
            .find(|l| l.starts_with("applab_esc_total"))
            .expect("series rendered");
        assert!(line.ends_with(" 1"), "{line}");
        let json = r.to_json();
        // JSON doubles the escaping: the key holds the Prometheus-
        // rendered series name, then JSON-escapes it.
        assert!(
            json.contains("\"applab_esc_total{path=\\\"a\\\\\\\"b\\\\\\\\c\\\\nd\\\"}\": 1"),
            "{json}"
        );
    }

    #[test]
    fn ewma_smooths_and_resets() {
        let e = Ewma::new();
        assert_eq!(e.value(), 0.0, "starts at zero");
        assert_eq!(e.observe(10.0, 0.5), 5.0);
        assert_eq!(e.observe(10.0, 0.5), 7.5);
        // Zero samples decay the average back down.
        assert_eq!(e.observe(0.0, 0.5), 3.75);
        e.reset();
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    fn exponential_bounds() {
        assert_eq!(
            Histogram::exponential(1.0, 10.0, 4),
            vec![1.0, 10.0, 100.0, 1000.0]
        );
    }
}
