//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Metrics are registered by name (convention: `applab_<crate>_<name>`,
//! with `_total` for counters) in a process-global [`Registry`] and are
//! updated lock-free through [`Counter`]/[`Gauge`]/[`Histogram`] handles.
//! Handles are `Arc`s into the registry, so a component can keep its own
//! handle for per-instance reads while the registry remains the single
//! source of truth for exposition. Per-instance series are distinguished
//! with labels (see [`Registry::counter_with`] and [`next_instance_id`]).
//!
//! Two exposition formats are supported: Prometheus text exposition
//! ([`Registry::to_prometheus`]) and a JSON snapshot
//! ([`Registry::to_json`]) that the `exp_*` bench harnesses dump next to
//! their `BENCH_*.json` result files.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram in the Prometheus style: `bounds[i]` is the
/// inclusive upper bound of bucket `i`, and one extra overflow bucket
/// (`+Inf`) catches everything above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last one is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as `f64` bits and updated with a
    /// compare-exchange loop (no atomic f64 in std).
    sum_bits: AtomicU64,
}

impl Histogram {
    /// `bounds` must be strictly increasing (checked in debug builds).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Exponential bounds: `start, start*factor, ...` (`n` bounds).
    pub fn exponential(start: f64, factor: f64, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut v = start;
        for _ in 0..n {
            out.push(v);
            v *= factor;
        }
        out
    }

    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Upper bounds (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A thread-safe name → metric table.
#[derive(Default)]
pub struct Registry {
    // BTreeMap: exposition output is sorted and therefore stable (the
    // Prometheus golden test depends on this).
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or register a labeled counter, e.g.
    /// `counter_with("applab_sdl_cache_hits_total", &[("instance", "3")])`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = render_key(name, labels);
        if let Some(Metric::Counter(c)) = self.metrics.read().expect("registry lock").get(&key) {
            return c.clone();
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(key.clone())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {key} is already registered with a different type"),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = render_key(name, labels);
        if let Some(Metric::Gauge(g)) = self.metrics.read().expect("registry lock").get(&key) {
            return g.clone();
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(key.clone())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {key} is already registered with a different type"),
        }
    }

    /// Get or register the histogram `name`. The bounds of the first
    /// registration win; later calls ignore `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let key = render_key(name, &[]);
        if let Some(Metric::Histogram(h)) = self.metrics.read().expect("registry lock").get(&key) {
            return h.clone();
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(key.clone())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {key} is already registered with a different type"),
        }
    }

    /// Zero every registered metric (handles stay valid). Benches use this
    /// to scope a snapshot to one experiment.
    pub fn reset(&self) {
        for metric in self.metrics.read().expect("registry lock").values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Prometheus text exposition format, sorted by series name.
    pub fn to_prometheus(&self) -> String {
        let metrics = self.metrics.read().expect("registry lock");
        let mut out = String::new();
        let mut last_base = String::new();
        for (key, metric) in metrics.iter() {
            let base = base_name(key);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if base != last_base {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{key} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{key} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, n) in counts.iter().enumerate() {
                        cumulative += n;
                        let le = match h.bounds().get(i) {
                            Some(b) => format_f64(*b),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!("{key}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{key}_sum {}\n", format_f64(h.sum())));
                    out.push_str(&format!("{key}_count {}\n", h.count()));
                }
            }
        }
        out
    }

    /// JSON snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}`, sorted by series name.
    pub fn to_json(&self) -> String {
        let metrics = self.metrics.read().expect("registry lock");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (key, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    push_entry(&mut counters, key, &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    push_entry(&mut gauges, key, &g.get().to_string());
                }
                Metric::Histogram(h) => {
                    let bounds: Vec<String> = h.bounds().iter().map(|b| format_f64(*b)).collect();
                    let counts: Vec<String> =
                        h.bucket_counts().iter().map(u64::to_string).collect();
                    let value = format!(
                        "{{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
                        bounds.join(", "),
                        counts.join(", "),
                        format_f64(h.sum()),
                        h.count()
                    );
                    push_entry(&mut histograms, key, &value);
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{{counters}}},\n  \"gauges\": {{{gauges}}},\n  \"histograms\": {{{histograms}}}\n}}\n"
        )
    }
}

fn push_entry(section: &mut String, key: &str, value: &str) {
    if !section.is_empty() {
        section.push(',');
    }
    section.push_str(&format!("\n    \"{}\": {value}", escape_json(key)));
}

/// `name{k="v",...}` with labels sorted by key; bare `name` without labels.
fn render_key(name: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}"
    );
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let rendered: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{name}{{{}}}", rendered.join(","))
}

fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Shortest clean rendering: integral values without trailing `.0` noise.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The process-global registry. Everything instrumented in the applab
/// crates registers here.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A process-unique id for per-instance metric labels (caches, transports).
pub fn next_instance_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("applab_test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same handle.
        assert_eq!(r.counter("applab_test_total").get(), 5);
        let g = r.gauge("applab_test_size");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn labels_are_sorted_and_distinct() {
        let r = Registry::new();
        let a = r.counter_with("applab_x_total", &[("b", "2"), ("a", "1")]);
        let b = r.counter_with("applab_x_total", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "label order must not split the series");
        let other = r.counter_with("applab_x_total", &[("a", "9")]);
        assert_eq!(other.get(), 0);
        assert!(r
            .to_prometheus()
            .contains("applab_x_total{a=\"1\",b=\"2\"} 1"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("applab_dup");
        r.gauge("applab_dup");
    }

    #[test]
    fn json_snapshot_escapes_label_quotes() {
        let r = Registry::new();
        r.counter_with("applab_j_total", &[("k", "v")]).inc();
        let json = r.to_json();
        assert!(
            json.contains("\"applab_j_total{k=\\\"v\\\"}\": 1"),
            "{json}"
        );
    }

    #[test]
    fn exponential_bounds() {
        assert_eq!(
            Histogram::exponential(1.0, 10.0, 4),
            vec![1.0, 10.0, 100.0, 1000.0]
        );
    }
}
