//! Structured query log + flight recorder.
//!
//! One [`QueryLogRecord`] per served query — who asked what, how it
//! ended, and the full [`QueryStats`] resource accounting — serialized
//! as one JSON object per line (JSONL). Records flow through a bounded
//! channel to a background writer thread, so the query path never
//! blocks on I/O: when the channel is full the record is *dropped and
//! counted* (`applab_obs_querylog_dropped_total`), never waited on.
//!
//! **Sampling** keeps steady-state volume bounded without losing the
//! interesting tail: errors, timeouts, degraded answers and
//! slower-than-threshold queries are always logged; healthy fast
//! queries are sampled at [`SamplingPolicy::ok_sample_rate`] using a
//! seeded SplitMix64 sequence, so tests replay the exact same keep/drop
//! decisions from the seed.
//!
//! The [`FlightRecorder`] is the postmortem side: a fixed-size ring of
//! the last N records, *unsampled*, held in memory and dumped on demand
//! — the chaos/stress suites write it next to the shrunk failure case
//! so a trichotomy violation comes with the recent-request tape.

use crate::querystats::QueryStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Longest query text stored in a record; the full text is identified
/// by `query_hash`.
pub const QUERY_TEXT_LIMIT: usize = 160;

/// One served query, as logged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryLogRecord {
    /// Monotonic per-service sequence number.
    pub seq: u64,
    /// Wall-clock emit time, milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Routing name the query was sent to.
    pub endpoint: String,
    /// Backing engine (`"store"` / `"obda"` / `"?"`).
    pub backend: String,
    /// Outcome code (`"ok"`, `"timeout"`, `"overloaded"`, ...).
    pub code: String,
    /// Whether the answer was served (partly) stale.
    pub degraded: bool,
    /// Evaluation wall-clock.
    pub elapsed_ns: u64,
    /// Admission queue wait.
    pub queue_wait_ns: u64,
    /// FNV-1a hash of the *full* query text (the stable identity).
    pub query_hash: u64,
    /// Query text, truncated to [`QUERY_TEXT_LIMIT`] chars.
    pub query: String,
    /// Trace id of the `service.query` span, for correlation with
    /// subscribers (0 when tracing is off).
    pub trace_id: u64,
    /// Span id of the `service.query` span (0 when tracing is off).
    pub span_id: u64,
    /// The per-query resource accounting.
    pub stats: QueryStats,
}

/// FNV-1a, the query-text identity hash.
pub fn hash_query(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Truncate to [`QUERY_TEXT_LIMIT`] characters on a char boundary.
pub fn truncate_query(text: &str) -> String {
    match text.char_indices().nth(QUERY_TEXT_LIMIT) {
        Some((idx, _)) => text[..idx].to_string(),
        None => text.to_string(),
    }
}

/// Milliseconds since the Unix epoch.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl QueryLogRecord {
    /// The record as one JSON line (no trailing newline).
    /// `query_hash` is emitted as a hex *string* so the full 64 bits
    /// survive readers that parse numbers as f64.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(640);
        self.write_json(&mut out);
        out
    }

    /// Append the JSON line to `out` (the allocation-free flavour of
    /// [`QueryLogRecord::to_json`], used with recycled buffers).
    /// Hand-rolled for the same reason as the `QueryStats` writer:
    /// one line per logged query, on the query path.
    pub fn write_json(&self, out: &mut String) {
        let push_u64 = crate::querystats::push_u64;
        out.push_str("{\"seq\": ");
        push_u64(out, self.seq);
        out.push_str(", \"ts_ms\": ");
        push_u64(out, self.ts_ms);
        out.push_str(", \"endpoint\": \"");
        escape_into(out, &self.endpoint);
        out.push_str("\", \"backend\": \"");
        escape_into(out, &self.backend);
        out.push_str("\", \"code\": \"");
        escape_into(out, &self.code);
        out.push_str("\", \"degraded\": ");
        out.push_str(if self.degraded { "true" } else { "false" });
        out.push_str(", \"elapsed_ns\": ");
        push_u64(out, self.elapsed_ns);
        out.push_str(", \"queue_wait_ns\": ");
        push_u64(out, self.queue_wait_ns);
        out.push_str(", \"query_hash\": \"");
        push_hex16(out, self.query_hash);
        out.push_str("\", \"query\": \"");
        escape_into(out, &self.query);
        out.push_str("\", \"trace_id\": ");
        push_u64(out, self.trace_id);
        out.push_str(", \"span_id\": ");
        push_u64(out, self.span_id);
        out.push_str(", \"stats\": ");
        self.stats.write_json(out);
        out.push('}');
    }

    /// Parse a record back from one JSON line (the inverse of
    /// [`QueryLogRecord::to_json`]; unknown keys are ignored, missing
    /// keys default). `Err` carries a short description of the first
    /// syntax problem.
    pub fn from_json(line: &str) -> Result<QueryLogRecord, String> {
        let value = json::parse(line)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let mut rec = QueryLogRecord::default();
        for (key, v) in obj {
            match key.as_str() {
                "seq" => rec.seq = v.as_u64()?,
                "ts_ms" => rec.ts_ms = v.as_u64()?,
                "endpoint" => rec.endpoint = v.as_str()?.to_string(),
                "backend" => rec.backend = v.as_str()?.to_string(),
                "code" => rec.code = v.as_str()?.to_string(),
                "degraded" => rec.degraded = v.as_bool()?,
                "elapsed_ns" => rec.elapsed_ns = v.as_u64()?,
                "queue_wait_ns" => rec.queue_wait_ns = v.as_u64()?,
                "query_hash" => {
                    rec.query_hash = u64::from_str_radix(v.as_str()?, 16)
                        .map_err(|e| format!("bad query_hash: {e}"))?;
                }
                "query" => rec.query = v.as_str()?.to_string(),
                "trace_id" => rec.trace_id = v.as_u64()?,
                "span_id" => rec.span_id = v.as_u64()?,
                "stats" => rec.stats = parse_stats(v)?,
                _ => {}
            }
        }
        Ok(rec)
    }
}

fn parse_stats(v: &json::Value) -> Result<QueryStats, String> {
    let obj = v.as_object().ok_or("stats is not an object")?;
    let mut s = QueryStats::default();
    for (key, v) in obj {
        match key.as_str() {
            "rows_scanned" => s.rows_scanned = v.as_u64()?,
            "scans" => s.scans = v.as_u64()?,
            "batches" => s.batches = v.as_u64()?,
            "joins" => s.joins = v.as_u64()?,
            "join_build_rows" => s.join_build_rows = v.as_u64()?,
            "join_probe_rows" => s.join_probe_rows = v.as_u64()?,
            "probe_chunks" => s.probe_chunks = v.as_u64()?,
            "filter_rows_in" => s.filter_rows_in = v.as_u64()?,
            "filter_rows_out" => s.filter_rows_out = v.as_u64()?,
            "dap_round_trips" => s.dap_round_trips = v.as_u64()?,
            "dap_bytes" => s.dap_bytes = v.as_u64()?,
            "dap_retries" => s.dap_retries = v.as_u64()?,
            "cache_hits" => s.cache_hits = v.as_u64()?,
            "cache_misses" => s.cache_misses = v.as_u64()?,
            "source_queries" => s.source_queries = v.as_u64()?,
            "pushdowns" => s.pushdowns = v.as_u64()?,
            "pruned_rows" => s.pruned_rows = v.as_u64()?,
            "peak_batch_bytes" => s.peak_batch_bytes = v.as_u64()?,
            "queue_wait_ns" => s.queue_wait_ns = v.as_u64()?,
            "degraded" => s.degraded = v.as_bool()?,
            // `filter_selectivity` is derived; ignored on parse.
            _ => {}
        }
    }
    Ok(s)
}

fn escape_into(out: &mut String, s: &str) {
    // Common case: nothing to escape — one memcpy, no per-char walk.
    if !s.bytes().any(|b| b == b'"' || b == b'\\' || b < 0x20) {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Append `v` as exactly 16 lowercase hex digits.
fn push_hex16(out: &mut String, v: u64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 16];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = HEX[((v >> (60 - 4 * i)) & 0xf) as usize];
    }
    out.push_str(std::str::from_utf8(&buf).expect("ascii hex"));
}

/// A minimal JSON reader, just enough to parse back the records this
/// module writes (objects, strings with escapes, integers, floats,
/// booleans, null). Not a general-purpose parser.
mod json {
    pub enum Value {
        Null,
        Bool(bool),
        /// Numbers keep their lexeme so u64 fields round-trip exactly.
        Num(String),
        Str(String),
        Obj(Vec<(String, Value)>),
        /// Parsed for input tolerance; records never contain arrays, so
        /// the items are not retained.
        Arr(#[allow(dead_code)] Vec<Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Result<u64, String> {
            match self {
                Value::Num(s) => s.parse().map_err(|e| format!("bad integer {s:?}: {e}")),
                _ => Err("expected a number".to_string()),
            }
        }

        pub fn as_bool(&self) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err("expected a boolean".to_string()),
            }
        }

        pub fn as_str(&self) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err("expected a string".to_string()),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {pos}", pos = *pos))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        if start == *pos {
            return Err(format!("expected a value at offset {start}"));
        }
        let lex = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        lex.parse::<f64>()
            .map_err(|e| format!("bad number {lex:?}: {e}"))?;
        Ok(Value::Num(lex.to_string()))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        debug_assert_eq!(b[*pos], b'"');
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogates never appear in our own output.
                            out.push(char::from_u32(n).ok_or("bad \\u codepoint")?);
                            *pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected a key at offset {pos}", pos = *pos));
            }
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at offset {pos}", pos = *pos));
            }
            *pos += 1;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
            }
        }
    }
}

// ── sampling ───────────────────────────────────────────────────────────

/// When to keep a record.
#[derive(Debug, Clone)]
pub struct SamplingPolicy {
    /// Keep probability for healthy fast queries, in `[0, 1]`.
    pub ok_sample_rate: f64,
    /// Healthy queries at least this slow are always kept.
    pub slow_threshold_ns: Option<u64>,
    /// Seed for the deterministic keep/drop sequence.
    pub seed: u64,
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy {
            ok_sample_rate: 0.1,
            slow_threshold_ns: Some(100_000_000), // 100 ms
            seed: 0,
        }
    }
}

impl SamplingPolicy {
    /// Log everything (tests, debugging).
    pub fn always() -> Self {
        SamplingPolicy {
            ok_sample_rate: 1.0,
            slow_threshold_ns: None,
            seed: 0,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

// ── the log itself ─────────────────────────────────────────────────────

/// Where finished JSONL lines go. Runs on the writer thread, so a slow
/// sink can never stall the query path.
pub trait LogSink: Send {
    /// Persist one line (no trailing newline included).
    fn write_line(&mut self, line: &str);
    /// Durability point (called by [`QueryLog::flush`] and at shutdown).
    fn flush(&mut self) {}
}

/// Collects lines into a shared vector — the test sink.
pub struct VecSink(Arc<Mutex<Vec<String>>>);

impl VecSink {
    /// The sink plus the shared handle tests read the lines from.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (Box<dyn LogSink>, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (Box::new(VecSink(Arc::clone(&lines))), lines)
    }
}

impl LogSink for VecSink {
    fn write_line(&mut self, line: &str) {
        self.0.lock().expect("vec sink lock").push(line.to_string());
    }
}

/// Writes lines to any `io::Write` (a file, a pipe), newline-delimited.
pub struct WriterSink<W: std::io::Write + Send>(pub W);

impl<W: std::io::Write + Send> LogSink for WriterSink<W> {
    fn write_line(&mut self, line: &str) {
        // I/O errors must not take down the writer thread; they surface
        // as missing lines, which the drop counter cannot see — a file
        // sink that matters should be on a reliable local disk.
        let _ = writeln!(self.0, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.0.flush();
    }
}

/// State shared between callers and the writer thread: a bounded queue
/// of serialized lines plus pending flush acknowledgements. Callers
/// serialize before enqueueing — the line is one compact allocation,
/// and the record's strings are freed on the thread that allocated
/// them, which keeps the allocator's thread caches effective.
struct LogState {
    queue: VecDeque<String>,
    flush_acks: Vec<SyncSender<()>>,
    shutdown: bool,
}

struct LogShared {
    state: Mutex<LogState>,
    /// Signalled for flush and shutdown only. Ordinary records do NOT
    /// wake the writer — it polls on a short timeout instead, so the
    /// query path pays one uncontended mutex push and no syscalls.
    work: Condvar,
    /// Written-out line buffers, cleared and recycled back to callers.
    /// In steady state no line allocation crosses threads — cross-thread
    /// malloc/free traffic would contend with query-evaluation
    /// allocations on the same arena.
    pool: Mutex<Vec<String>>,
}

/// How long the writer sleeps between drains when idle.
const WRITER_POLL: Duration = Duration::from_millis(5);

/// Cap on recycled line buffers kept in the pool.
const POOL_MAX: usize = 256;

/// The asynchronous query log: sampling decision + serialization happen
/// on the caller, the line is pushed onto a bounded in-memory queue,
/// and a background thread drains the queue in batches, writing each
/// line to the sink. [`QueryLog::log`] never blocks and never wakes
/// the writer.
pub struct QueryLog {
    shared: Arc<LogShared>,
    capacity: usize,
    writer: Mutex<Option<JoinHandle<()>>>,
    policy: SamplingPolicy,
    draws: AtomicU64,
    logged: AtomicU64,
    dropped: AtomicU64,
}

/// Default bound on in-flight lines.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

impl QueryLog {
    /// A log writing to `sink` with the given policy and queue bound.
    pub fn new(sink: Box<dyn LogSink>, policy: SamplingPolicy, capacity: usize) -> QueryLog {
        let shared = Arc::new(LogShared {
            state: Mutex::new(LogState {
                queue: VecDeque::new(),
                flush_acks: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            pool: Mutex::new(Vec::new()),
        });
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("applab-querylog".to_string())
            .spawn(move || writer_loop(writer_shared, sink))
            .expect("spawn query-log writer");
        QueryLog {
            shared,
            capacity: capacity.max(1),
            writer: Mutex::new(Some(writer)),
            policy,
            draws: AtomicU64::new(0),
            logged: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether this record passes the sampling policy. Deterministic:
    /// the n-th *sampled* decision under a given seed is always the
    /// same. Errors, degraded answers and slow queries never sample.
    pub fn should_log(&self, record: &QueryLogRecord) -> bool {
        if record.code != "ok" || record.degraded {
            return true;
        }
        if let Some(t) = self.policy.slow_threshold_ns {
            if record.elapsed_ns >= t {
                return true;
            }
        }
        if self.policy.ok_sample_rate >= 1.0 {
            return true;
        }
        if self.policy.ok_sample_rate <= 0.0 {
            return false;
        }
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        let x = splitmix64(self.policy.seed.wrapping_add(n));
        let unit = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.policy.ok_sample_rate
    }

    /// Sample, serialize and enqueue `record`. Returns `true` when the
    /// record was enqueued; `false` when sampled out or dropped on a
    /// full queue (counted in `applab_obs_querylog_dropped_total`).
    pub fn log(&self, record: &QueryLogRecord) -> bool {
        if !self.should_log(record) {
            return false;
        }
        self.enqueue(self.render(record))
    }

    /// Like [`QueryLog::log`] but takes ownership, letting the record's
    /// strings drop on the calling thread right after serialization.
    pub fn log_owned(&self, record: QueryLogRecord) -> bool {
        if !self.should_log(&record) {
            return false;
        }
        self.enqueue(self.render(&record))
    }

    /// Serialize into a recycled line buffer when one is available.
    fn render(&self, record: &QueryLogRecord) -> String {
        let mut buf = self
            .shared
            .pool
            .lock()
            .expect("query-log pool")
            .pop()
            .unwrap_or_else(|| String::with_capacity(640));
        buf.clear();
        record.write_json(&mut buf);
        buf
    }

    fn enqueue(&self, line: String) -> bool {
        let accepted = {
            let mut st = self.shared.state.lock().expect("query-log state");
            if st.shutdown || st.queue.len() >= self.capacity {
                false
            } else {
                st.queue.push_back(line);
                true
            }
        };
        if accepted {
            self.logged.fetch_add(1, Ordering::Relaxed);
            crate::counter!("applab_obs_querylog_records_total").inc();
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            crate::counter!("applab_obs_querylog_dropped_total").inc();
        }
        accepted
    }

    /// Records enqueued so far.
    pub fn logged(&self) -> u64 {
        self.logged.load(Ordering::Relaxed)
    }

    /// Records lost to a full queue so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Block until every line enqueued before this call is in the sink
    /// (tests and orderly shutdown; the query path never calls this).
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = sync_channel(1);
        {
            let mut st = self.shared.state.lock().expect("query-log state");
            if st.shutdown {
                return;
            }
            st.flush_acks.push(ack_tx);
        }
        self.shared.work.notify_one();
        let _ = ack_rx.recv();
    }
}

impl Drop for QueryLog {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("query-log state");
            st.shutdown = true;
        }
        self.shared.work.notify_one();
        if let Some(handle) = self.writer.lock().expect("writer handle lock").take() {
            let _ = handle.join();
        }
    }
}

fn writer_loop(shared: Arc<LogShared>, mut sink: Box<dyn LogSink>) {
    let mut batch: VecDeque<String> = VecDeque::new();
    loop {
        let (acks, shutdown) = {
            let mut st = shared.state.lock().expect("query-log state");
            while st.queue.is_empty() && st.flush_acks.is_empty() && !st.shutdown {
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, WRITER_POLL)
                    .expect("query-log state");
                st = guard;
            }
            std::mem::swap(&mut batch, &mut st.queue);
            (std::mem::take(&mut st.flush_acks), st.shutdown)
        };
        // Write outside the lock: callers keep enqueueing into the (now
        // empty) queue while this batch drains. Written buffers go back
        // to the pool for reuse instead of being freed here.
        if !batch.is_empty() {
            for line in &batch {
                sink.write_line(line);
            }
            let mut pool = shared.pool.lock().expect("query-log pool");
            for line in batch.drain(..) {
                if pool.len() < POOL_MAX {
                    pool.push(line);
                }
            }
        }
        if !acks.is_empty() || shutdown {
            sink.flush();
            for ack in acks {
                let _ = ack.try_send(());
            }
        }
        if shutdown {
            return;
        }
    }
}

// ── flight recorder ────────────────────────────────────────────────────

/// A fixed-size ring of the last N query-log records, unsampled. Writes
/// claim a slot with one atomic increment and lock only that slot, so
/// concurrent recorders contend only when wrapping onto each other.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<QueryLogRecord>>>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` records.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// How many records fit.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (≥ what [`FlightRecorder::dump`]
    /// returns once the ring has wrapped).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Append one record, evicting the oldest once full.
    pub fn record(&self, record: QueryLogRecord) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        *self.slots[idx].lock().expect("flight recorder slot") = Some(record);
    }

    /// The retained records, oldest first.
    pub fn dump(&self) -> Vec<QueryLogRecord> {
        let n = self.next.load(Ordering::Relaxed) as usize;
        let cap = self.slots.len();
        let start = if n >= cap { n % cap } else { 0 };
        let mut out = Vec::with_capacity(cap.min(n));
        for i in 0..cap {
            let slot = self.slots[(start + i) % cap]
                .lock()
                .expect("flight recorder slot");
            if let Some(rec) = slot.as_ref() {
                out.push(rec.clone());
            }
        }
        out
    }

    /// The retained records as JSONL (one record per line, oldest
    /// first, trailing newline when nonempty).
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.dump() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }

    /// Write the tape to `path` as JSONL, creating parent directories.
    /// This is the crash-artifact path: chaos harnesses call it from
    /// failure handlers, so it must not panic on I/O trouble.
    pub fn dump_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.dump_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(seq: u64) -> QueryLogRecord {
        QueryLogRecord {
            seq,
            ts_ms: 1_722_000_000_000,
            endpoint: "store".to_string(),
            backend: "store".to_string(),
            code: "ok".to_string(),
            degraded: false,
            elapsed_ns: 1_234_567,
            queue_wait_ns: 987,
            query_hash: hash_query("SELECT ?s WHERE { ?s ?p ?o }"),
            query: "SELECT ?s WHERE { ?s ?p ?o }".to_string(),
            trace_id: 42,
            span_id: 43,
            stats: QueryStats {
                rows_scanned: 784,
                scans: 2,
                batches: 3,
                joins: 1,
                join_build_rows: 131,
                join_probe_rows: 784,
                probe_chunks: 4,
                filter_rows_in: 131,
                filter_rows_out: 17,
                dap_round_trips: 2,
                dap_bytes: 16_384,
                dap_retries: 1,
                cache_hits: 1,
                cache_misses: 1,
                source_queries: 3,
                pushdowns: 1,
                pruned_rows: 96,
                peak_batch_bytes: 32_768,
                queue_wait_ns: 987,
                degraded: false,
            },
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let rec = sample_record(7);
        let parsed = QueryLogRecord::from_json(&rec.to_json()).expect("parse");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn roundtrip_survives_hostile_query_text() {
        let mut rec = sample_record(8);
        rec.query = "SELECT \"x\\y\"\nWHERE\t{ æøå \u{1} }".to_string();
        rec.endpoint = "store\"prod\"".to_string();
        let parsed = QueryLogRecord::from_json(&rec.to_json()).expect("parse");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn query_hash_keeps_full_64_bits() {
        let mut rec = sample_record(9);
        rec.query_hash = u64::MAX - 3; // not representable as f64
        let parsed = QueryLogRecord::from_json(&rec.to_json()).expect("parse");
        assert_eq!(parsed.query_hash, u64::MAX - 3);
    }

    #[test]
    fn truncation_is_char_safe() {
        let long = "ø".repeat(QUERY_TEXT_LIMIT + 50);
        let t = truncate_query(&long);
        assert_eq!(t.chars().count(), QUERY_TEXT_LIMIT);
    }

    #[test]
    fn errors_and_degraded_and_slow_always_log() {
        let (sink, _lines) = VecSink::new();
        let log = QueryLog::new(
            sink,
            SamplingPolicy {
                ok_sample_rate: 0.0,
                slow_threshold_ns: Some(1_000_000),
                seed: 1,
            },
            16,
        );
        let mut rec = sample_record(0);
        rec.elapsed_ns = 0;
        assert!(
            !log.should_log(&rec),
            "healthy fast query sampled out at rate 0"
        );
        rec.code = "timeout".to_string();
        assert!(log.should_log(&rec));
        rec.code = "ok".to_string();
        rec.degraded = true;
        assert!(log.should_log(&rec));
        rec.degraded = false;
        rec.elapsed_ns = 2_000_000;
        assert!(log.should_log(&rec), "slow query crossed the threshold");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let decisions = |seed: u64| -> Vec<bool> {
            let (sink, _lines) = VecSink::new();
            let log = QueryLog::new(
                sink,
                SamplingPolicy {
                    ok_sample_rate: 0.5,
                    slow_threshold_ns: None,
                    seed,
                },
                16,
            );
            let mut rec = sample_record(0);
            rec.elapsed_ns = 0;
            (0..64).map(|_| log.should_log(&rec)).collect()
        };
        let a = decisions(7);
        let b = decisions(7);
        assert_eq!(a, b, "same seed, same keep/drop sequence");
        let kept = a.iter().filter(|&&k| k).count();
        assert!(kept > 10 && kept < 54, "rate 0.5 kept {kept}/64");
        assert_ne!(a, decisions(8), "different seed, different sequence");
    }

    #[test]
    fn log_never_blocks_and_counts_drops() {
        // A sink that blocks until released, so the queue fills up.
        struct Gate(Arc<Mutex<()>>);
        impl LogSink for Gate {
            fn write_line(&mut self, _line: &str) {
                let _held = self.0.lock().expect("gate");
            }
        }
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().expect("gate");
        let log = QueryLog::new(
            Box::new(Gate(Arc::clone(&gate))),
            SamplingPolicy::always(),
            2,
        );
        let rec = sample_record(0);
        // Capacity 2 + one line stuck in the writer: everything beyond
        // is dropped, and log() returns promptly instead of blocking.
        for _ in 0..16 {
            log.log(&rec);
        }
        assert!(log.dropped() > 0, "full queue must drop, not block");
        assert!(log.logged() >= 2);
        drop(held);
        log.flush();
    }

    #[test]
    fn writer_drains_to_sink_in_order() {
        let (sink, lines) = VecSink::new();
        let log = QueryLog::new(sink, SamplingPolicy::always(), 64);
        for seq in 0..10 {
            assert!(log.log(&sample_record(seq)));
        }
        log.flush();
        let lines = lines.lock().expect("lines");
        assert_eq!(lines.len(), 10);
        for (i, line) in lines.iter().enumerate() {
            let rec = QueryLogRecord::from_json(line).expect("parse");
            assert_eq!(rec.seq, i as u64);
        }
    }

    #[test]
    fn flight_recorder_keeps_last_n_in_order() {
        let fr = FlightRecorder::new(4);
        assert!(fr.dump().is_empty());
        for seq in 0..3 {
            fr.record(sample_record(seq));
        }
        let seqs: Vec<u64> = fr.dump().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1, 2], "not yet wrapped: oldest first");
        for seq in 3..11 {
            fr.record(sample_record(seq));
        }
        let seqs: Vec<u64> = fr.dump().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [7, 8, 9, 10], "wrapped: last capacity records");
        assert_eq!(fr.recorded(), 11);
        let jsonl = fr.dump_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        for line in jsonl.lines() {
            QueryLogRecord::from_json(line).expect("every dumped line parses");
        }
    }

    #[test]
    fn flight_recorder_is_safe_under_concurrent_writes() {
        let fr = Arc::new(FlightRecorder::new(8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let fr = Arc::clone(&fr);
                s.spawn(move || {
                    for i in 0..50 {
                        fr.record(sample_record(t * 100 + i));
                    }
                });
            }
        });
        assert_eq!(fr.recorded(), 200);
        assert_eq!(fr.dump().len(), 8);
    }
}
