//! The INSPIRE-compliant App Lab ontologies, expressed as code.
//!
//! Section 4 of the paper: "The first task of any case study using the
//! Copernicus App Lab software is to develop INSPIRE-compliant ontologies for
//! the selected Copernicus data." This module regenerates:
//!
//! * **Figure 2** — the LAI ontology ([`lai_ontology`]): `lai:Observation`
//!   specializes `qb:Observation`, carries `lai:hasLai` (an `xsd:float`
//!   measure), a `geo:hasGeometry`/`geo:asWKT` location, and a
//!   `time:hasTime` instant.
//! * **Figure 3** — the GADM ontology ([`gadm_ontology`]): administrative
//!   units extending the GeoSPARQL ontology.
//! * The CORINE land cover ontology with the full 44-class, 3-level CLC
//!   nomenclature ([`corine_ontology`], [`CLC_CLASSES`]).
//! * The Urban Atlas ontology with the 17 urban + 10 rural classes
//!   ([`urban_atlas_ontology`], [`UA_CLASSES`]).
//! * The OpenStreetMap ontology ([`osm_ontology`]).
//! * The Sextant map ontology ([`map_ontology`], Section 3.3).

use crate::graph::Graph;
use crate::term::{Literal, NamedNode, Resource, Term};
use crate::vocab::{self, iri};

fn class(g: &mut Graph, class_iri: &str, label: &str, parent: Option<&str>) {
    let c = Resource::named(class_iri);
    g.add(
        c.clone(),
        NamedNode::new(vocab::rdf::TYPE),
        Term::named(vocab::owl::CLASS),
    );
    g.add(
        c.clone(),
        NamedNode::new(vocab::rdfs::LABEL),
        Literal::lang(label, "en"),
    );
    if let Some(p) = parent {
        g.add(c, NamedNode::new(vocab::rdfs::SUB_CLASS_OF), Term::named(p));
    }
}

fn property(g: &mut Graph, prop_iri: &str, kind: &str, domain: &str, range: &str, label: &str) {
    let p = Resource::named(prop_iri);
    g.add(
        p.clone(),
        NamedNode::new(vocab::rdf::TYPE),
        Term::named(kind),
    );
    g.add(
        p.clone(),
        NamedNode::new(vocab::rdfs::DOMAIN),
        Term::named(domain),
    );
    g.add(
        p.clone(),
        NamedNode::new(vocab::rdfs::RANGE),
        Term::named(range),
    );
    g.add(
        p,
        NamedNode::new(vocab::rdfs::LABEL),
        Literal::lang(label, "en"),
    );
}

/// The LAI ontology of Figure 2.
pub fn lai_ontology() -> Graph {
    let mut g = Graph::new();
    class(
        &mut g,
        vocab::lai::OBSERVATION,
        "LAI observation",
        Some(vocab::qb::OBSERVATION),
    );
    // Figure 2 reuses geo:Feature for the spatial aspect.
    g.add(
        Resource::named(vocab::lai::OBSERVATION),
        NamedNode::new(vocab::rdfs::SUB_CLASS_OF),
        Term::named(vocab::geo::FEATURE),
    );
    property(
        &mut g,
        vocab::lai::HAS_LAI,
        vocab::qb::MEASURE_PROPERTY,
        vocab::lai::OBSERVATION,
        vocab::xsd::FLOAT,
        "leaf area index value",
    );
    // The dataset-level node: observations belong to a qb:DataSet.
    class(
        &mut g,
        &format!("{}Dataset", vocab::lai::NS),
        "LAI dataset",
        Some(vocab::qb::DATA_SET),
    );
    property(
        &mut g,
        vocab::qb::DATA_SET_PROP,
        vocab::qb::DIMENSION_PROPERTY,
        vocab::lai::OBSERVATION,
        &format!("{}Dataset", vocab::lai::NS),
        "data set",
    );
    // Spatio-temporal wiring reused from geo: and time:.
    property(
        &mut g,
        vocab::geo::HAS_GEOMETRY,
        vocab::owl::OBJECT_PROPERTY,
        vocab::geo::FEATURE,
        vocab::geo::GEOMETRY,
        "has geometry",
    );
    property(
        &mut g,
        vocab::geo::AS_WKT,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::geo::GEOMETRY,
        vocab::geo::WKT_LITERAL,
        "as WKT",
    );
    property(
        &mut g,
        vocab::time::HAS_TIME,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::lai::OBSERVATION,
        vocab::xsd::DATE_TIME,
        "has time",
    );
    g
}

/// The GADM ontology of Figure 3.
pub fn gadm_ontology() -> Graph {
    let mut g = Graph::new();
    class(
        &mut g,
        vocab::gadm::ADMINISTRATIVE_UNIT,
        "administrative unit",
        Some(vocab::geo::FEATURE),
    );
    property(
        &mut g,
        vocab::gadm::HAS_NAME,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::gadm::ADMINISTRATIVE_UNIT,
        vocab::xsd::STRING,
        "has name",
    );
    property(
        &mut g,
        vocab::gadm::HAS_LEVEL,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::gadm::ADMINISTRATIVE_UNIT,
        vocab::xsd::INTEGER,
        "administrative level",
    );
    property(
        &mut g,
        vocab::gadm::HAS_COUNTRY,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::gadm::ADMINISTRATIVE_UNIT,
        vocab::xsd::STRING,
        "country ISO code",
    );
    property(
        &mut g,
        vocab::gadm::PART_OF,
        vocab::owl::OBJECT_PROPERTY,
        vocab::gadm::ADMINISTRATIVE_UNIT,
        vocab::gadm::ADMINISTRATIVE_UNIT,
        "part of",
    );
    g
}

/// One CORINE land cover class: `(code, label)`. Level is the number of
/// digits in the code (1, 2 or 3); the parent is the code with the last
/// digit removed.
pub type ClcClass = (u16, &'static str);

/// The full CORINE Land Cover nomenclature: 5 level-1, 15 level-2 and 44
/// level-3 classes (Section 4: "Land cover is characterized using a 3-level
/// hierarchy of classes ... with 44 classes in total at the 3rd level").
pub const CLC_CLASSES: &[ClcClass] = &[
    (1, "Artificial surfaces"),
    (11, "Urban fabric"),
    (111, "Continuous urban fabric"),
    (112, "Discontinuous urban fabric"),
    (12, "Industrial, commercial and transport units"),
    (121, "Industrial or commercial units"),
    (122, "Road and rail networks and associated land"),
    (123, "Port areas"),
    (124, "Airports"),
    (13, "Mine, dump and construction sites"),
    (131, "Mineral extraction sites"),
    (132, "Dump sites"),
    (133, "Construction sites"),
    (14, "Artificial, non-agricultural vegetated areas"),
    (141, "Green urban areas"),
    (142, "Sport and leisure facilities"),
    (2, "Agricultural areas"),
    (21, "Arable land"),
    (211, "Non-irrigated arable land"),
    (212, "Permanently irrigated land"),
    (213, "Rice fields"),
    (22, "Permanent crops"),
    (221, "Vineyards"),
    (222, "Fruit trees and berry plantations"),
    (223, "Olive groves"),
    (23, "Pastures"),
    (231, "Pastures"),
    (24, "Heterogeneous agricultural areas"),
    (241, "Annual crops associated with permanent crops"),
    (242, "Complex cultivation patterns"),
    (243, "Land principally occupied by agriculture"),
    (244, "Agro-forestry areas"),
    (3, "Forest and semi natural areas"),
    (31, "Forests"),
    (311, "Broad-leaved forest"),
    (312, "Coniferous forest"),
    (313, "Mixed forest"),
    (32, "Scrub and herbaceous vegetation associations"),
    (321, "Natural grasslands"),
    (322, "Moors and heathland"),
    (323, "Sclerophyllous vegetation"),
    (324, "Transitional woodland shrub"),
    (33, "Open spaces with little or no vegetation"),
    (331, "Beaches, dunes, sands"),
    (332, "Bare rocks"),
    (333, "Sparsely vegetated areas"),
    (334, "Burnt areas"),
    (335, "Glaciers and perpetual snow"),
    (4, "Wetlands"),
    (41, "Inland wetlands"),
    (411, "Inland marshes"),
    (412, "Peat bogs"),
    (42, "Maritime wetlands"),
    (421, "Salt marshes"),
    (422, "Salines"),
    (423, "Intertidal flats"),
    (5, "Water bodies"),
    (51, "Inland waters"),
    (511, "Water courses"),
    (512, "Water bodies"),
    (52, "Marine waters"),
    (521, "Coastal lagoons"),
    (522, "Estuaries"),
    (523, "Sea and ocean"),
];

/// Convert a class label to the UpperCamelCase local name used in the CLC
/// and UA ontologies (the paper shows `clc:greenUrbanAreas` and
/// `clc:Forests`; we normalize to UpperCamelCase consistently).
pub fn camel_case(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for word in label.split(|c: char| !c.is_ascii_alphanumeric()) {
        let mut chars = word.chars();
        if let Some(first) = chars.next() {
            out.push(first.to_ascii_uppercase());
            out.extend(chars);
        }
    }
    out
}

/// IRI of a CORINE class given its numeric code.
pub fn clc_class_iri(code: u16) -> Option<NamedNode> {
    CLC_CLASSES
        .iter()
        .find(|(c, _)| *c == code)
        .map(|(_, label)| iri(vocab::clc::NS, &camel_case(label)))
}

/// Parent code of a CORINE class (`141` → `14` → `1`).
pub fn clc_parent(code: u16) -> Option<u16> {
    if code >= 10 {
        Some(code / 10)
    } else {
        None
    }
}

/// The CORINE land cover ontology of Section 4: `clc:CorineArea` (a subclass
/// of the INSPIRE `LandCoverUnit`), `clc:hasCorineValue`, and the class
/// hierarchy under `clc:CorineValue`.
pub fn corine_ontology() -> Graph {
    let mut g = Graph::new();
    class(
        &mut g,
        vocab::clc::CORINE_AREA,
        "CORINE land cover area",
        Some(vocab::clc::INSPIRE_LAND_COVER_UNIT),
    );
    g.add(
        Resource::named(vocab::clc::CORINE_AREA),
        NamedNode::new(vocab::rdfs::SUB_CLASS_OF),
        Term::named(vocab::geo::FEATURE),
    );
    class(&mut g, vocab::clc::CORINE_VALUE, "CORINE value", None);
    property(
        &mut g,
        vocab::clc::HAS_CORINE_VALUE,
        vocab::owl::OBJECT_PROPERTY,
        vocab::clc::CORINE_AREA,
        vocab::clc::CORINE_VALUE,
        "has CORINE value",
    );
    property(
        &mut g,
        vocab::clc::HAS_CODE,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::clc::CORINE_VALUE,
        vocab::xsd::INTEGER,
        "CLC code",
    );
    for (code, label) in CLC_CLASSES {
        let c = iri(vocab::clc::NS, &camel_case(label));
        let parent = clc_parent(*code)
            .and_then(clc_class_iri)
            .map(|n| n.as_str().to_string())
            .unwrap_or_else(|| vocab::clc::CORINE_VALUE.to_string());
        class(&mut g, c.as_str(), label, Some(&parent));
        g.add(
            Resource::Named(c),
            NamedNode::new(vocab::clc::HAS_CODE),
            Literal::integer(*code as i64),
        );
    }
    g
}

/// One Urban Atlas class: `(code, urban?, label)`.
pub type UaClass = (u32, bool, &'static str);

/// The Urban Atlas 2012 nomenclature: 17 urban and 10 rural classes
/// (Section 4: "Land cover/land use is characterized by 17 urban classes ...
/// and 10 rural classes").
pub const UA_CLASSES: &[UaClass] = &[
    (11100, true, "Continuous urban fabric"),
    (11210, true, "Discontinuous dense urban fabric"),
    (11220, true, "Discontinuous medium density urban fabric"),
    (11230, true, "Discontinuous low density urban fabric"),
    (11240, true, "Discontinuous very low density urban fabric"),
    (11300, true, "Isolated structures"),
    (
        12100,
        true,
        "Industrial, commercial, public, military and private units",
    ),
    (12210, true, "Fast transit roads and associated land"),
    (12220, true, "Other roads and associated land"),
    (12230, true, "Railways and associated land"),
    (12300, true, "Port areas"),
    (12400, true, "Airports"),
    (13100, true, "Mineral extraction and dump sites"),
    (13300, true, "Construction sites"),
    (13400, true, "Land without current use"),
    (14100, true, "Green urban areas"),
    (14200, true, "Sports and leisure facilities"),
    (21000, false, "Arable land"),
    (22000, false, "Permanent crops"),
    (23000, false, "Pastures"),
    (24000, false, "Complex and mixed cultivation patterns"),
    (25000, false, "Orchards"),
    (31000, false, "Forests"),
    (32000, false, "Herbaceous vegetation associations"),
    (33000, false, "Open spaces with little or no vegetation"),
    (40000, false, "Wetlands"),
    (50000, false, "Water"),
];

/// IRI of an Urban Atlas class given its numeric code.
pub fn ua_class_iri(code: u32) -> Option<NamedNode> {
    UA_CLASSES
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, _, label)| iri(vocab::ua::NS, &camel_case(label)))
}

/// The Urban Atlas ontology of Section 4.
pub fn urban_atlas_ontology() -> Graph {
    let mut g = Graph::new();
    class(
        &mut g,
        vocab::ua::URBAN_AREA,
        "Urban Atlas area",
        Some(vocab::geo::FEATURE),
    );
    let urban_root = iri(vocab::ua::NS, "UrbanClass");
    let rural_root = iri(vocab::ua::NS, "RuralClass");
    class(&mut g, urban_root.as_str(), "Urban Atlas urban class", None);
    class(&mut g, rural_root.as_str(), "Urban Atlas rural class", None);
    property(
        &mut g,
        vocab::ua::HAS_CLASS,
        vocab::owl::OBJECT_PROPERTY,
        vocab::ua::URBAN_AREA,
        urban_root.as_str(),
        "has class",
    );
    property(
        &mut g,
        vocab::ua::HAS_POPULATION,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::ua::URBAN_AREA,
        vocab::xsd::INTEGER,
        "estimated population",
    );
    for (code, urban, label) in UA_CLASSES {
        let c = iri(vocab::ua::NS, &camel_case(label));
        let parent = if *urban { &urban_root } else { &rural_root };
        class(&mut g, c.as_str(), label, Some(parent.as_str()));
        g.add(
            Resource::Named(c),
            NamedNode::new(&*format!("{}hasCode", vocab::ua::NS)),
            Literal::integer(*code as i64),
        );
    }
    g
}

/// The OpenStreetMap ontology of Section 4 (built "following closely the
/// description of OpenStreetMap data provided by Geofabrik").
pub fn osm_ontology() -> Graph {
    let mut g = Graph::new();
    class(
        &mut g,
        vocab::osm::POI,
        "point of interest",
        Some(vocab::geo::FEATURE),
    );
    property(
        &mut g,
        vocab::osm::POI_TYPE,
        vocab::owl::OBJECT_PROPERTY,
        vocab::osm::POI,
        vocab::rdfs::CLASS,
        "POI type",
    );
    property(
        &mut g,
        vocab::osm::HAS_NAME,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::osm::POI,
        vocab::xsd::STRING,
        "has name",
    );
    for (t, label) in [
        (vocab::osm::PARK, "park"),
        (vocab::osm::FOREST, "forest"),
        (vocab::osm::INDUSTRIAL, "industrial area"),
    ] {
        class(&mut g, t, label, None);
    }
    g
}

/// The Sextant map ontology of Section 3.3 ("each thematic map is
/// represented using a map ontology that assists on modelling these maps in
/// RDF").
pub fn map_ontology() -> Graph {
    let mut g = Graph::new();
    class(&mut g, vocab::map::MAP, "thematic map", None);
    class(&mut g, vocab::map::LAYER, "map layer", None);
    property(
        &mut g,
        vocab::map::HAS_LAYER,
        vocab::owl::OBJECT_PROPERTY,
        vocab::map::MAP,
        vocab::map::LAYER,
        "has layer",
    );
    property(
        &mut g,
        vocab::map::HAS_TITLE,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::map::MAP,
        vocab::xsd::STRING,
        "has title",
    );
    property(
        &mut g,
        vocab::map::HAS_SOURCE,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::map::LAYER,
        vocab::xsd::ANY_URI,
        "layer data source",
    );
    property(
        &mut g,
        vocab::map::HAS_STYLE,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::map::LAYER,
        vocab::xsd::STRING,
        "layer style",
    );
    property(
        &mut g,
        vocab::map::HAS_ORDER,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::map::LAYER,
        vocab::xsd::INTEGER,
        "stacking order",
    );
    property(
        &mut g,
        vocab::map::HAS_TIMESTAMP,
        vocab::owl::DATATYPE_PROPERTY,
        vocab::map::LAYER,
        vocab::xsd::DATE_TIME,
        "layer timestamp",
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clc_has_44_level3_classes() {
        let level3 = CLC_CLASSES.iter().filter(|(c, _)| *c >= 100).count();
        assert_eq!(level3, 44);
        let level1 = CLC_CLASSES.iter().filter(|(c, _)| *c < 10).count();
        assert_eq!(level1, 5);
    }

    #[test]
    fn ua_has_17_urban_10_rural() {
        assert_eq!(UA_CLASSES.iter().filter(|(_, u, _)| *u).count(), 17);
        assert_eq!(UA_CLASSES.iter().filter(|(_, u, _)| !*u).count(), 10);
    }

    #[test]
    fn camel_case_examples() {
        assert_eq!(camel_case("Green urban areas"), "GreenUrbanAreas");
        assert_eq!(camel_case("Beaches, dunes, sands"), "BeachesDunesSands");
        assert_eq!(camel_case("Forests"), "Forests");
    }

    #[test]
    fn clc_hierarchy_is_connected() {
        let g = corine_ontology();
        // Every level-3 class transitively reaches clc:CorineValue.
        let sub = NamedNode::new(vocab::rdfs::SUB_CLASS_OF);
        for (code, label) in CLC_CLASSES {
            if *code < 100 {
                continue;
            }
            let mut current = iri(vocab::clc::NS, &camel_case(label));
            let mut steps = 0;
            loop {
                let parent = g
                    .object_of(&Resource::Named(current.clone()), &sub)
                    .and_then(|t| t.as_named().cloned())
                    .unwrap_or_else(|| panic!("class {current:?} has no parent"));
                if parent.as_str() == vocab::clc::CORINE_VALUE {
                    break;
                }
                current = parent;
                steps += 1;
                assert!(steps <= 3, "hierarchy too deep for {label}");
            }
        }
    }

    #[test]
    fn lai_ontology_matches_figure2() {
        let g = lai_ontology();
        let obs = Resource::named(vocab::lai::OBSERVATION);
        let sub = NamedNode::new(vocab::rdfs::SUB_CLASS_OF);
        let parents: Vec<_> = g
            .matching(Some(&obs), Some(&sub), None)
            .map(|t| t.object.clone())
            .collect();
        assert!(parents.contains(&Term::named(vocab::qb::OBSERVATION)));
        assert!(parents.contains(&Term::named(vocab::geo::FEATURE)));
        let has_lai = Resource::named(vocab::lai::HAS_LAI);
        let range = g
            .object_of(&has_lai, &NamedNode::new(vocab::rdfs::RANGE))
            .unwrap();
        assert_eq!(range, &Term::named(vocab::xsd::FLOAT));
    }

    #[test]
    fn gadm_ontology_matches_figure3() {
        let g = gadm_ontology();
        let unit = Resource::named(vocab::gadm::ADMINISTRATIVE_UNIT);
        let sub = NamedNode::new(vocab::rdfs::SUB_CLASS_OF);
        assert_eq!(
            g.object_of(&unit, &sub),
            Some(&Term::named(vocab::geo::FEATURE))
        );
        // partOf is reflexive on the class level: domain == range == unit.
        let part_of = Resource::named(vocab::gadm::PART_OF);
        assert_eq!(
            g.object_of(&part_of, &NamedNode::new(vocab::rdfs::RANGE)),
            Some(&Term::named(vocab::gadm::ADMINISTRATIVE_UNIT))
        );
    }

    #[test]
    fn ontologies_serialize_as_turtle() {
        for g in [
            lai_ontology(),
            gadm_ontology(),
            corine_ontology(),
            urban_atlas_ontology(),
            osm_ontology(),
            map_ontology(),
        ] {
            let text = crate::turtle::write_turtle(&g);
            let parsed = crate::turtle::parse_turtle(&text).unwrap();
            assert_eq!(parsed.len(), g.len());
        }
    }

    #[test]
    fn clc_class_iri_lookup() {
        assert_eq!(
            clc_class_iri(141).unwrap().as_str(),
            "http://www.app-lab.eu/clc/GreenUrbanAreas"
        );
        assert!(clc_class_iri(999).is_none());
        assert_eq!(clc_parent(141), Some(14));
        assert_eq!(clc_parent(14), Some(1));
        assert_eq!(clc_parent(1), None);
    }
}
