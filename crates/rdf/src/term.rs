//! RDF terms and triples.
//!
//! Terms use `Arc<str>` internally so cloning a term (which the query engine
//! does constantly when producing bindings) is a reference-count bump, not a
//! string copy.

use crate::datetime::{format_datetime, parse_datetime, EpochSeconds};
use crate::vocab;
use std::fmt;
use std::sync::Arc;

/// An IRI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NamedNode(Arc<str>);

impl NamedNode {
    pub fn new(iri: impl Into<String>) -> Self {
        NamedNode(Arc::from(iri.into()))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The part after the last `#` or `/` — the "local name" used when
    /// pretty-printing with prefixes.
    pub fn local_name(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['#', '/']) {
            Some(i) => &s[i + 1..],
            None => s,
        }
    }
}

impl fmt::Display for NamedNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for NamedNode {
    fn from(s: &str) -> Self {
        NamedNode::new(s)
    }
}

/// A blank node with a local label.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    pub fn new(label: impl Into<String>) -> Self {
        BlankNode(Arc::from(label.into()))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF literal: lexical form plus either a datatype IRI or a language tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    value: Arc<str>,
    datatype: NamedNode,
    language: Option<Arc<str>>,
}

/// One shared `NamedNode` per well-known datatype IRI: the typed-literal
/// constructors below run in the query engine's per-row hot path, where
/// re-interning the datatype string for every value is pure allocation
/// churn — cloning a cached node is a reference-count bump.
macro_rules! cached_datatype {
    ($iri:expr) => {{
        static NODE: std::sync::LazyLock<NamedNode> =
            std::sync::LazyLock::new(|| NamedNode::new($iri));
        NODE.clone()
    }};
}

impl Literal {
    /// A plain `xsd:string` literal.
    pub fn string(value: impl Into<String>) -> Self {
        Literal {
            value: Arc::from(value.into()),
            datatype: cached_datatype!(vocab::xsd::STRING),
            language: None,
        }
    }

    /// A literal with an explicit datatype.
    pub fn typed(value: impl Into<String>, datatype: NamedNode) -> Self {
        Literal {
            value: Arc::from(value.into()),
            datatype,
            language: None,
        }
    }

    /// A language-tagged string.
    pub fn lang(value: impl Into<String>, language: impl Into<String>) -> Self {
        Literal {
            value: Arc::from(value.into()),
            datatype: cached_datatype!(vocab::rdf::LANG_STRING),
            language: Some(Arc::from(language.into())),
        }
    }

    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), cached_datatype!(vocab::xsd::INTEGER))
    }

    pub fn double(v: f64) -> Self {
        Literal::typed(v.to_string(), cached_datatype!(vocab::xsd::DOUBLE))
    }

    pub fn float(v: f64) -> Self {
        Literal::typed(v.to_string(), cached_datatype!(vocab::xsd::FLOAT))
    }

    pub fn boolean(v: bool) -> Self {
        Literal::typed(v.to_string(), cached_datatype!(vocab::xsd::BOOLEAN))
    }

    pub fn datetime(t: EpochSeconds) -> Self {
        Literal::typed(format_datetime(t), cached_datatype!(vocab::xsd::DATE_TIME))
    }

    /// A GeoSPARQL `geo:wktLiteral`.
    pub fn wkt(wkt: impl Into<String>) -> Self {
        Literal::typed(wkt, cached_datatype!(vocab::geo::WKT_LITERAL))
    }

    pub fn value(&self) -> &str {
        &self.value
    }

    pub fn datatype(&self) -> &NamedNode {
        &self.datatype
    }

    pub fn language(&self) -> Option<&str> {
        self.language.as_deref()
    }

    pub fn is_wkt(&self) -> bool {
        self.datatype.as_str() == vocab::geo::WKT_LITERAL
    }

    /// Numeric interpretation, if the datatype is numeric (or the lexical
    /// form parses as a number for untyped comparisons).
    pub fn as_f64(&self) -> Option<f64> {
        match self.datatype.as_str() {
            vocab::xsd::INTEGER
            | vocab::xsd::DOUBLE
            | vocab::xsd::FLOAT
            | vocab::xsd::DECIMAL
            | vocab::xsd::LONG
            | vocab::xsd::INT => self.value.parse().ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|f| f as i64)
    }

    pub fn as_bool(&self) -> Option<bool> {
        if self.datatype.as_str() == vocab::xsd::BOOLEAN {
            match self.value() {
                "true" | "1" => Some(true),
                "false" | "0" => Some(false),
                _ => None,
            }
        } else {
            None
        }
    }

    /// Epoch seconds, when the literal is an `xsd:dateTime`/`xsd:date`.
    pub fn as_datetime(&self) -> Option<EpochSeconds> {
        match self.datatype.as_str() {
            vocab::xsd::DATE_TIME | vocab::xsd::DATE => parse_datetime(&self.value).ok(),
            _ => None,
        }
    }

    /// Parse the literal as a geometry when it is a `geo:wktLiteral`.
    pub fn as_geometry(&self) -> Option<applab_geo::Geometry> {
        if self.is_wkt() {
            applab_geo::parse_wkt(&self.value).ok()
        } else {
            None
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.value))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")
        } else if self.datatype.as_str() != vocab::xsd::STRING {
            write!(f, "^^{}", self.datatype)
        } else {
            Ok(())
        }
    }
}

/// Escape a literal's lexical form for N-Triples/Turtle output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// A subject: IRI or blank node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    Named(NamedNode),
    Blank(BlankNode),
}

impl Resource {
    pub fn named(iri: impl Into<String>) -> Self {
        Resource::Named(NamedNode::new(iri))
    }

    pub fn blank(label: impl Into<String>) -> Self {
        Resource::Blank(BlankNode::new(label))
    }

    pub fn as_named(&self) -> Option<&NamedNode> {
        match self {
            Resource::Named(n) => Some(n),
            Resource::Blank(_) => None,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Named(n) => n.fmt(f),
            Resource::Blank(b) => b.fmt(f),
        }
    }
}

impl From<NamedNode> for Resource {
    fn from(n: NamedNode) -> Self {
        Resource::Named(n)
    }
}

impl From<BlankNode> for Resource {
    fn from(b: BlankNode) -> Self {
        Resource::Blank(b)
    }
}

/// Any RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Named(NamedNode),
    Blank(BlankNode),
    Literal(Literal),
}

impl Term {
    pub fn named(iri: impl Into<String>) -> Self {
        Term::Named(NamedNode::new(iri))
    }

    pub fn as_named(&self) -> Option<&NamedNode> {
        match self {
            Term::Named(n) => Some(n),
            _ => None,
        }
    }

    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_resource(&self) -> Option<Resource> {
        match self {
            Term::Named(n) => Some(Resource::Named(n.clone())),
            Term::Blank(b) => Some(Resource::Blank(b.clone())),
            Term::Literal(_) => None,
        }
    }

    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Named(n) => n.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

impl From<NamedNode> for Term {
    fn from(n: NamedNode) -> Self {
        Term::Named(n)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::Blank(b)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

impl From<Resource> for Term {
    fn from(r: Resource) -> Self {
        match r {
            Resource::Named(n) => Term::Named(n),
            Resource::Blank(b) => Term::Blank(b),
        }
    }
}

/// An RDF triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Resource,
    pub predicate: NamedNode,
    pub object: Term,
}

impl Triple {
    pub fn new(
        subject: impl Into<Resource>,
        predicate: impl Into<NamedNode>,
        object: impl Into<Term>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors() {
        assert_eq!(Literal::integer(42).as_f64(), Some(42.0));
        assert_eq!(Literal::double(2.5).as_f64(), Some(2.5));
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(Literal::string("hi").as_f64(), None);
        assert!(Literal::wkt("POINT (1 2)").is_wkt());
    }

    #[test]
    fn wkt_literal_parses_geometry() {
        let l = Literal::wkt("POINT (2.35 48.85)");
        let g = l.as_geometry().unwrap();
        assert_eq!(g, applab_geo::Geometry::point(2.35, 48.85));
        assert!(Literal::string("POINT (1 2)").as_geometry().is_none());
        assert!(Literal::wkt("NOT WKT").as_geometry().is_none());
    }

    #[test]
    fn datetime_literal_roundtrip() {
        let l = Literal::datetime(1_497_484_800);
        assert_eq!(l.value(), "2017-06-15T00:00:00Z");
        assert_eq!(l.as_datetime(), Some(1_497_484_800));
    }

    #[test]
    fn display_forms() {
        let t = Triple::new(
            Resource::named("http://ex.org/a"),
            NamedNode::new("http://ex.org/p"),
            Literal::lang("chat", "fr"),
        );
        assert_eq!(
            t.to_string(),
            "<http://ex.org/a> <http://ex.org/p> \"chat\"@fr ."
        );
        let t2 = Triple::new(
            Resource::blank("b0"),
            NamedNode::new("http://ex.org/p"),
            Literal::integer(7),
        );
        assert!(t2.to_string().starts_with("_:b0 "));
        assert!(t2
            .to_string()
            .contains("\"7\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_literal("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let l = Literal::string("say \"hi\"");
        assert_eq!(l.to_string(), "\"say \\\"hi\\\"\"");
    }

    #[test]
    fn local_names() {
        assert_eq!(
            NamedNode::new("http://ex.org/ns#Thing").local_name(),
            "Thing"
        );
        assert_eq!(
            NamedNode::new("http://ex.org/ns/Thing").local_name(),
            "Thing"
        );
        assert_eq!(NamedNode::new("urn:x").local_name(), "urn:x");
    }

    #[test]
    fn term_conversions() {
        let n = NamedNode::new("http://ex.org/a");
        let t: Term = n.clone().into();
        assert_eq!(t.as_named(), Some(&n));
        assert_eq!(t.as_resource(), Some(Resource::Named(n)));
        let lit: Term = Literal::string("x").into();
        assert!(lit.as_resource().is_none());
        assert!(lit.is_literal());
    }
}
