//! Minimal `xsd:dateTime` / `xsd:date` handling.
//!
//! The App Lab data model needs exactly one temporal capability: totally
//! ordered timestamps that round-trip through the lexical forms found in
//! Copernicus metadata (`2017-06-15T00:00:00Z`). We represent instants as
//! seconds since the Unix epoch (UTC) and implement the proleptic-Gregorian
//! conversions directly (Howard Hinnant's days-from-civil algorithm).

/// Seconds since 1970-01-01T00:00:00Z.
pub type EpochSeconds = i64;

/// Days since 1970-01-01 for a proleptic Gregorian date.
pub fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (month as i64 + 9) % 12; // March=0 ... February=11
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Build an epoch timestamp from calendar components (UTC).
pub fn timestamp(
    year: i64,
    month: u32,
    day: u32,
    hour: u32,
    minute: u32,
    second: u32,
) -> EpochSeconds {
    days_from_civil(year, month, day) * 86_400
        + hour as i64 * 3_600
        + minute as i64 * 60
        + second as i64
}

/// Error parsing a dateTime lexical form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateTimeParseError(pub String);

impl std::fmt::Display for DateTimeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid xsd:dateTime: {}", self.0)
    }
}

impl std::error::Error for DateTimeParseError {}

/// Parse `YYYY-MM-DDTHH:MM:SS[.fff][Z|±HH:MM]` or a bare `YYYY-MM-DD`.
/// Fractional seconds are truncated; offsets are applied to produce UTC.
pub fn parse_datetime(s: &str) -> Result<EpochSeconds, DateTimeParseError> {
    let err = || DateTimeParseError(s.to_string());
    let s = s.trim();
    let (date_part, time_part) = match s.split_once('T') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    // Handle a possible leading '-' for negative years.
    let (neg, date_core) = match date_part.strip_prefix('-') {
        Some(stripped) => (true, stripped),
        None => (false, date_part),
    };
    let mut dp = date_core.splitn(3, '-');
    let year: i64 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let year = if neg { -year } else { year };
    let month: u32 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let day: u32 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(err());
    }

    let (mut hour, mut minute, mut second, mut offset) = (0u32, 0u32, 0u32, 0i64);
    if let Some(t) = time_part {
        // Strip timezone.
        let (clock, tz): (&str, Option<&str>) = if let Some(stripped) = t.strip_suffix('Z') {
            (stripped, None)
        } else if let Some(pos) = t.rfind(['+', '-']) {
            if pos > 0 {
                (&t[..pos], Some(&t[pos..]))
            } else {
                (t, None)
            }
        } else {
            (t, None)
        };
        if let Some(tz) = tz {
            let sign = if tz.starts_with('-') { -1 } else { 1 };
            let body = &tz[1..];
            let (h, m) = body.split_once(':').ok_or_else(err)?;
            let h: i64 = h.parse().map_err(|_| err())?;
            let m: i64 = m.parse().map_err(|_| err())?;
            offset = sign * (h * 3600 + m * 60);
        }
        let mut cp = clock.splitn(3, ':');
        hour = cp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        minute = cp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let sec_str = cp.next().unwrap_or("0");
        let sec_str = sec_str.split('.').next().unwrap_or("0");
        second = sec_str.parse().map_err(|_| err())?;
        if hour > 23 || minute > 59 || second > 60 {
            return Err(err());
        }
    }
    Ok(timestamp(year, month, day, hour, minute, second) - offset)
}

/// Format an epoch timestamp as `YYYY-MM-DDTHH:MM:SSZ`.
pub fn format_datetime(t: EpochSeconds) -> String {
    let days = t.div_euclid(86_400);
    let secs = t.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        y,
        m,
        d,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

/// Format only the date part, `YYYY-MM-DD`.
pub fn format_date(t: EpochSeconds) -> String {
    let (y, m, d) = civil_from_days(t.div_euclid(86_400));
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(timestamp(1970, 1, 1, 0, 0, 0), 0);
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_timestamps() {
        // 2017-06-15T00:00:00Z = 1497484800 (verified against `date -d`).
        assert_eq!(timestamp(2017, 6, 15, 0, 0, 0), 1_497_484_800);
        assert_eq!(timestamp(2000, 3, 1, 0, 0, 0), 951_868_800);
    }

    #[test]
    fn parse_full_datetime() {
        assert_eq!(
            parse_datetime("2017-06-15T12:30:45Z").unwrap(),
            1_497_529_845
        );
        assert_eq!(
            parse_datetime("2017-06-15T12:30:45.123Z").unwrap(),
            1_497_529_845
        );
    }

    #[test]
    fn parse_with_offset() {
        // 14:00 at +02:00 is 12:00 UTC.
        assert_eq!(
            parse_datetime("2017-06-15T14:00:00+02:00").unwrap(),
            parse_datetime("2017-06-15T12:00:00Z").unwrap()
        );
        assert_eq!(
            parse_datetime("2017-06-15T10:00:00-02:00").unwrap(),
            parse_datetime("2017-06-15T12:00:00Z").unwrap()
        );
    }

    #[test]
    fn parse_bare_date() {
        assert_eq!(parse_datetime("1970-01-02").unwrap(), 86_400);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_datetime("not a date").is_err());
        assert!(parse_datetime("2017-13-01").is_err());
        assert!(parse_datetime("2017-01-32").is_err());
        assert!(parse_datetime("2017-06-15T25:00:00Z").is_err());
        assert!(parse_datetime("").is_err());
    }

    #[test]
    fn format_roundtrip() {
        for t in [0i64, 1_497_484_800, -86_400, 4_102_444_800] {
            assert_eq!(parse_datetime(&format_datetime(t)).unwrap(), t);
        }
    }

    #[test]
    fn civil_roundtrip_sweep() {
        // Every 97th day over ±200 years.
        let mut day = days_from_civil(1820, 1, 1);
        let end = days_from_civil(2220, 1, 1);
        while day < end {
            let (y, m, d) = civil_from_days(day);
            assert_eq!(days_from_civil(y, m, d), day);
            day += 97;
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(
            days_from_civil(2000, 2, 29) + 1,
            days_from_civil(2000, 3, 1)
        );
        assert_eq!(
            days_from_civil(1900, 2, 28) + 1,
            days_from_civil(1900, 3, 1) // 1900 is not a leap year
        );
    }
}
