//! Turtle (subset) reading and writing.
//!
//! The writer emits prefixed, subject-grouped Turtle using the default
//! prefix table. The parser supports the subset the stack produces and the
//! paper's listings use: `@prefix`/`PREFIX` declarations, IRIs, prefixed
//! names, blank node labels, `a`, predicate lists (`;`), object lists (`,`),
//! string literals with `^^datatype` or `@lang`, and bare numeric/boolean
//! shorthand. Collections `( ... )` and anonymous blank nodes `[ ... ]` are
//! not supported.

use crate::graph::Graph;
use crate::term::{escape_literal, BlankNode, Literal, NamedNode, Resource, Term, Triple};
use crate::vocab;
use std::collections::HashMap;
use std::fmt;

/// Error produced while parsing Turtle / N-Triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    pub message: String,
    pub line: usize,
}

impl fmt::Display for TurtleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Turtle parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TurtleError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Iri(String),
    PrefixedName(String, String),
    BlankNode(String),
    Literal {
        value: String,
        datatype: Option<Box<Token>>,
        lang: Option<String>,
    },
    Number(String),
    Boolean(bool),
    A,
    Dot,
    Semicolon,
    Comma,
    PrefixDecl,
    BaseDecl,
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, TurtleError> {
        Err(TurtleError {
            message: message.into(),
            line: self.line,
        })
    }

    fn skip_ws_and_comments(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'#' => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn peek_byte(&mut self) -> Option<u8> {
        self.skip_ws_and_comments();
        self.bytes.get(self.pos).copied()
    }

    fn read_iri(&mut self) -> Result<String, TurtleError> {
        debug_assert_eq!(self.bytes[self.pos], b'<');
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'>' {
            if self.bytes[self.pos] == b'\n' {
                return self.err("newline inside IRI");
            }
            self.pos += 1;
        }
        if self.pos >= self.bytes.len() {
            return self.err("unterminated IRI");
        }
        let iri = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| TurtleError {
                message: "invalid UTF-8 in IRI".into(),
                line: self.line,
            })?
            .to_string();
        self.pos += 1;
        Ok(iri)
    }

    fn read_string(&mut self) -> Result<String, TurtleError> {
        debug_assert_eq!(self.bytes[self.pos], b'"');
        // Long string form `"""..."""`.
        let long = self.bytes[self.pos..].starts_with(b"\"\"\"");
        self.pos += if long { 3 } else { 1 };
        let mut out = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return self.err("unterminated string literal");
            }
            let b = self.bytes[self.pos];
            if b == b'"' {
                if long {
                    if self.bytes[self.pos..].starts_with(b"\"\"\"") {
                        self.pos += 3;
                        return Ok(out);
                    }
                    out.push('"');
                    self.pos += 1;
                } else {
                    self.pos += 1;
                    return Ok(out);
                }
            } else if b == b'\\' {
                self.pos += 1;
                let esc = self
                    .bytes
                    .get(self.pos)
                    .copied()
                    .ok_or_else(|| TurtleError {
                        message: "dangling escape".into(),
                        line: self.line,
                    })?;
                match esc {
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'u' | b'U' => {
                        let width = if esc == b'u' { 4 } else { 8 };
                        let hex_start = self.pos + 1;
                        let hex_end = hex_start + width;
                        if hex_end > self.bytes.len() {
                            return self.err("truncated unicode escape");
                        }
                        let hex = std::str::from_utf8(&self.bytes[hex_start..hex_end]).unwrap();
                        let code = u32::from_str_radix(hex, 16).map_err(|_| TurtleError {
                            message: format!("invalid unicode escape \\{}{hex}", esc as char),
                            line: self.line,
                        })?;
                        out.push(char::from_u32(code).ok_or_else(|| TurtleError {
                            message: format!("invalid code point U+{code:X}"),
                            line: self.line,
                        })?);
                        self.pos += width;
                    }
                    other => return self.err(format!("unknown escape \\{}", other as char)),
                }
                self.pos += 1;
            } else {
                if b == b'\n' {
                    if !long {
                        return self.err("newline in short string");
                    }
                    self.line += 1;
                }
                // Copy a full UTF-8 sequence.
                let ch_len = utf8_len(b);
                let end = (self.pos + ch_len).min(self.bytes.len());
                out.push_str(
                    std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| TurtleError {
                        message: "invalid UTF-8 in string".into(),
                        line: self.line,
                    })?,
                );
                self.pos = end;
            }
        }
    }

    fn read_word(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric()
                || b == b'_'
                || b == b'-'
                || b == b'.'
                || b == b':'
                || b >= 0x80
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        // A trailing '.' is the statement terminator, not part of the word.
        let mut end = self.pos;
        while end > start && self.bytes[end - 1] == b'.' {
            end -= 1;
        }
        self.pos = end;
        String::from_utf8_lossy(&self.bytes[start..end]).into_owned()
    }

    fn next_token(&mut self) -> Result<Option<Token>, TurtleError> {
        let b = match self.peek_byte() {
            Some(b) => b,
            None => return Ok(None),
        };
        match b {
            b'<' => Ok(Some(Token::Iri(self.read_iri()?))),
            b'"' => {
                let value = self.read_string()?;
                // Optional suffix.
                if self.bytes.get(self.pos) == Some(&b'^')
                    && self.bytes.get(self.pos + 1) == Some(&b'^')
                {
                    self.pos += 2;
                    let dt = match self.peek_byte() {
                        Some(b'<') => Token::Iri(self.read_iri()?),
                        Some(_) => {
                            let w = self.read_word();
                            self.prefixed(&w)?
                        }
                        None => return self.err("expected datatype after ^^"),
                    };
                    Ok(Some(Token::Literal {
                        value,
                        datatype: Some(Box::new(dt)),
                        lang: None,
                    }))
                } else if self.bytes.get(self.pos) == Some(&b'@') {
                    self.pos += 1;
                    let lang = self.read_word();
                    Ok(Some(Token::Literal {
                        value,
                        datatype: None,
                        lang: Some(lang),
                    }))
                } else {
                    Ok(Some(Token::Literal {
                        value,
                        datatype: None,
                        lang: None,
                    }))
                }
            }
            b'_' => {
                if self.bytes.get(self.pos + 1) != Some(&b':') {
                    return self.err("expected ':' after '_'");
                }
                self.pos += 2;
                Ok(Some(Token::BlankNode(self.read_word())))
            }
            b'.' => {
                self.pos += 1;
                Ok(Some(Token::Dot))
            }
            b';' => {
                self.pos += 1;
                Ok(Some(Token::Semicolon))
            }
            b',' => {
                self.pos += 1;
                Ok(Some(Token::Comma))
            }
            b'@' => {
                self.pos += 1;
                let w = self.read_word();
                match w.as_str() {
                    "prefix" => Ok(Some(Token::PrefixDecl)),
                    "base" => Ok(Some(Token::BaseDecl)),
                    other => self.err(format!("unknown directive @{other}")),
                }
            }
            b'-' | b'+' | b'0'..=b'9' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.bytes.len() {
                    let c = self.bytes[self.pos];
                    if c.is_ascii_digit()
                        || c == b'.'
                        || c == b'e'
                        || c == b'E'
                        || c == b'-'
                        || c == b'+'
                    {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let mut end = self.pos;
                // A trailing '.' terminates the statement instead.
                if end > start && self.bytes[end - 1] == b'.' {
                    let body = &self.bytes[start..end - 1];
                    if !body.contains(&b'.') || body.last() == Some(&b'.') {
                        end -= 1;
                        self.pos = end;
                    }
                }
                Ok(Some(Token::Number(
                    String::from_utf8_lossy(&self.bytes[start..end]).into_owned(),
                )))
            }
            _ => {
                let w = self.read_word();
                if w.is_empty() {
                    return self.err(format!("unexpected character {:?}", b as char));
                }
                match w.as_str() {
                    "a" => Ok(Some(Token::A)),
                    "true" => Ok(Some(Token::Boolean(true))),
                    "false" => Ok(Some(Token::Boolean(false))),
                    "PREFIX" | "prefix" => Ok(Some(Token::PrefixDecl)),
                    "BASE" | "base" => Ok(Some(Token::BaseDecl)),
                    _ => self.prefixed(&w).map(Some),
                }
            }
        }
    }

    fn prefixed(&self, word: &str) -> Result<Token, TurtleError> {
        match word.split_once(':') {
            Some((p, l)) => Ok(Token::PrefixedName(p.to_string(), l.to_string())),
            None => self.err(format!("expected prefixed name, found {word:?}")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

struct TurtleParser<'a> {
    lexer: Lexer<'a>,
    prefixes: HashMap<String, String>,
    peeked: Option<Token>,
}

impl<'a> TurtleParser<'a> {
    fn new(input: &'a str) -> Self {
        TurtleParser {
            lexer: Lexer::new(input),
            prefixes: HashMap::new(),
            peeked: None,
        }
    }

    fn next(&mut self) -> Result<Option<Token>, TurtleError> {
        if let Some(t) = self.peeked.take() {
            return Ok(Some(t));
        }
        self.lexer.next_token()
    }

    fn expect(&mut self, what: &str) -> Result<Token, TurtleError> {
        self.next()?.ok_or_else(|| TurtleError {
            message: format!("unexpected end of input, expected {what}"),
            line: self.lexer.line,
        })
    }

    fn resolve(&self, token: Token) -> Result<NamedNode, TurtleError> {
        match token {
            Token::Iri(iri) => Ok(NamedNode::new(iri)),
            Token::PrefixedName(p, l) => {
                let ns = self.prefixes.get(&p).ok_or_else(|| TurtleError {
                    message: format!("undeclared prefix {p:?}"),
                    line: self.lexer.line,
                })?;
                Ok(NamedNode::new(format!("{ns}{l}")))
            }
            other => Err(TurtleError {
                message: format!("expected IRI, found {other:?}"),
                line: self.lexer.line,
            }),
        }
    }

    fn term(&mut self, token: Token) -> Result<Term, TurtleError> {
        match token {
            Token::Iri(_) | Token::PrefixedName(..) => Ok(Term::Named(self.resolve(token)?)),
            Token::BlankNode(label) => Ok(Term::Blank(BlankNode::new(label))),
            Token::Literal {
                value,
                datatype,
                lang,
            } => {
                if let Some(lang) = lang {
                    Ok(Term::Literal(Literal::lang(value, lang)))
                } else if let Some(dt) = datatype {
                    let dt = self.resolve(*dt)?;
                    Ok(Term::Literal(Literal::typed(value, dt)))
                } else {
                    Ok(Term::Literal(Literal::string(value)))
                }
            }
            Token::Number(n) => {
                let dt = if n.contains(['.', 'e', 'E']) {
                    vocab::xsd::DOUBLE
                } else {
                    vocab::xsd::INTEGER
                };
                Ok(Term::Literal(Literal::typed(n, NamedNode::new(dt))))
            }
            Token::Boolean(b) => Ok(Term::Literal(Literal::boolean(b))),
            other => Err(TurtleError {
                message: format!("expected term, found {other:?}"),
                line: self.lexer.line,
            }),
        }
    }

    fn parse(&mut self) -> Result<Graph, TurtleError> {
        let mut graph = Graph::new();
        while let Some(token) = self.next()? {
            match token {
                Token::PrefixDecl => {
                    let name = self.expect("prefix name")?;
                    let (prefix, rest) = match name {
                        Token::PrefixedName(p, l) if l.is_empty() => (p, None),
                        Token::PrefixedName(p, l) => (p, Some(l)),
                        other => {
                            return Err(TurtleError {
                                message: format!("expected prefix name, found {other:?}"),
                                line: self.lexer.line,
                            })
                        }
                    };
                    if rest.is_some() {
                        return Err(TurtleError {
                            message: "prefix declarations must end with ':'".into(),
                            line: self.lexer.line,
                        });
                    }
                    let iri = match self.expect("prefix IRI")? {
                        Token::Iri(iri) => iri,
                        other => {
                            return Err(TurtleError {
                                message: format!("expected IRI, found {other:?}"),
                                line: self.lexer.line,
                            })
                        }
                    };
                    self.prefixes.insert(prefix, iri);
                    // Optional trailing dot (required by @prefix, absent for
                    // SPARQL-style PREFIX).
                    if let Some(t) = self.next()? {
                        if t != Token::Dot {
                            self.peeked = Some(t);
                        }
                    }
                }
                Token::BaseDecl => {
                    // Accept and ignore: all our IRIs are absolute.
                    let _ = self.expect("base IRI")?;
                    if let Some(t) = self.next()? {
                        if t != Token::Dot {
                            self.peeked = Some(t);
                        }
                    }
                }
                subject_token => {
                    let subject = match &subject_token {
                        Token::BlankNode(label) => Resource::Blank(BlankNode::new(label.clone())),
                        _ => Resource::Named(self.resolve(subject_token)?),
                    };
                    self.predicate_object_list(&mut graph, &subject)?;
                }
            }
        }
        Ok(graph)
    }

    fn predicate_object_list(
        &mut self,
        graph: &mut Graph,
        subject: &Resource,
    ) -> Result<(), TurtleError> {
        loop {
            let pred_token = self.expect("predicate")?;
            let predicate = match pred_token {
                Token::A => NamedNode::new(vocab::rdf::TYPE),
                other => self.resolve(other)?,
            };
            loop {
                let obj_token = self.expect("object")?;
                let object = self.term(obj_token)?;
                graph.insert(Triple::new(subject.clone(), predicate.clone(), object));
                match self.expect("',', ';' or '.'")? {
                    Token::Comma => continue,
                    Token::Semicolon => break,
                    Token::Dot => return Ok(()),
                    other => {
                        return Err(TurtleError {
                            message: format!("expected ',', ';' or '.', found {other:?}"),
                            line: self.lexer.line,
                        })
                    }
                }
            }
            // After ';' there may be a '.' directly (trailing semicolon).
            if let Some(t) = self.next()? {
                if t == Token::Dot {
                    return Ok(());
                }
                self.peeked = Some(t);
            } else {
                return Err(TurtleError {
                    message: "unexpected end of input in predicate list".into(),
                    line: self.lexer.line,
                });
            }
        }
    }
}

/// Parse a Turtle document into a [`Graph`].
pub fn parse_turtle(input: &str) -> Result<Graph, TurtleError> {
    TurtleParser::new(input).parse()
}

/// Serialize a graph as Turtle using the default prefix table, grouped by
/// subject.
pub fn write_turtle(graph: &Graph) -> String {
    let prefixes = vocab::default_prefixes();
    let mut out = String::new();
    // Emit only the prefixes actually used.
    let mut used: Vec<(&str, &str)> = Vec::new();
    let uses = |ns: &str, graph: &Graph| {
        graph.iter().any(|t| {
            let s = match &t.subject {
                Resource::Named(n) => n.as_str().starts_with(ns),
                Resource::Blank(_) => false,
            };
            s || t.predicate.as_str().starts_with(ns)
                || match &t.object {
                    Term::Named(n) => n.as_str().starts_with(ns),
                    Term::Literal(l) => l.datatype().as_str().starts_with(ns),
                    Term::Blank(_) => false,
                }
        })
    };
    for (p, ns) in &prefixes {
        if uses(ns, graph) {
            used.push((p, ns));
        }
    }
    for (p, ns) in &used {
        out.push_str(&format!("@prefix {p}: <{ns}> .\n"));
    }
    if !used.is_empty() {
        out.push('\n');
    }

    let shorten = |n: &NamedNode| -> String {
        for (p, ns) in &used {
            if let Some(local) = n.as_str().strip_prefix(ns) {
                // Only shorten when the local part is a simple name.
                if !local.is_empty()
                    && local
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return format!("{p}:{local}");
                }
            }
        }
        format!("<{}>", n.as_str())
    };
    let term_str = |t: &Term| -> String {
        match t {
            Term::Named(n) => shorten(n),
            Term::Blank(b) => format!("_:{}", b.as_str()),
            Term::Literal(l) => {
                let body = format!("\"{}\"", escape_literal(l.value()));
                if let Some(lang) = l.language() {
                    format!("{body}@{lang}")
                } else if l.datatype().as_str() == vocab::xsd::STRING {
                    body
                } else {
                    format!("{body}^^{}", shorten(l.datatype()))
                }
            }
        }
    };

    for subject in graph.subjects() {
        let s_str = match subject {
            Resource::Named(n) => shorten(n),
            Resource::Blank(b) => format!("_:{}", b.as_str()),
        };
        let triples: Vec<&Triple> = graph.about(subject).collect();
        out.push_str(&s_str);
        for (i, t) in triples.iter().enumerate() {
            let p_str = if t.predicate.as_str() == vocab::rdf::TYPE {
                "a".to_string()
            } else {
                shorten(&t.predicate)
            };
            if i == 0 {
                out.push(' ');
            } else {
                out.push_str(" ;\n    ");
            }
            out.push_str(&format!("{p_str} {}", term_str(&t.object)));
        }
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_document() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:a a ex:Thing ;
    ex:name "Alpha" ;
    ex:value "3.5"^^xsd:double ;
    ex:count 7 ;
    ex:tags "x", "y" .
_:b0 ex:ref ex:a .
"#;
        let g = parse_turtle(doc).unwrap();
        assert_eq!(g.len(), 7);
        let a = Resource::named("http://ex.org/a");
        assert_eq!(g.about(&a).count(), 6);
        let count = g
            .object_of(&a, &NamedNode::new("http://ex.org/count"))
            .unwrap();
        assert_eq!(count.as_literal().unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn parse_language_tags_and_booleans() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:a ex:label "chat"@fr ; ex:flag true .
"#;
        let g = parse_turtle(doc).unwrap();
        let a = Resource::named("http://ex.org/a");
        let label = g
            .object_of(&a, &NamedNode::new("http://ex.org/label"))
            .unwrap();
        assert_eq!(label.as_literal().unwrap().language(), Some("fr"));
        let flag = g
            .object_of(&a, &NamedNode::new("http://ex.org/flag"))
            .unwrap();
        assert_eq!(flag.as_literal().unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:a ex:s "line\nbreak \"quoted\" é" .
"#;
        let g = parse_turtle(doc).unwrap();
        let a = Resource::named("http://ex.org/a");
        let s = g.object_of(&a, &NamedNode::new("http://ex.org/s")).unwrap();
        assert_eq!(s.as_literal().unwrap().value(), "line\nbreak \"quoted\" é");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_turtle("ex:a ex:b ex:c .").is_err()); // undeclared prefix
        assert!(parse_turtle("<http://a> <http://b> \"unterminated .").is_err());
        assert!(parse_turtle("@prefix ex <http://e/> .").is_err());
        assert!(parse_turtle("<http://a> <http://b> <http://c>").is_err()); // no dot
    }

    #[test]
    fn writer_roundtrip() {
        let mut g = Graph::new();
        let s = Resource::named(format!("{}obs1", vocab::lai::NS));
        g.add(
            s.clone(),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::lai::OBSERVATION),
        );
        g.add(
            s.clone(),
            NamedNode::new(vocab::lai::HAS_LAI),
            Literal::float(3.25),
        );
        g.add(
            s.clone(),
            NamedNode::new(vocab::geo::HAS_GEOMETRY),
            Term::Blank(BlankNode::new("g1")),
        );
        g.add(
            Resource::Blank(BlankNode::new("g1")),
            NamedNode::new(vocab::geo::AS_WKT),
            Literal::wkt("POINT (2.35 48.85)"),
        );
        let text = write_turtle(&g);
        assert!(text.contains("@prefix lai:"));
        assert!(text.contains("a lai:Observation"));
        let parsed = parse_turtle(&text).unwrap();
        assert_eq!(parsed.len(), g.len());
        for t in g.iter() {
            assert!(parsed.contains(t), "missing after roundtrip: {t}");
        }
    }

    #[test]
    fn sparql_style_prefix() {
        let doc = "PREFIX ex: <http://ex.org/>\nex:a ex:b ex:c .";
        let g = parse_turtle(doc).unwrap();
        assert_eq!(g.len(), 1);
    }
}
