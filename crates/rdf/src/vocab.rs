//! Vocabulary constants: the namespaces and terms the paper's stack uses.
//!
//! Namespaces follow the paper: the W3C core vocabularies, OGC GeoSPARQL
//! (`geo:` ontology, `geof:` functions, `sf:` simple-features classes), the
//! W3C Time ontology, the RDF Data Cube vocabulary (`qb:`), schema.org, and
//! the App-Lab-specific namespaces introduced in Section 4 (`lai:`, `gadm:`,
//! `clc:`, `ua:`, `osm:`).

use crate::term::NamedNode;

/// Build a [`NamedNode`] by concatenating a namespace and a local name.
pub fn iri(namespace: &str, local: &str) -> NamedNode {
    let mut s = String::with_capacity(namespace.len() + local.len());
    s.push_str(namespace);
    s.push_str(local);
    NamedNode::new(s)
}

pub mod rdf {
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
}

pub mod rdfs {
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    pub const CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
}

pub mod owl {
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    pub const OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    pub const DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
    pub const ONTOLOGY: &str = "http://www.w3.org/2002/07/owl#Ontology";
    pub const SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
}

pub mod xsd {
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    pub const ANY_URI: &str = "http://www.w3.org/2001/XMLSchema#anyURI";
}

/// The GeoSPARQL ontology namespace (`geo:`).
pub mod geo {
    pub const NS: &str = "http://www.opengis.net/ont/geosparql#";
    pub const FEATURE: &str = "http://www.opengis.net/ont/geosparql#Feature";
    pub const GEOMETRY: &str = "http://www.opengis.net/ont/geosparql#Geometry";
    pub const SPATIAL_OBJECT: &str = "http://www.opengis.net/ont/geosparql#SpatialObject";
    pub const HAS_GEOMETRY: &str = "http://www.opengis.net/ont/geosparql#hasGeometry";
    pub const AS_WKT: &str = "http://www.opengis.net/ont/geosparql#asWKT";
    pub const WKT_LITERAL: &str = "http://www.opengis.net/ont/geosparql#wktLiteral";
}

/// The GeoSPARQL function namespace (`geof:`).
pub mod geof {
    pub const NS: &str = "http://www.opengis.net/def/function/geosparql/";
    pub const SF_INTERSECTS: &str = "http://www.opengis.net/def/function/geosparql/sfIntersects";
    pub const SF_WITHIN: &str = "http://www.opengis.net/def/function/geosparql/sfWithin";
    pub const SF_CONTAINS: &str = "http://www.opengis.net/def/function/geosparql/sfContains";
    pub const SF_TOUCHES: &str = "http://www.opengis.net/def/function/geosparql/sfTouches";
    pub const SF_EQUALS: &str = "http://www.opengis.net/def/function/geosparql/sfEquals";
    pub const SF_DISJOINT: &str = "http://www.opengis.net/def/function/geosparql/sfDisjoint";
    pub const SF_OVERLAPS: &str = "http://www.opengis.net/def/function/geosparql/sfOverlaps";
    pub const SF_CROSSES: &str = "http://www.opengis.net/def/function/geosparql/sfCrosses";
    pub const DISTANCE: &str = "http://www.opengis.net/def/function/geosparql/distance";
    pub const BUFFER: &str = "http://www.opengis.net/def/function/geosparql/buffer";
    pub const ENVELOPE: &str = "http://www.opengis.net/def/function/geosparql/envelope";
    pub const AREA: &str = "http://www.opengis.net/def/function/geosparql/area";
}

/// The OGC simple-features class namespace (`sf:`).
pub mod sf {
    pub const NS: &str = "http://www.opengis.net/ont/sf#";
    pub const POINT: &str = "http://www.opengis.net/ont/sf#Point";
    pub const POLYGON: &str = "http://www.opengis.net/ont/sf#Polygon";
    pub const MULTI_POLYGON: &str = "http://www.opengis.net/ont/sf#MultiPolygon";
    pub const LINE_STRING: &str = "http://www.opengis.net/ont/sf#LineString";
}

/// The W3C Time ontology (`time:`).
pub mod time {
    pub const NS: &str = "http://www.w3.org/2006/time#";
    pub const INSTANT: &str = "http://www.w3.org/2006/time#Instant";
    pub const INTERVAL: &str = "http://www.w3.org/2006/time#Interval";
    pub const HAS_TIME: &str = "http://www.w3.org/2006/time#hasTime";
    pub const IN_XSD_DATE_TIME: &str = "http://www.w3.org/2006/time#inXSDDateTime";
    pub const HAS_BEGINNING: &str = "http://www.w3.org/2006/time#hasBeginning";
    pub const HAS_END: &str = "http://www.w3.org/2006/time#hasEnd";
}

/// The RDF Data Cube vocabulary (`qb:`), reused by the LAI ontology (Fig. 2).
pub mod qb {
    pub const NS: &str = "http://purl.org/linked-data/cube#";
    pub const DATA_SET: &str = "http://purl.org/linked-data/cube#DataSet";
    pub const OBSERVATION: &str = "http://purl.org/linked-data/cube#Observation";
    pub const DATA_SET_PROP: &str = "http://purl.org/linked-data/cube#dataSet";
    pub const MEASURE_PROPERTY: &str = "http://purl.org/linked-data/cube#MeasureProperty";
    pub const DIMENSION_PROPERTY: &str = "http://purl.org/linked-data/cube#DimensionProperty";
}

/// schema.org, used by the dataset catalog (Section 5).
pub mod schema {
    pub const NS: &str = "https://schema.org/";
    pub const DATASET: &str = "https://schema.org/Dataset";
    pub const NAME: &str = "https://schema.org/name";
    pub const DESCRIPTION: &str = "https://schema.org/description";
    pub const KEYWORDS: &str = "https://schema.org/keywords";
    pub const CREATOR: &str = "https://schema.org/creator";
    pub const SPATIAL_COVERAGE: &str = "https://schema.org/spatialCoverage";
    pub const TEMPORAL_COVERAGE: &str = "https://schema.org/temporalCoverage";
    pub const DISTRIBUTION: &str = "https://schema.org/distribution";
    pub const LICENSE: &str = "https://schema.org/license";
    pub const URL: &str = "https://schema.org/url";
}

/// The App Lab LAI ontology namespace (Figure 2).
pub mod lai {
    pub const NS: &str = "http://www.app-lab.eu/lai/";
    pub const OBSERVATION: &str = "http://www.app-lab.eu/lai/Observation";
    pub const LAI: &str = "http://www.app-lab.eu/lai/lai";
    pub const HAS_LAI: &str = "http://www.app-lab.eu/lai/hasLai";
}

/// The App Lab GADM ontology namespace (Figure 3).
pub mod gadm {
    pub const NS: &str = "http://www.app-lab.eu/gadm/";
    pub const ADMINISTRATIVE_UNIT: &str = "http://www.app-lab.eu/gadm/AdministrativeUnit";
    pub const HAS_NAME: &str = "http://www.app-lab.eu/gadm/hasName";
    pub const HAS_LEVEL: &str = "http://www.app-lab.eu/gadm/hasLevel";
    pub const HAS_COUNTRY: &str = "http://www.app-lab.eu/gadm/hasCountry";
    pub const PART_OF: &str = "http://www.app-lab.eu/gadm/partOf";
}

/// The App Lab CORINE land cover ontology namespace (Section 4).
pub mod clc {
    pub const NS: &str = "http://www.app-lab.eu/clc/";
    pub const CORINE_AREA: &str = "http://www.app-lab.eu/clc/CorineArea";
    pub const CORINE_VALUE: &str = "http://www.app-lab.eu/clc/CorineValue";
    pub const HAS_CORINE_VALUE: &str = "http://www.app-lab.eu/clc/hasCorineValue";
    pub const HAS_CODE: &str = "http://www.app-lab.eu/clc/hasCode";
    /// INSPIRE theme superclass referenced by the paper.
    pub const INSPIRE_LAND_COVER_UNIT: &str = "http://inspire.ec.europa.eu/ont/lcv#LandCoverUnit";
}

/// The App Lab Urban Atlas ontology namespace (Section 4).
pub mod ua {
    pub const NS: &str = "http://www.app-lab.eu/ua/";
    pub const URBAN_AREA: &str = "http://www.app-lab.eu/ua/UrbanAtlasArea";
    pub const HAS_CLASS: &str = "http://www.app-lab.eu/ua/hasClass";
    pub const HAS_POPULATION: &str = "http://www.app-lab.eu/ua/hasPopulation";
}

/// The App Lab OpenStreetMap ontology namespace (Section 4).
pub mod osm {
    pub const NS: &str = "http://www.app-lab.eu/osm/";
    pub const POI: &str = "http://www.app-lab.eu/osm/PointOfInterest";
    pub const POI_TYPE: &str = "http://www.app-lab.eu/osm/poiType";
    pub const HAS_NAME: &str = "http://www.app-lab.eu/osm/hasName";
    pub const PARK: &str = "http://www.app-lab.eu/osm/park";
    pub const FOREST: &str = "http://www.app-lab.eu/osm/forest";
    pub const INDUSTRIAL: &str = "http://www.app-lab.eu/osm/industrial";
}

/// The Sextant map ontology namespace (Section 3.3).
pub mod map {
    pub const NS: &str = "http://www.app-lab.eu/map/";
    pub const MAP: &str = "http://www.app-lab.eu/map/Map";
    pub const LAYER: &str = "http://www.app-lab.eu/map/Layer";
    pub const HAS_LAYER: &str = "http://www.app-lab.eu/map/hasLayer";
    pub const HAS_TITLE: &str = "http://www.app-lab.eu/map/hasTitle";
    pub const HAS_SOURCE: &str = "http://www.app-lab.eu/map/hasSource";
    pub const HAS_STYLE: &str = "http://www.app-lab.eu/map/hasStyle";
    pub const HAS_ORDER: &str = "http://www.app-lab.eu/map/hasOrder";
    pub const HAS_TIMESTAMP: &str = "http://www.app-lab.eu/map/hasTimestamp";
}

/// The default prefix table used by the Turtle writer and the SPARQL parser.
pub fn default_prefixes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("rdf", rdf::NS),
        ("rdfs", rdfs::NS),
        ("owl", owl::NS),
        ("xsd", xsd::NS),
        ("geo", geo::NS),
        ("geof", geof::NS),
        ("sf", sf::NS),
        ("time", time::NS),
        ("qb", qb::NS),
        ("schema", schema::NS),
        ("lai", lai::NS),
        ("gadm", gadm::NS),
        ("clc", clc::NS),
        ("ua", ua::NS),
        ("osm", osm::NS),
        ("map", map::NS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_concatenation() {
        let n = iri(lai::NS, "Observation");
        assert_eq!(n.as_str(), lai::OBSERVATION);
    }

    #[test]
    fn prefixes_resolve_their_terms() {
        let prefixes = default_prefixes();
        for (_, ns) in &prefixes {
            assert!(ns.starts_with("http"));
        }
        // Every constant in geof lives in the geof namespace.
        assert!(geof::SF_INTERSECTS.starts_with(geof::NS));
        assert!(geo::AS_WKT.starts_with(geo::NS));
        assert!(lai::HAS_LAI.starts_with(lai::NS));
    }

    #[test]
    fn no_duplicate_prefixes() {
        let prefixes = default_prefixes();
        let mut names: Vec<&str> = prefixes.iter().map(|(p, _)| *p).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), prefixes.len());
    }
}
