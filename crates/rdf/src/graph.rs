//! An in-memory RDF graph with pattern matching.
//!
//! [`Graph`] is the interchange container between pipeline stages
//! (GeoTriples output, interlinking input, Sextant layers, ontologies). It is
//! deliberately simple — deduplicated insertion order plus a subject index.
//! Query-optimised storage lives in `applab-store`.

use crate::term::{NamedNode, Resource, Term, Triple};
use std::collections::{HashMap, HashSet};

/// A deduplicating, insertion-ordered triple container.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    triples: Vec<Triple>,
    seen: HashSet<Triple>,
    by_subject: HashMap<Resource, Vec<usize>>,
}

impl Graph {
    pub fn new() -> Self {
        Graph::default()
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Insert a triple; returns `false` if it was already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        if self.seen.contains(&triple) {
            return false;
        }
        self.seen.insert(triple.clone());
        self.by_subject
            .entry(triple.subject.clone())
            .or_default()
            .push(self.triples.len());
        self.triples.push(triple);
        true
    }

    /// Insert a (subject, predicate, object) without building a Triple first.
    pub fn add(
        &mut self,
        subject: impl Into<Resource>,
        predicate: impl Into<NamedNode>,
        object: impl Into<Term>,
    ) -> bool {
        self.insert(Triple::new(subject, predicate, object))
    }

    pub fn contains(&self, triple: &Triple) -> bool {
        self.seen.contains(triple)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// All triples with the given subject.
    pub fn about<'a>(&'a self, subject: &Resource) -> impl Iterator<Item = &'a Triple> {
        self.by_subject
            .get(subject)
            .into_iter()
            .flatten()
            .map(move |&i| &self.triples[i])
    }

    /// Triples matching an optional (s, p, o) pattern; `None` is a wildcard.
    pub fn matching<'a>(
        &'a self,
        subject: Option<&'a Resource>,
        predicate: Option<&'a NamedNode>,
        object: Option<&'a Term>,
    ) -> Box<dyn Iterator<Item = &'a Triple> + 'a> {
        let filter = move |t: &&Triple| {
            predicate.is_none_or(|p| &t.predicate == p) && object.is_none_or(|o| &t.object == o)
        };
        match subject {
            Some(s) => Box::new(self.about(s).filter(filter)),
            None => Box::new(self.triples.iter().filter(filter)),
        }
    }

    /// The first object of (subject, predicate, ?o), if any.
    pub fn object_of(&self, subject: &Resource, predicate: &NamedNode) -> Option<&Term> {
        self.about(subject)
            .find(|t| &t.predicate == predicate)
            .map(|t| &t.object)
    }

    /// All distinct subjects, in first-appearance order.
    pub fn subjects(&self) -> Vec<&Resource> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for t in &self.triples {
            if seen.insert(&t.subject) {
                out.push(&t.subject);
            }
        }
        out
    }

    /// Subjects that have `rdf:type` equal to `class`.
    pub fn instances_of<'a>(
        &'a self,
        class: &'a NamedNode,
    ) -> impl Iterator<Item = &'a Resource> + 'a {
        let rdf_type = NamedNode::new(crate::vocab::rdf::TYPE);
        let class_term = Term::Named(class.clone());
        self.triples.iter().filter_map(move |t| {
            (t.predicate == rdf_type && t.object == class_term).then_some(&t.subject)
        })
    }

    /// Merge another graph into this one; returns the number of new triples.
    pub fn extend_from(&mut self, other: &Graph) -> usize {
        let mut added = 0;
        for t in other.iter() {
            if self.insert(t.clone()) {
                added += 1;
            }
        }
        added
    }
}

impl PartialEq for Graph {
    /// Set equality: insertion order does not matter.
    fn eq(&self, other: &Self) -> bool {
        self.seen == other.seen
    }
}

impl Eq for Graph {}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }
}

impl IntoIterator for Graph {
    type Item = Triple;
    type IntoIter = std::vec::IntoIter<Triple>;

    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;
    use crate::vocab;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let park = Resource::named("http://ex.org/park1");
        g.add(
            park.clone(),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::osm::POI),
        );
        g.add(
            park.clone(),
            NamedNode::new(vocab::osm::HAS_NAME),
            Literal::string("Bois de Boulogne"),
        );
        g.add(
            Resource::named("http://ex.org/park2"),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::osm::POI),
        );
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = sample();
        let before = g.len();
        let dup = g.iter().next().unwrap().clone();
        assert!(!g.insert(dup));
        assert_eq!(g.len(), before);
    }

    #[test]
    fn matching_patterns() {
        let g = sample();
        let park = Resource::named("http://ex.org/park1");
        let type_pred = NamedNode::new(vocab::rdf::TYPE);
        assert_eq!(g.matching(Some(&park), None, None).count(), 2);
        assert_eq!(g.matching(None, Some(&type_pred), None).count(), 2);
        let poi = Term::named(vocab::osm::POI);
        assert_eq!(g.matching(None, Some(&type_pred), Some(&poi)).count(), 2);
        assert_eq!(g.matching(None, None, None).count(), 3);
    }

    #[test]
    fn object_of_lookup() {
        let g = sample();
        let park = Resource::named("http://ex.org/park1");
        let name = g
            .object_of(&park, &NamedNode::new(vocab::osm::HAS_NAME))
            .unwrap();
        assert_eq!(name.as_literal().unwrap().value(), "Bois de Boulogne");
        assert!(g
            .object_of(&park, &NamedNode::new("http://ex.org/missing"))
            .is_none());
    }

    #[test]
    fn instances_of_class() {
        let g = sample();
        let poi = NamedNode::new(vocab::osm::POI);
        assert_eq!(g.instances_of(&poi).count(), 2);
    }

    #[test]
    fn extend_from_counts_new_only() {
        let mut g = sample();
        let g2 = sample();
        assert_eq!(g.extend_from(&g2), 0);
        let mut g3 = Graph::new();
        g3.add(
            Resource::named("http://ex.org/x"),
            NamedNode::new(vocab::rdfs::LABEL),
            Literal::string("x"),
        );
        assert_eq!(g.extend_from(&g3), 1);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn subjects_in_order() {
        let g = sample();
        let subs = g.subjects();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0], &Resource::named("http://ex.org/park1"));
    }
}
