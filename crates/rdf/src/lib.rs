//! RDF data model and I/O for the Copernicus App Lab reproduction.
//!
//! Provides the term/triple/graph model shared by the whole stack, N-Triples
//! and Turtle (subset) reading and writing, the vocabularies the paper uses
//! (GeoSPARQL `geo:`/`geof:`, W3C Time, the RDF Data Cube vocabulary `qb:`,
//! and the App Lab namespaces `lai:`, `gadm:`, `clc:`, `ua:`, `osm:`), plus
//! the INSPIRE-compliant ontologies of Figures 2 and 3 of the paper expressed
//! as code.
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod datetime;
pub mod graph;
pub mod ntriples;
pub mod ontology;
pub mod term;
pub mod turtle;
pub mod vocab;

pub use graph::Graph;
pub use term::{BlankNode, Literal, NamedNode, Resource, Term, Triple};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::graph::Graph;
    pub use crate::term::{BlankNode, Literal, NamedNode, Resource, Term, Triple};
    pub use crate::vocab;
}
