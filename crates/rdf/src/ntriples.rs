//! N-Triples reading and writing.
//!
//! N-Triples is the exchange format GeoTriples emits for bulk loading into
//! the store. The writer produces canonical one-triple-per-line output; the
//! parser accepts any N-Triples document (it reuses the Turtle parser, of
//! which N-Triples is a strict subset).

use crate::graph::Graph;
use crate::term::Triple;
use crate::turtle::{parse_turtle, TurtleError};
use std::fmt::Write;

/// Serialize a graph as N-Triples, one statement per line, in insertion
/// order.
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        let _ = writeln!(out, "{t}");
    }
    out
}

/// Serialize a slice of triples as N-Triples.
pub fn write_ntriples_slice(triples: &[Triple]) -> String {
    let mut out = String::new();
    for t in triples {
        let _ = writeln!(out, "{t}");
    }
    out
}

/// Parse an N-Triples document.
pub fn parse_ntriples(input: &str) -> Result<Graph, TurtleError> {
    parse_turtle(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Literal, NamedNode, Resource, Term};
    use crate::vocab;

    #[test]
    fn roundtrip() {
        let mut g = Graph::new();
        g.add(
            Resource::named("http://ex.org/a"),
            NamedNode::new(vocab::rdfs::LABEL),
            Literal::lang("Paris", "fr"),
        );
        g.add(
            Resource::named("http://ex.org/a"),
            NamedNode::new(vocab::geo::AS_WKT),
            Literal::wkt("POINT (2.35 48.85)"),
        );
        g.add(
            Resource::blank("n1"),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::geo::FEATURE),
        );
        let text = write_ntriples(&g);
        assert_eq!(text.lines().count(), 3);
        let parsed = parse_ntriples(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        for t in g.iter() {
            assert!(parsed.contains(t));
        }
    }

    #[test]
    fn parses_plain_ntriples() {
        let doc = concat!(
            "<http://a> <http://p> \"v\" .\n",
            "# a comment line\n",
            "<http://a> <http://q> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
        );
        let g = parse_ntriples(doc).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn empty_document() {
        assert_eq!(parse_ntriples("").unwrap().len(), 0);
        assert_eq!(parse_ntriples("  \n# only comments\n").unwrap().len(), 0);
    }
}
