//! Property-based tests for the RDF model and serializations.

use applab_rdf::datetime::{format_datetime, parse_datetime};
use applab_rdf::ntriples::{parse_ntriples, write_ntriples};
use applab_rdf::turtle::{parse_turtle, write_turtle};
use applab_rdf::{Graph, Literal, NamedNode, Resource, Term, Triple};
use proptest::prelude::*;

fn iri_strategy() -> impl Strategy<Value = String> {
    // IRIs from a small safe alphabet (angle-bracket-free).
    "[a-z][a-z0-9]{0,8}".prop_map(|local| format!("http://ex.org/{local}"))
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Strings with quotes, newlines, unicode.
        "[ -~éλ\\n\"\\\\]{0,20}".prop_map(Literal::string),
        any::<i64>().prop_map(Literal::integer),
        (-1e15f64..1e15).prop_map(Literal::double),
        any::<bool>().prop_map(Literal::boolean),
        (-4_000_000_000i64..4_000_000_000).prop_map(Literal::datetime),
        ("[a-z]{1,8}", "[a-z]{2}").prop_map(|(v, l)| Literal::lang(v, l)),
        (-180.0f64..180.0, -90.0f64..90.0)
            .prop_map(|(x, y)| Literal::wkt(format!("POINT ({x} {y})"))),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        iri_strategy().prop_map(Term::named),
        "[a-z][a-z0-9]{0,6}".prop_map(|l| Term::Blank(applab_rdf::BlankNode::new(l))),
        literal_strategy().prop_map(Term::from),
    ]
}

fn triple_strategy() -> impl Strategy<Value = Triple> {
    (
        prop_oneof![
            iri_strategy().prop_map(Resource::named),
            "[a-z][a-z0-9]{0,6}".prop_map(Resource::blank),
        ],
        iri_strategy(),
        term_strategy(),
    )
        .prop_map(|(s, p, o)| Triple::new(s, NamedNode::new(p), o))
}

fn graph_strategy() -> impl Strategy<Value = Graph> {
    proptest::collection::vec(triple_strategy(), 0..40).prop_map(|ts| ts.into_iter().collect())
}

proptest! {
    #[test]
    fn ntriples_roundtrip(g in graph_strategy()) {
        let text = write_ntriples(&g);
        let back = parse_ntriples(&text).expect("serialized N-Triples must parse");
        prop_assert_eq!(&back, &g);
    }

    #[test]
    fn turtle_roundtrip(g in graph_strategy()) {
        let text = write_turtle(&g);
        let back = parse_turtle(&text).expect("serialized Turtle must parse");
        prop_assert_eq!(&back, &g);
    }

    #[test]
    fn datetime_roundtrip(t in -5_000_000_000i64..5_000_000_000) {
        prop_assert_eq!(parse_datetime(&format_datetime(t)).unwrap(), t);
    }

    #[test]
    fn graph_dedup_and_pattern_consistency(g in graph_strategy()) {
        // Inserting everything again changes nothing.
        let mut g2 = g.clone();
        prop_assert_eq!(g2.extend_from(&g), 0);
        // Every triple is findable through each index path.
        for t in g.iter() {
            prop_assert!(g.contains(t));
            prop_assert!(g
                .matching(Some(&t.subject), Some(&t.predicate), Some(&t.object))
                .next()
                .is_some());
        }
        // Pattern matching with all wildcards returns everything.
        prop_assert_eq!(g.matching(None, None, None).count(), g.len());
    }

    #[test]
    fn wkt_literals_parse_as_geometry(x in -180.0f64..180.0, y in -90.0f64..90.0) {
        let l = Literal::wkt(format!("POINT ({x} {y})"));
        let g = l.as_geometry().expect("valid WKT literal");
        prop_assert_eq!(g, applab_geo::Geometry::point(x, y));
    }
}
