//! Dense n-dimensional arrays with DAP hyperslab subsetting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One dimension of a hyperslab: `start:stride:stop`, all inclusive, DAP
/// constraint-expression semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Range {
    pub start: usize,
    pub stride: usize,
    pub stop: usize,
}

impl Range {
    pub fn new(start: usize, stride: usize, stop: usize) -> Self {
        Range {
            start,
            stride: stride.max(1),
            stop,
        }
    }

    /// The whole extent of a dimension of length `len`.
    pub fn all(len: usize) -> Self {
        Range::new(0, 1, len.saturating_sub(1))
    }

    /// A single index.
    pub fn index(i: usize) -> Self {
        Range::new(i, 1, i)
    }

    /// Number of selected indices.
    pub fn count(&self) -> usize {
        if self.stop < self.start {
            0
        } else {
            (self.stop - self.start) / self.stride + 1
        }
    }

    /// Iterate the selected indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (self.start..=self.stop).step_by(self.stride)
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stride == 1 {
            write!(f, "[{}:{}]", self.start, self.stop)
        } else {
            write!(f, "[{}:{}:{}]", self.start, self.stride, self.stop)
        }
    }
}

/// A multi-dimensional selection, one [`Range`] per dimension.
pub type HyperSlab = Vec<Range>;

/// Error for shape mismatches and out-of-bounds access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError(pub String);

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major f64 array. Missing values are NaN (the CF
/// `_FillValue` convention is applied on ingest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NdArray {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl NdArray {
    /// A zero-filled array.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        NdArray {
            shape,
            data: vec![0.0; len],
        }
    }

    /// A NaN-filled (all-missing) array.
    pub fn filled_nan(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        NdArray {
            shape,
            data: vec![f64::NAN; len],
        }
    }

    /// Wrap existing data; `data.len()` must equal the shape product.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f64>) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ShapeError(format!(
                "data length {} does not match shape {:?} (= {expected})",
                data.len(),
                shape
            )));
        }
        Ok(NdArray { shape, data })
    }

    /// A 1-D array.
    pub fn vector(data: Vec<f64>) -> Self {
        NdArray {
            shape: vec![data.len()],
            data,
        }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    fn offset(&self, index: &[usize]) -> Result<usize, ShapeError> {
        if index.len() != self.shape.len() {
            return Err(ShapeError(format!(
                "index rank {} != array rank {}",
                index.len(),
                self.shape.len()
            )));
        }
        let mut off = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            if ix >= dim {
                return Err(ShapeError(format!(
                    "index {ix} out of bounds for dimension {i} (len {dim})"
                )));
            }
            off = off * dim + ix;
        }
        Ok(off)
    }

    pub fn get(&self, index: &[usize]) -> Result<f64, ShapeError> {
        Ok(self.data[self.offset(index)?])
    }

    pub fn set(&mut self, index: &[usize], value: f64) -> Result<(), ShapeError> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Extract a hyperslab as a new (dense, row-major) array.
    pub fn slice(&self, slab: &[Range]) -> Result<NdArray, ShapeError> {
        if slab.len() != self.shape.len() {
            return Err(ShapeError(format!(
                "hyperslab rank {} != array rank {}",
                slab.len(),
                self.shape.len()
            )));
        }
        for (i, (r, &dim)) in slab.iter().zip(&self.shape).enumerate() {
            if r.stop >= dim || r.start > r.stop {
                return Err(ShapeError(format!(
                    "range {r} out of bounds for dimension {i} (len {dim})"
                )));
            }
        }
        let out_shape: Vec<usize> = slab.iter().map(Range::count).collect();
        let out_len: usize = out_shape.iter().product();
        let mut out = Vec::with_capacity(out_len);
        let mut index: Vec<usize> = slab.iter().map(|r| r.start).collect();
        'outer: loop {
            out.push(self.data[self.offset(&index).expect("validated above")]);
            // Odometer increment over the slab.
            for d in (0..slab.len()).rev() {
                index[d] += slab[d].stride;
                if index[d] <= slab[d].stop {
                    continue 'outer;
                }
                index[d] = slab[d].start;
            }
            break;
        }
        NdArray::from_vec(out_shape, out)
    }

    /// Mean of the non-NaN values, or NaN when all values are missing.
    pub fn mean(&self) -> f64 {
        let (sum, n) = self
            .data
            .iter()
            .filter(|v| !v.is_nan())
            .fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Minimum of the non-NaN values.
    pub fn min(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::NAN, |a, b| if a.is_nan() || b < a { b } else { a })
    }

    /// Maximum of the non-NaN values.
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::NAN, |a, b| if a.is_nan() || b > a { b } else { a })
    }

    /// Number of non-NaN values.
    pub fn valid_count(&self) -> usize {
        self.data.iter().filter(|v| !v.is_nan()).count()
    }

    /// Concatenate along axis 0. All other dimensions must agree.
    pub fn concat0(parts: &[&NdArray]) -> Result<NdArray, ShapeError> {
        let first = parts.first().ok_or(ShapeError("empty concat".into()))?;
        let tail_shape = &first.shape[1..];
        let mut total0 = 0usize;
        for p in parts {
            if p.shape.len() != first.shape.len() || &p.shape[1..] != tail_shape {
                return Err(ShapeError(format!(
                    "incompatible shapes in concat: {:?} vs {:?}",
                    first.shape, p.shape
                )));
            }
            total0 += p.shape[0];
        }
        let mut shape = first.shape.clone();
        shape[0] = total0;
        let mut data = Vec::with_capacity(shape.iter().product());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        NdArray::from_vec(shape, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr234() -> NdArray {
        // shape (2,3,4), values 0..24
        NdArray::from_vec(vec![2, 3, 4], (0..24).map(f64::from).collect()).unwrap()
    }

    #[test]
    fn indexing_row_major() {
        let a = arr234();
        assert_eq!(a.get(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(a.get(&[0, 0, 3]).unwrap(), 3.0);
        assert_eq!(a.get(&[0, 1, 0]).unwrap(), 4.0);
        assert_eq!(a.get(&[1, 0, 0]).unwrap(), 12.0);
        assert_eq!(a.get(&[1, 2, 3]).unwrap(), 23.0);
        assert!(a.get(&[2, 0, 0]).is_err());
        assert!(a.get(&[0, 0]).is_err());
    }

    #[test]
    fn set_and_get() {
        let mut a = NdArray::zeros(vec![3, 3]);
        a.set(&[1, 2], 7.5).unwrap();
        assert_eq!(a.get(&[1, 2]).unwrap(), 7.5);
        assert!(a.set(&[3, 0], 1.0).is_err());
    }

    #[test]
    fn slicing_matches_manual() {
        let a = arr234();
        // [0:1][1:2][1:2:3] → shape (2,2,2)
        let s = a
            .slice(&[
                Range::new(0, 1, 1),
                Range::new(1, 1, 2),
                Range::new(1, 2, 3),
            ])
            .unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.data(), &[5.0, 7.0, 9.0, 11.0, 17.0, 19.0, 21.0, 23.0]);
    }

    #[test]
    fn single_index_slice() {
        let a = arr234();
        let s = a
            .slice(&[Range::index(1), Range::all(3), Range::all(4)])
            .unwrap();
        assert_eq!(s.shape(), &[1, 3, 4]);
        assert_eq!(s.get(&[0, 0, 0]).unwrap(), 12.0);
    }

    #[test]
    fn bad_slices_error() {
        let a = arr234();
        assert!(a.slice(&[Range::all(2)]).is_err()); // wrong rank
        assert!(a
            .slice(&[Range::new(0, 1, 2), Range::all(3), Range::all(4)])
            .is_err()); // stop out of bounds
    }

    #[test]
    fn statistics_ignore_nan() {
        let a = NdArray::from_vec(vec![4], vec![1.0, f64::NAN, 3.0, 5.0]).unwrap();
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 5.0);
        assert_eq!(a.valid_count(), 3);
        let empty = NdArray::filled_nan(vec![3]);
        assert!(empty.mean().is_nan());
    }

    #[test]
    fn concat_along_time() {
        let a = NdArray::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let b = NdArray::from_vec(vec![2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = NdArray::concat0(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.get(&[2, 1]).unwrap(), 6.0);
        let bad = NdArray::zeros(vec![1, 3]);
        assert!(NdArray::concat0(&[&a, &bad]).is_err());
    }

    #[test]
    fn range_display_and_count() {
        assert_eq!(Range::new(0, 1, 9).to_string(), "[0:9]");
        assert_eq!(Range::new(0, 2, 9).to_string(), "[0:2:9]");
        assert_eq!(Range::new(0, 2, 9).count(), 5);
        assert_eq!(Range::new(3, 1, 3).count(), 1);
        assert_eq!(Range::new(5, 1, 3).count(), 0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(NdArray::from_vec(vec![2, 2], vec![0.0; 3]).is_err());
    }
}
