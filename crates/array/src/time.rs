//! CF-convention time axes.
//!
//! NetCDF time coordinates are numbers relative to an epoch declared in the
//! variable's `units` attribute (e.g. `days since 2017-01-01`). The paper's
//! Listing 2 discussion calls this out explicitly: "In the original dataset
//! times are given as numeric values and their meaning is explained in the
//! metadata." This module decodes them to epoch seconds.

use std::fmt;

/// Calendar conversion (proleptic Gregorian; same algorithm as
/// `applab-rdf::datetime`, duplicated here because this crate must not
/// depend on the RDF model).
pub fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

/// The unit of a CF time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeUnit {
    Seconds,
    Minutes,
    Hours,
    Days,
}

impl TimeUnit {
    pub fn seconds(&self) -> i64 {
        match self {
            TimeUnit::Seconds => 1,
            TimeUnit::Minutes => 60,
            TimeUnit::Hours => 3_600,
            TimeUnit::Days => 86_400,
        }
    }
}

/// A decoded CF time axis: `<unit> since <date>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeAxis {
    pub unit: TimeUnit,
    /// The `since` origin, in epoch seconds.
    pub origin: i64,
}

/// Error parsing a CF units string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeUnitsError(pub String);

impl fmt::Display for TimeUnitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CF time units: {}", self.0)
    }
}

impl std::error::Error for TimeUnitsError {}

impl TimeAxis {
    /// Parse a CF `units` string like `days since 2017-01-01` or
    /// `seconds since 1970-01-01 00:00:00`.
    pub fn parse(units: &str) -> Result<TimeAxis, TimeUnitsError> {
        let err = || TimeUnitsError(units.to_string());
        let mut parts = units.split_whitespace();
        let unit = match parts.next().ok_or_else(err)?.to_ascii_lowercase().as_str() {
            "second" | "seconds" | "sec" | "secs" | "s" => TimeUnit::Seconds,
            "minute" | "minutes" | "min" | "mins" => TimeUnit::Minutes,
            "hour" | "hours" | "hr" | "hrs" | "h" => TimeUnit::Hours,
            "day" | "days" | "d" => TimeUnit::Days,
            _ => return Err(err()),
        };
        if !parts
            .next()
            .map(|w| w.eq_ignore_ascii_case("since"))
            .unwrap_or(false)
        {
            return Err(err());
        }
        let date = parts.next().ok_or_else(err)?;
        let mut dp = date.splitn(3, '-');
        let year: i64 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u32 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u32 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(err());
        }
        let mut origin = days_from_civil(year, month, day) * 86_400;
        if let Some(clock) = parts.next() {
            let mut cp = clock.splitn(3, ':');
            let h: i64 = cp.next().unwrap_or("0").parse().map_err(|_| err())?;
            let m: i64 = cp.next().unwrap_or("0").parse().map_err(|_| err())?;
            let s: i64 = cp
                .next()
                .unwrap_or("0")
                .split('.')
                .next()
                .unwrap_or("0")
                .parse()
                .map_err(|_| err())?;
            origin += h * 3600 + m * 60 + s;
        }
        Ok(TimeAxis { unit, origin })
    }

    /// Decode an axis value to epoch seconds.
    pub fn decode(&self, value: f64) -> i64 {
        self.origin + (value * self.unit.seconds() as f64).round() as i64
    }

    /// Encode epoch seconds to an axis value.
    pub fn encode(&self, epoch_seconds: i64) -> f64 {
        (epoch_seconds - self.origin) as f64 / self.unit.seconds() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_days_since() {
        let ax = TimeAxis::parse("days since 2017-01-01").unwrap();
        assert_eq!(ax.unit, TimeUnit::Days);
        // 2017-06-15 is 165 days after 2017-01-01.
        assert_eq!(ax.decode(165.0), 1_497_484_800);
        assert_eq!(ax.encode(1_497_484_800), 165.0);
    }

    #[test]
    fn parse_seconds_since_epoch() {
        let ax = TimeAxis::parse("seconds since 1970-01-01 00:00:00").unwrap();
        assert_eq!(ax.origin, 0);
        assert_eq!(ax.decode(12.0), 12);
    }

    #[test]
    fn parse_with_clock_offset() {
        let ax = TimeAxis::parse("hours since 2000-01-01 06:00:00").unwrap();
        assert_eq!(ax.decode(1.0) - ax.decode(0.0), 3600);
        let midnight = TimeAxis::parse("hours since 2000-01-01").unwrap();
        assert_eq!(ax.decode(0.0) - midnight.decode(0.0), 6 * 3600);
    }

    #[test]
    fn unit_aliases() {
        for (alias, unit) in [
            ("sec", TimeUnit::Seconds),
            ("mins", TimeUnit::Minutes),
            ("hrs", TimeUnit::Hours),
            ("d", TimeUnit::Days),
        ] {
            let ax = TimeAxis::parse(&format!("{alias} since 1970-01-01")).unwrap();
            assert_eq!(ax.unit, unit, "{alias}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(TimeAxis::parse("fortnights since 1970-01-01").is_err());
        assert!(TimeAxis::parse("days after 1970-01-01").is_err());
        assert!(TimeAxis::parse("days since yesterday").is_err());
        assert!(TimeAxis::parse("days since 1970-13-01").is_err());
        assert!(TimeAxis::parse("").is_err());
    }

    #[test]
    fn roundtrip_encode_decode() {
        let ax = TimeAxis::parse("days since 2017-01-01").unwrap();
        for v in [0.0, 1.0, 364.0, 365.0] {
            assert_eq!(ax.encode(ax.decode(v)), v);
        }
    }
}
