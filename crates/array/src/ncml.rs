//! NcML-style aggregation.
//!
//! The paper (Section 3.1): "Each dataset also contains a netCDF NCML
//! aggregation, which is automatically updated when new data (a new date)
//! becomes available." And Section 5 describes the VITO deployment lesson:
//! the Copernicus Global Land archive keeps *multiple reprocessed versions*
//! of the same date, and only the most recent version must be exposed —
//! VITO solved this with a symbolic-link directory structure. This module
//! reproduces both behaviours:
//!
//! * [`aggregate_time`] joins granule datasets along their time dimension;
//! * [`latest_versions`] deduplicates granules per date, keeping the
//!   highest version (the "symbolic links to the most recent version").

use crate::array::NdArray;
use crate::dataset::{Dataset, Variable};
use crate::time::TimeAxis;
use std::collections::BTreeMap;
use std::fmt;

/// A granule: one time step (or a few) of a product, with a version tag —
/// the unit the Copernicus production centre (re)delivers.
#[derive(Debug, Clone)]
pub struct Granule {
    /// Observation date, epoch seconds.
    pub date: i64,
    /// Reprocessing version (RT0, RT1, ... in the real archive).
    pub version: u32,
    pub dataset: Dataset,
}

/// Aggregation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregationError(pub String);

impl fmt::Display for AggregationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aggregation error: {}", self.0)
    }
}

impl std::error::Error for AggregationError {}

/// Keep only the newest version of each date (the VITO symbolic-link rule),
/// returned in date order.
pub fn latest_versions(granules: Vec<Granule>) -> Vec<Granule> {
    let mut best: BTreeMap<i64, Granule> = BTreeMap::new();
    for g in granules {
        match best.get(&g.date) {
            Some(existing) if existing.version >= g.version => {}
            _ => {
                best.insert(g.date, g);
            }
        }
    }
    best.into_values().collect()
}

/// Aggregate granule datasets along the `time` dimension (joinExisting in
/// NcML terms). Granules must share the non-time dimensions and variables.
/// The output time coordinate is in `seconds since 1970-01-01`.
pub fn aggregate_time(granules: &[Granule]) -> Result<Dataset, AggregationError> {
    let first = granules
        .first()
        .ok_or_else(|| AggregationError("no granules to aggregate".into()))?;
    let template = &first.dataset;
    let time_dim = "time";
    template
        .dim_len(time_dim)
        .ok_or_else(|| AggregationError("granules have no time dimension".into()))?;

    // Collect decoded time values from every granule.
    let mut times: Vec<f64> = Vec::new();
    let mut per_var: BTreeMap<String, Vec<NdArray>> = BTreeMap::new();

    for g in granules {
        let ds = &g.dataset;
        for (name, len) in &template.dims {
            if name != time_dim && ds.dim_len(name) != Some(*len) {
                return Err(AggregationError(format!(
                    "granule {} disagrees on dimension {name}",
                    ds.name
                )));
            }
        }
        // Decode this granule's time axis to epoch seconds.
        let tv = ds.coordinate(time_dim).ok_or_else(|| {
            AggregationError(format!("granule {} lacks a time coordinate", ds.name))
        })?;
        let axis = match tv.units() {
            Some(u) => TimeAxis::parse(u)
                .map_err(|e| AggregationError(format!("granule {}: {e}", ds.name)))?,
            None => TimeAxis {
                unit: crate::time::TimeUnit::Seconds,
                origin: 0,
            },
        };
        times.extend(tv.data.data().iter().map(|&v| axis.decode(v) as f64));

        for v in &ds.variables {
            if v.name == time_dim {
                continue;
            }
            if v.dims.first().map(String::as_str) == Some(time_dim) {
                per_var
                    .entry(v.name.clone())
                    .or_default()
                    .push(v.data.clone());
            }
        }
    }

    let mut out = Dataset::new(format!("{}_aggregated", template.name));
    out.attributes = template.attributes.clone();
    out.add_dim(time_dim, times.len());
    for (name, len) in &template.dims {
        if name != time_dim {
            out.add_dim(name.clone(), *len);
        }
    }
    out.add_variable(
        Variable::new(time_dim, vec![time_dim.to_string()], NdArray::vector(times))
            .with_attr("units", "seconds since 1970-01-01"),
    )
    .map_err(|e| AggregationError(e.to_string()))?;

    // Non-time-varying variables (e.g. lat/lon coordinates) come from the
    // template; time-varying ones are concatenated.
    for v in &template.variables {
        if v.name == time_dim {
            continue;
        }
        if v.dims.first().map(String::as_str) == Some(time_dim) {
            let parts = per_var
                .get(&v.name)
                .ok_or_else(|| AggregationError(format!("variable {} missing", v.name)))?;
            let refs: Vec<&NdArray> = parts.iter().collect();
            let data = NdArray::concat0(&refs).map_err(|e| AggregationError(e.to_string()))?;
            let mut nv = Variable::new(v.name.clone(), v.dims.clone(), data);
            nv.attributes = v.attributes.clone();
            out.add_variable(nv)
                .map_err(|e| AggregationError(e.to_string()))?;
        } else {
            out.add_variable(v.clone())
                .map_err(|e| AggregationError(e.to_string()))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn granule(date_days: i64, version: u32, value: f64) -> Granule {
        let mut ds = Dataset::new(format!("g{date_days}v{version}"));
        ds.add_dim("time", 1).add_dim("lat", 2).add_dim("lon", 2);
        ds.add_variable(
            Variable::new(
                "time",
                vec!["time".into()],
                NdArray::vector(vec![date_days as f64]),
            )
            .with_attr("units", "days since 1970-01-01"),
        )
        .unwrap();
        ds.add_variable(Variable::new(
            "lat",
            vec!["lat".into()],
            NdArray::vector(vec![48.0, 48.5]),
        ))
        .unwrap();
        ds.add_variable(Variable::new(
            "lon",
            vec!["lon".into()],
            NdArray::vector(vec![2.0, 2.5]),
        ))
        .unwrap();
        ds.add_variable(
            Variable::new(
                "LAI",
                vec!["time".into(), "lat".into(), "lon".into()],
                NdArray::from_vec(vec![1, 2, 2], vec![value; 4]).unwrap(),
            )
            .with_attr("units", "m2/m2"),
        )
        .unwrap();
        Granule {
            date: date_days * 86_400,
            version,
            dataset: ds,
        }
    }

    #[test]
    fn latest_versions_dedup() {
        let granules = vec![
            granule(0, 0, 1.0),
            granule(0, 2, 3.0),
            granule(0, 1, 2.0),
            granule(10, 0, 4.0),
        ];
        let latest = latest_versions(granules);
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[0].version, 2);
        assert_eq!(
            latest[0]
                .dataset
                .variable("LAI")
                .unwrap()
                .data
                .get(&[0, 0, 0])
                .unwrap(),
            3.0
        );
        assert_eq!(latest[1].date, 10 * 86_400);
    }

    #[test]
    fn aggregation_concatenates_time() {
        let granules = vec![granule(0, 0, 1.0), granule(10, 0, 2.0), granule(20, 0, 3.0)];
        let agg = aggregate_time(&granules).unwrap();
        assert_eq!(agg.dim_len("time"), Some(3));
        let time = agg.coordinate("time").unwrap();
        assert_eq!(time.units(), Some("seconds since 1970-01-01"));
        assert_eq!(time.data.data(), &[0.0, 864_000.0, 1_728_000.0]);
        let lai = agg.variable("LAI").unwrap();
        assert_eq!(lai.data.shape(), &[3, 2, 2]);
        assert_eq!(lai.data.get(&[2, 1, 1]).unwrap(), 3.0);
        // lat/lon copied through once.
        assert_eq!(agg.coordinate("lat").unwrap().data.len(), 2);
    }

    #[test]
    fn aggregation_validates_shapes() {
        let mut bad = granule(10, 0, 2.0);
        bad.dataset.dims[1] = ("lat".into(), 3); // lie about lat
        let res = aggregate_time(&[granule(0, 0, 1.0), bad]);
        assert!(res.is_err());
        assert!(aggregate_time(&[]).is_err());
    }

    #[test]
    fn update_on_new_date_matches_paper_workflow() {
        // "automatically updated when new data (a new date) becomes
        // available": aggregate, then re-aggregate with one more granule.
        let mut granules = vec![granule(0, 0, 1.0)];
        let agg1 = aggregate_time(&latest_versions(granules.clone())).unwrap();
        assert_eq!(agg1.dim_len("time"), Some(1));
        granules.push(granule(10, 0, 2.0));
        granules.push(granule(10, 1, 2.5)); // reprocessed same date
        let agg2 = aggregate_time(&latest_versions(granules)).unwrap();
        assert_eq!(agg2.dim_len("time"), Some(2));
        assert_eq!(
            agg2.variable("LAI").unwrap().data.get(&[1, 0, 0]).unwrap(),
            2.5
        );
    }
}
