//! A NetCDF-like multidimensional array data model.
//!
//! The Copernicus Global Land products the paper works with (Leaf Area
//! Index, NDVI, Burnt Area) are NetCDF files: named dimensions, variables
//! with attributes, CF-convention coordinate variables and time axes. This
//! crate reproduces exactly the subset of that model the App Lab stack
//! consumes through OPeNDAP:
//!
//! * [`NdArray`] — a dense f64 array with DAP-style hyperslab subsetting;
//! * [`Dataset`]/[`Variable`] — dimensions, variables, attributes;
//! * [`time`] — CF "units since epoch" time axes;
//! * [`ncml`] — NcML-style aggregation along a time dimension, including
//!   the VITO "multiple reprocessed versions per date, expose the latest"
//!   behaviour (Section 5);
//! * [`acdd`] — ACDD metadata-completeness scoring and recommendations
//!   (Section 3.1's metadata tooling).
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod acdd;
pub mod array;
pub mod dataset;
pub mod ncml;
pub mod time;

pub use array::{HyperSlab, NdArray, Range};
pub use dataset::{AttrValue, Dataset, Variable};
