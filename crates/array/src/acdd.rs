//! ACDD metadata completeness checking.
//!
//! Section 3.1: "Completeness of metadata can be checked globally at SDL
//! level or at an individual dataset level" and "a tool was implemented that
//! provides recommendations for metadata attributes that can be added to
//! datasets exposed through the DAP to facilitate discovery of those using
//! standard metadata searches." This module scores a dataset against the
//! Attribute Convention for Data Discovery (ACDD 1.3) attribute lists and
//! produces those recommendations.

use crate::dataset::Dataset;

/// ACDD 1.3 "highly recommended" global attributes.
pub const HIGHLY_RECOMMENDED: &[&str] = &["title", "summary", "keywords", "Conventions"];

/// ACDD 1.3 "recommended" global attributes (the subset relevant to
/// discovery, which is what the paper's tool targets).
pub const RECOMMENDED: &[&str] = &[
    "id",
    "naming_authority",
    "history",
    "source",
    "processing_level",
    "license",
    "creator_name",
    "creator_email",
    "institution",
    "project",
    "publisher_name",
    "geospatial_lat_min",
    "geospatial_lat_max",
    "geospatial_lon_min",
    "geospatial_lon_max",
    "time_coverage_start",
    "time_coverage_end",
];

/// Per-variable attributes recommended by CF/ACDD.
pub const VARIABLE_RECOMMENDED: &[&str] = &["units", "long_name", "standard_name"];

/// The completeness report for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletenessReport {
    pub dataset: String,
    /// Missing "highly recommended" global attributes.
    pub missing_highly_recommended: Vec<String>,
    /// Missing "recommended" global attributes.
    pub missing_recommended: Vec<String>,
    /// (variable, missing attribute) pairs.
    pub missing_variable_attrs: Vec<(String, String)>,
    /// 0.0–1.0 weighted completeness score.
    pub score: f64,
}

impl CompletenessReport {
    /// Is the dataset fully ACDD-compliant (for the checked subset)?
    pub fn is_complete(&self) -> bool {
        self.missing_highly_recommended.is_empty()
            && self.missing_recommended.is_empty()
            && self.missing_variable_attrs.is_empty()
    }

    /// Human-readable recommendations, most important first.
    pub fn recommendations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.missing_highly_recommended {
            out.push(format!(
                "add global attribute '{a}' (ACDD highly recommended)"
            ));
        }
        for a in &self.missing_recommended {
            out.push(format!("add global attribute '{a}' (ACDD recommended)"));
        }
        for (v, a) in &self.missing_variable_attrs {
            out.push(format!("add attribute '{a}' to variable '{v}'"));
        }
        out
    }
}

/// Score a dataset against the ACDD attribute lists.
///
/// Weights: highly recommended 3, recommended 1, variable attributes 1.
pub fn check_completeness(ds: &Dataset) -> CompletenessReport {
    let missing_highly_recommended: Vec<String> = HIGHLY_RECOMMENDED
        .iter()
        .filter(|a| !ds.attributes.contains_key(**a))
        .map(|a| a.to_string())
        .collect();
    let missing_recommended: Vec<String> = RECOMMENDED
        .iter()
        .filter(|a| !ds.attributes.contains_key(**a))
        .map(|a| a.to_string())
        .collect();
    let mut missing_variable_attrs = Vec::new();
    let mut var_checks = 0usize;
    for v in &ds.variables {
        // Coordinate variables only need units.
        let wanted: &[&str] = if ds.coordinate(&v.name).is_some() {
            &["units"]
        } else {
            VARIABLE_RECOMMENDED
        };
        for a in wanted {
            var_checks += 1;
            if !v.attributes.contains_key(*a) {
                missing_variable_attrs.push((v.name.clone(), a.to_string()));
            }
        }
    }

    let total_weight =
        3.0 * HIGHLY_RECOMMENDED.len() as f64 + RECOMMENDED.len() as f64 + var_checks as f64;
    let missing_weight = 3.0 * missing_highly_recommended.len() as f64
        + missing_recommended.len() as f64
        + missing_variable_attrs.len() as f64;
    let score = if total_weight == 0.0 {
        1.0
    } else {
        1.0 - missing_weight / total_weight
    };

    CompletenessReport {
        dataset: ds.name.clone(),
        missing_highly_recommended,
        missing_recommended,
        missing_variable_attrs,
        score,
    }
}

/// Post-hoc augmentation (the paper's CMS: "the CMS will allow for post-hoc
/// augmentation using NcML blending metadata provided by the source and
/// those required as-per the DRS validator"): fill the missing attributes
/// from a defaults table without overwriting source-provided values.
pub fn augment(ds: &mut Dataset, defaults: &[(&str, &str)]) -> usize {
    let mut added = 0;
    for (key, value) in defaults {
        if !ds.attributes.contains_key(*key) {
            ds.set_attr(key, *value);
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::NdArray;
    use crate::dataset::Variable;

    fn bare_dataset() -> Dataset {
        let mut ds = Dataset::new("bare");
        ds.add_dim("time", 1);
        ds.add_variable(Variable::new(
            "LAI",
            vec!["time".into()],
            NdArray::zeros(vec![1]),
        ))
        .unwrap();
        ds
    }

    #[test]
    fn bare_dataset_scores_low() {
        let report = check_completeness(&bare_dataset());
        assert!(!report.is_complete());
        assert_eq!(report.missing_highly_recommended.len(), 4);
        assert!(report.score < 0.2);
        assert!(!report.recommendations().is_empty());
        // Highly-recommended warnings come first.
        assert!(report.recommendations()[0].contains("highly recommended"));
    }

    #[test]
    fn complete_dataset_scores_one() {
        let mut ds = bare_dataset();
        for a in HIGHLY_RECOMMENDED.iter().chain(RECOMMENDED) {
            ds.set_attr(a, "filled");
        }
        let v = ds.variable_mut("LAI").unwrap();
        for a in VARIABLE_RECOMMENDED {
            v.attributes.insert(a.to_string(), "filled".into());
        }
        let report = check_completeness(&ds);
        assert!(report.is_complete(), "{:?}", report.recommendations());
        assert_eq!(report.score, 1.0);
    }

    #[test]
    fn augmentation_fills_without_overwriting() {
        let mut ds = bare_dataset();
        ds.set_attr("title", "Original Title");
        let added = augment(
            &mut ds,
            &[
                ("title", "Default Title"),
                ("summary", "A dataset"),
                ("keywords", "lai, copernicus"),
            ],
        );
        assert_eq!(added, 2);
        assert_eq!(
            ds.attributes.get("title").unwrap().as_text(),
            Some("Original Title")
        );
        let report = check_completeness(&ds);
        assert!(!report
            .missing_highly_recommended
            .contains(&"summary".to_string()));
    }

    #[test]
    fn augmentation_improves_score() {
        let mut ds = bare_dataset();
        let before = check_completeness(&ds).score;
        augment(&mut ds, &[("title", "t"), ("summary", "s")]);
        let after = check_completeness(&ds).score;
        assert!(after > before);
    }

    #[test]
    fn coordinate_variables_only_need_units() {
        let mut ds = Dataset::new("coords");
        ds.add_dim("lat", 2);
        ds.add_variable(
            Variable::new("lat", vec!["lat".into()], NdArray::vector(vec![0.0, 1.0]))
                .with_attr("units", "degrees_north"),
        )
        .unwrap();
        let report = check_completeness(&ds);
        assert!(report.missing_variable_attrs.is_empty());
    }
}
