//! Datasets: named dimensions, variables and attributes (the NetCDF model).

use crate::array::{NdArray, Range, ShapeError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An attribute value (NetCDF attributes are text, numbers or number lists).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    Text(String),
    Number(f64),
    Numbers(Vec<f64>),
}

impl AttrValue {
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttrValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Text(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Text(s)
    }
}

impl From<f64> for AttrValue {
    fn from(n: f64) -> Self {
        AttrValue::Number(n)
    }
}

/// Ordered attribute map (BTreeMap keeps DDS/DAS output deterministic).
pub type Attributes = BTreeMap<String, AttrValue>;

/// A variable: data over named dimensions plus attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    pub name: String,
    /// Dimension names, one per array axis, in axis order.
    pub dims: Vec<String>,
    pub attributes: Attributes,
    pub data: NdArray,
}

impl Variable {
    pub fn new(name: impl Into<String>, dims: Vec<String>, data: NdArray) -> Self {
        Variable {
            name: name.into(),
            dims,
            attributes: Attributes::new(),
            data,
        }
    }

    pub fn with_attr(mut self, key: &str, value: impl Into<AttrValue>) -> Self {
        self.attributes.insert(key.to_string(), value.into());
        self
    }

    /// The CF `units` attribute.
    pub fn units(&self) -> Option<&str> {
        self.attributes.get("units").and_then(AttrValue::as_text)
    }
}

/// A dataset: dimensions, variables, global attributes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    pub name: String,
    /// Dimension name → length, in insertion order.
    pub dims: Vec<(String, usize)>,
    pub variables: Vec<Variable>,
    pub attributes: Attributes,
}

impl Dataset {
    pub fn new(name: impl Into<String>) -> Self {
        Dataset {
            name: name.into(),
            ..Dataset::default()
        }
    }

    pub fn add_dim(&mut self, name: impl Into<String>, len: usize) -> &mut Self {
        self.dims.push((name.into(), len));
        self
    }

    pub fn dim_len(&self, name: &str) -> Option<usize> {
        self.dims.iter().find(|(n, _)| n == name).map(|(_, l)| *l)
    }

    pub fn set_attr(&mut self, key: &str, value: impl Into<AttrValue>) -> &mut Self {
        self.attributes.insert(key.to_string(), value.into());
        self
    }

    /// Add a variable, validating that its dimensions exist and match the
    /// array shape.
    pub fn add_variable(&mut self, var: Variable) -> Result<(), ShapeError> {
        if var.dims.len() != var.data.ndim() {
            return Err(ShapeError(format!(
                "variable {} has {} dims but rank-{} data",
                var.name,
                var.dims.len(),
                var.data.ndim()
            )));
        }
        for (dim, &axis_len) in var.dims.iter().zip(var.data.shape()) {
            match self.dim_len(dim) {
                Some(len) if len == axis_len => {}
                Some(len) => {
                    return Err(ShapeError(format!(
                        "variable {}: dimension {dim} is {len} but axis is {axis_len}",
                        var.name
                    )))
                }
                None => {
                    return Err(ShapeError(format!(
                        "variable {}: unknown dimension {dim}",
                        var.name
                    )))
                }
            }
        }
        self.variables.push(var);
        Ok(())
    }

    pub fn variable(&self, name: &str) -> Option<&Variable> {
        self.variables.iter().find(|v| v.name == name)
    }

    pub fn variable_mut(&mut self, name: &str) -> Option<&mut Variable> {
        self.variables.iter_mut().find(|v| v.name == name)
    }

    /// A coordinate variable: 1-D, named after its dimension (CF).
    pub fn coordinate(&self, dim: &str) -> Option<&Variable> {
        self.variable(dim).filter(|v| v.dims == [dim.to_string()])
    }

    /// Index of the coordinate value nearest to `value` along `dim`.
    pub fn nearest_index(&self, dim: &str, value: f64) -> Option<usize> {
        let coord = self.coordinate(dim)?;
        coord
            .data
            .data()
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - value)
                    .abs()
                    .partial_cmp(&(*b - value).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    /// Inclusive index range of coordinate values within `[lo, hi]` along
    /// `dim`, assuming a monotonically increasing coordinate. `None` when
    /// the interval selects nothing.
    pub fn index_range(&self, dim: &str, lo: f64, hi: f64) -> Option<Range> {
        let coord = self.coordinate(dim)?;
        let values = coord.data.data();
        let start = values.iter().position(|&v| v >= lo)?;
        let stop = values.iter().rposition(|&v| v <= hi)?;
        if stop < start {
            return None;
        }
        Some(Range::new(start, 1, stop))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lai_like() -> Dataset {
        let mut ds = Dataset::new("lai_300m");
        ds.add_dim("time", 3).add_dim("lat", 4).add_dim("lon", 5);
        ds.set_attr("title", "Leaf Area Index");
        ds.add_variable(
            Variable::new(
                "time",
                vec!["time".into()],
                NdArray::vector(vec![0.0, 10.0, 20.0]),
            )
            .with_attr("units", "days since 2017-01-01"),
        )
        .unwrap();
        ds.add_variable(Variable::new(
            "lat",
            vec!["lat".into()],
            NdArray::vector(vec![48.0, 48.5, 49.0, 49.5]),
        ))
        .unwrap();
        ds.add_variable(Variable::new(
            "lon",
            vec!["lon".into()],
            NdArray::vector(vec![2.0, 2.25, 2.5, 2.75, 3.0]),
        ))
        .unwrap();
        ds.add_variable(
            Variable::new(
                "LAI",
                vec!["time".into(), "lat".into(), "lon".into()],
                NdArray::zeros(vec![3, 4, 5]),
            )
            .with_attr("units", "m2/m2")
            .with_attr("_FillValue", -999.0),
        )
        .unwrap();
        ds
    }

    #[test]
    fn build_and_lookup() {
        let ds = lai_like();
        assert_eq!(ds.dim_len("lat"), Some(4));
        assert_eq!(ds.variable("LAI").unwrap().units(), Some("m2/m2"));
        assert!(ds.coordinate("time").is_some());
        assert!(ds.coordinate("LAI").is_none()); // 3-D var is no coordinate
    }

    #[test]
    fn add_variable_validates_shape() {
        let mut ds = lai_like();
        let bad = Variable::new(
            "NDVI",
            vec!["time".into(), "lat".into()],
            NdArray::zeros(vec![3, 9]),
        );
        assert!(ds.add_variable(bad).is_err());
        let unknown_dim = Variable::new("X", vec!["depth".into()], NdArray::zeros(vec![2]));
        assert!(ds.add_variable(unknown_dim).is_err());
        let rank_mismatch = Variable::new("Y", vec!["time".into()], NdArray::zeros(vec![3, 1]));
        assert!(ds.add_variable(rank_mismatch).is_err());
    }

    #[test]
    fn nearest_index_lookup() {
        let ds = lai_like();
        assert_eq!(ds.nearest_index("lat", 48.6), Some(1));
        assert_eq!(ds.nearest_index("lon", 2.0), Some(0));
        assert_eq!(ds.nearest_index("lon", 99.0), Some(4));
        assert_eq!(ds.nearest_index("LAI", 1.0), None);
    }

    #[test]
    fn index_range_lookup() {
        let ds = lai_like();
        let r = ds.index_range("lon", 2.2, 2.8).unwrap();
        assert_eq!((r.start, r.stop), (1, 3));
        assert!(ds.index_range("lon", 3.5, 4.0).is_none());
        let all = ds.index_range("lat", 0.0, 100.0).unwrap();
        assert_eq!(all.count(), 4);
    }

    #[test]
    fn attr_conversions() {
        assert_eq!(AttrValue::from("x").as_text(), Some("x"));
        assert_eq!(AttrValue::from(2.0).as_number(), Some(2.0));
        assert_eq!(AttrValue::from(2.0).as_text(), None);
    }
}
