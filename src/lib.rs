//! Umbrella crate for the Copernicus App Lab reproduction.
//!
//! Re-exports every workspace crate so the examples and integration tests
//! can use a single dependency. Library users should usually depend on
//! `applab-core` (the facade) or on individual crates.

pub use applab_array as array;
pub use applab_catalog as catalog;
pub use applab_core as core;
pub use applab_dap as dap;
pub use applab_data as data;
pub use applab_geo as geo;
pub use applab_geotriples as geotriples;
pub use applab_http as http;
pub use applab_link as link;
pub use applab_obda as obda;
pub use applab_obs as obs;
pub use applab_rdf as rdf;
pub use applab_sdl as sdl;
pub use applab_service as service;
pub use applab_sextant as sextant;
pub use applab_sparql as sparql;
pub use applab_store as store;
