//! Offline stand-in for `bytes`. [`Bytes`] is a cheaply cloneable
//! reference-counted byte buffer with a read cursor; [`BytesMut`] is a
//! growable write buffer. Only the big-endian `Buf`/`BufMut` accessors the
//! DAP wire format uses are provided.

use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a read position.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.into(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// A view of a sub-range of the remaining bytes, like `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of bounds");
        Bytes::from(&self.as_slice()[start..end])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer for building messages.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read-side accessors (big-endian), mirroring `bytes::Buf`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.pos += n;
    }
}

/// Write-side accessors (big-endian), mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u16(7);
        w.put_u32(1234);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-2.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u16(), 7);
        assert_eq!(r.get_u32(), 1234);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_f64(), -2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.as_slice(), &[3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
    }
}
