//! No-op derive macros for the offline `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types but
//! never runs a serializer (there is no serde_json in the tree), so the
//! derives only need to typecheck. The stand-in `serde` crate provides
//! blanket implementations; these derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
