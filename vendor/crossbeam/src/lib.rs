//! Offline stand-in for the `crossbeam` facade. Only `crossbeam::channel`
//! is used in this workspace (the sdl worker pool); it is provided here as
//! a cloneable-receiver MPMC channel built from `std::sync::mpsc` plus a
//! mutex on the receiving side.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] on a closed channel.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug regardless of whether T is Debug.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] on a closed, drained channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().map_err(|_| RecvError)
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn multi_consumer_drains_everything() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut seen = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut got = Vec::new();
                            while let Ok(v) = rx.recv() {
                                got.push(v);
                            }
                            got
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            });
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_fails_after_close() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
