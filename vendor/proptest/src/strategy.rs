//! Strategy combinators: how test inputs are generated.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleRange};

use crate::runner::TestRng;

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Whole-domain strategy for `T`, produced by [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: reinterpreted bit patterns would also produce
        // NaN/inf, which none of the workspace properties are written for.
        let v = f64::from_bits(rng.next_u64());
        if v.is_finite() {
            v
        } else {
            rng.gen_range(-1.0e12..1.0e12)
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

// --- regex-literal string strategies -------------------------------------

/// `&str` patterns act as generators for the regex subset the workspace
/// uses: sequences of literal chars and `[...]` classes (with `a-z` ranges
/// and `\n`/`\t`/`\\`-style escapes), each optionally quantified by `{n}`
/// or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (candidates, min, max) in &atoms {
            let count = rng.gen_range(*min..=*max);
            for _ in 0..count {
                let i = rng.gen_range(0..candidates.len());
                out.push(candidates[i]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = if chars[i] == '[' {
            let (set, next) = parse_class(&chars, i + 1, pattern);
            i = next;
            set
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push((candidates, min, max));
    }
    atoms
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            unescape(chars[i])
        } else {
            chars[i]
        };
        // `a-z` range, unless the `-` is the final char of the class.
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = if chars[i + 2] == '\\' {
                i += 1;
                unescape(chars[i + 2])
            } else {
                chars[i + 2]
            };
            set.extend(lo..=hi);
            i += 3;
        } else {
            set.push(lo);
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "unterminated char class in pattern {pattern:?}"
    );
    assert!(!set.is_empty(), "empty char class in pattern {pattern:?}");
    (set, i + 1)
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    if *i >= chars.len() || chars[*i] != '{' {
        return (1, 1);
    }
    let close = chars[*i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
    let body: String = chars[*i + 1..*i + close].iter().collect();
    *i += close + 1;
    match body.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("bad quantifier min"),
            n.trim().parse().expect("bad quantifier max"),
        ),
        None => {
            let n = body.trim().parse().expect("bad quantifier count");
            (n, n)
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

// --- type-erased strategies & unions -------------------------------------

/// Object-safe view of a strategy, for [`Union`] / `prop_oneof!`.
pub trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn DynStrategy<S::Value>> {
    Box::new(strategy)
}

/// Uniform choice among strategies producing the same value type.
pub struct Union<T> {
    options: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate_dyn(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = rng();
        let strat = (0i64..10, 1.0f64..2.0).prop_map(|(a, b)| a as f64 * b);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0.0..20.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn regex_literals_match_their_own_shape() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".generate(&mut rng);
            assert!((1..=9).contains(&s.chars().count()), "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn regex_escapes_and_wide_classes() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[ -~éλ\n\"\\\\]{0,20}".generate(&mut rng);
            assert!(s.chars().count() <= 20);
            for c in s.chars() {
                assert!(
                    (' '..='~').contains(&c) || c == 'é' || c == 'λ' || c == '\n',
                    "{c:?}"
                );
            }
        }
    }

    #[test]
    fn union_covers_all_options() {
        let mut rng = rng();
        let strat = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
