//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::runner::TestRng;
use crate::strategy::Strategy;

/// Accepted size specifications for [`vec()`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `Vec<T>` strategy: a length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()), "{v:?}");
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
