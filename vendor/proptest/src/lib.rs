//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use — range/regex-literal/tuple/oneof/vec strategies, `prop_map`,
//! `any`, and the `proptest!`/`prop_assert*` macros — over a deterministic
//! RNG. Failing cases report their inputs but are **not shrunk**; set
//! `PROPTEST_CASES` to change the per-test case count (default 64).

pub mod strategy;

pub mod collection;

pub use strategy::{Arbitrary, Strategy};

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Generate a value of `T` from its whole-domain strategy.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod test_runner {
    pub use super::TestCaseError;
}

pub mod prelude {
    pub use super::strategy::{Arbitrary, Just, Strategy};
    pub use super::{any, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::TestCaseError;

    pub type TestRng = StdRng;

    fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Run `case` repeatedly with fresh inputs; panic with the inputs of the
    /// first failing case.
    pub fn run(
        file: &str,
        line: u32,
        mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    ) {
        // A seed derived from the call site keeps distinct tests on distinct
        // streams while staying reproducible run-to-run.
        let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(line);
        for b in file.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        let mut rng = TestRng::seed_from_u64(seed);
        let cases = case_count();
        for i in 0..cases {
            let (inputs, result) = case(&mut rng);
            if let Err(TestCaseError(msg)) = result {
                panic!(
                    "property failed at {file}:{line} (case {i}/{cases}):\n{msg}\ninputs:\n{inputs}"
                );
            }
        }
    }

    #[doc(hidden)]
    pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "test body panicked".to_string()
        }
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(file!(), line!(), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    let inputs = {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));)+
                        s
                    };
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                Ok(())
                            },
                        ),
                    )
                    .unwrap_or_else(|p| {
                        Err($crate::TestCaseError::fail($crate::runner::panic_message(p)))
                    });
                    (inputs, result)
                });
            }
        )*
    };
}

/// Assert inside a property body; failures abort only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
