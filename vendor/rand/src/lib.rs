//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of `rand` APIs the workspace uses are reimplemented here on top
//! of SplitMix64/xoshiro256**. Deterministic per seed, not cryptographic —
//! exactly what the synthetic data generators and benches need.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface, mirroring the subset of `rand::Rng` in use.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_f64(self) < p
    }
}

fn sample_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (sample_f64(rng) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the same construction the real
    /// `StdRng` family uses for cheap statistical randomness.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }
}
