//! Offline stand-in for `serde`.
//!
//! The workspace annotates model types with `#[derive(Serialize,
//! Deserialize)]` but contains no serializer backend, so the traits here
//! are markers satisfied by every type and the derives are no-ops. If a
//! real serialization backend is ever added, replace this stand-in with the
//! actual crate.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
