//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, per-input
//! benches, `Bencher::iter`) with a plain wall-clock harness: each
//! benchmark runs `sample_size` samples and reports min/median to stdout.
//! No statistics machinery, no plots — enough to compare engines locally.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepted for macro compatibility; there is no CLI to configure from.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; times the routine under measurement.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then time enough iterations to be measurable.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= Duration::from_millis(10) || iters >= 1_000_000 {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "bench {label:<60} min {:>12}  median {:>12}",
        format_time(min),
        format_time(median)
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
        assert_eq!(ran, 2);
    }
}
